//! The integrated Multival flow: one fluent API from a mini-LOTOS source
//! to functional verdicts and performance numbers.
//!
//! This is the facade over the full §2–§4 pipeline of the paper:
//!
//! ```text
//! mini-LOTOS ──explore──> LTS ──verify──> verdicts        (§3)
//!                          │
//!                          └──decorate──> IMC ──hide/convert──> CTMC
//!                                          └──> measures        (§4)
//! ```

use multival_ctmc::absorb::mean_time_to_target;
use multival_ctmc::mdp::Opt;
use multival_ctmc::steady::{steady_state, SolveOptions};
use multival_ctmc::{McOptions, McRun, McSim};
use multival_imc::decorate::{decorate, decorate_by_label};
use multival_imc::phase_type::Delay;
use multival_imc::to_ctmc::{
    probe_throughputs, to_ctmc, to_ctmdp_lifted, CtmcConversion, CtmdpConversion, NondetPolicy,
};
use multival_imc::Imc;
use multival_lts::analysis::{deadlock_witness, Trace};
use multival_lts::equiv::{compare_determinized, determinize_ts, Determinized, Verdict};
use multival_lts::minimize::{divergent_states, minimize, Equivalence, ReductionStats};
use multival_lts::reach::{deadlock_search, scan, ReachOptions, ScanSummary, SearchOutcome};
use multival_lts::Lts;
use multival_mcl::{check, parse_formula, CheckResult, OnTheFlyReport};
use multival_pa::{explore, explore_partial, parse_spec, ExploreOptions, PaTs};
use std::collections::HashMap;
use std::fmt;

/// Error of the integrated flow.
#[derive(Debug)]
pub enum FlowError {
    /// Parsing the model failed.
    Parse(multival_pa::ParseError),
    /// State-space generation failed.
    Explore(multival_pa::ExploreError),
    /// Parsing or evaluating a formula failed.
    Formula(String),
    /// IMC → CTMC conversion failed.
    Conversion(multival_imc::ToCtmcError),
    /// A Markov solver failed.
    Solver(multival_ctmc::CtmcError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Parse(e) => write!(f, "{e}"),
            FlowError::Explore(e) => write!(f, "{e}"),
            FlowError::Formula(e) => write!(f, "{e}"),
            FlowError::Conversion(e) => write!(f, "{e}"),
            FlowError::Solver(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<multival_pa::ParseError> for FlowError {
    fn from(e: multival_pa::ParseError) -> Self {
        FlowError::Parse(e)
    }
}

impl From<multival_pa::ExploreError> for FlowError {
    fn from(e: multival_pa::ExploreError) -> Self {
        FlowError::Explore(e)
    }
}

impl From<multival_imc::ToCtmcError> for FlowError {
    fn from(e: multival_imc::ToCtmcError) -> Self {
        FlowError::Conversion(e)
    }
}

impl From<multival_ctmc::CtmcError> for FlowError {
    fn from(e: multival_ctmc::CtmcError) -> Self {
        FlowError::Solver(e)
    }
}

/// A functional model in flight through the flow.
#[derive(Debug, Clone)]
pub struct Flow {
    lts: Lts,
}

impl Flow {
    /// Parses a mini-LOTOS source and generates its state space.
    ///
    /// # Errors
    ///
    /// Propagates parse and exploration errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use multival::flow::Flow;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let flow = Flow::from_source("behaviour tick; tock; stop")?;
    /// assert_eq!(flow.lts().num_states(), 3);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_source(src: &str) -> Result<Flow, FlowError> {
        Self::from_source_with(src, &ExploreOptions::default())
    }

    /// Like [`Flow::from_source`] with explicit exploration caps.
    ///
    /// # Errors
    ///
    /// Propagates parse and exploration errors.
    pub fn from_source_with(src: &str, options: &ExploreOptions) -> Result<Flow, FlowError> {
        let spec = parse_spec(src)?;
        let explored = explore(&spec, options)?;
        Ok(Flow { lts: explored.lts })
    }

    /// Like [`Flow::from_source_with`], but keeps the partially explored
    /// state space when exploration aborts (cap hit or semantics error):
    /// the returned flow holds exactly the states admitted before the
    /// abort, and the abort cause rides alongside.
    ///
    /// # Errors
    ///
    /// Propagates parse errors; exploration aborts are *not* errors here.
    pub fn from_source_partial(
        src: &str,
        options: &ExploreOptions,
    ) -> Result<(Flow, Option<multival_pa::ExploreError>), FlowError> {
        let spec = parse_spec(src)?;
        let exploration = explore_partial(&spec, options);
        Ok((Flow { lts: exploration.explored.lts }, exploration.aborted))
    }

    /// Wraps an existing LTS.
    pub fn from_lts(lts: Lts) -> Flow {
        Flow { lts }
    }

    /// The underlying LTS.
    pub fn lts(&self) -> &Lts {
        &self.lts
    }

    /// Minimizes modulo the given equivalence, returning the new flow and
    /// reduction statistics.
    pub fn minimized(&self, eq: Equivalence) -> (Flow, ReductionStats) {
        let (lts, stats) = minimize(&self.lts, eq);
        (Flow { lts }, stats)
    }

    /// Hides the listed gates (they become τ).
    pub fn hidden<I, S>(&self, gates: I) -> Flow
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Flow { lts: multival_lts::ops::hide(&self.lts, gates) }
    }

    /// Shortest deadlock witness, or `None` when deadlock-free.
    pub fn deadlock(&self) -> Option<Trace> {
        deadlock_witness(&self.lts)
    }

    /// States that can diverge (τ-cycles).
    pub fn divergences(&self) -> Vec<multival_lts::StateId> {
        divergent_states(&self.lts)
    }

    /// Model-checks a μ-calculus formula given as text.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Formula`] on parse or evaluation failure.
    pub fn check(&self, formula: &str) -> Result<CheckResult, FlowError> {
        let f = parse_formula(formula).map_err(|e| FlowError::Formula(e.to_string()))?;
        check(&self.lts, &f).map_err(|e| FlowError::Formula(e.to_string()))
    }

    /// Decorates gates with exponential rates, entering the performance
    /// side of the flow.
    pub fn with_rates(&self, rates: &HashMap<String, f64>) -> PerfFlow {
        let delays: HashMap<String, Delay> =
            rates.iter().map(|(g, &r)| (g.clone(), Delay::Exponential { rate: r })).collect();
        PerfFlow { imc: decorate(&self.lts, &delays) }
    }

    /// Decorates gates with general phase-type delays.
    pub fn with_delays(&self, delays: &HashMap<String, Delay>) -> PerfFlow {
        PerfFlow { imc: decorate(&self.lts, delays) }
    }

    /// Decorates with a per-label delay function.
    pub fn with_delays_by_label(&self, f: impl FnMut(&str) -> Option<Delay>) -> PerfFlow {
        PerfFlow { imc: decorate_by_label(&self.lts, f) }
    }

    /// Scans the state space of `src` on the fly — counting states,
    /// transitions, and deadlocks — without ever materializing an LTS.
    ///
    /// # Errors
    ///
    /// Propagates parse errors and semantic errors hit during the walk.
    pub fn scan_on_the_fly(src: &str, options: &ReachOptions) -> Result<ScanSummary, FlowError> {
        let spec = parse_spec(src)?;
        let ts = PaTs::new(&spec);
        let summary = scan(&ts, options);
        take_pa_error(&ts)?;
        Ok(summary)
    }

    /// Searches `src` for a deadlock on the fly; the walk stops at the
    /// first deadlocked state instead of generating the full state space.
    ///
    /// # Errors
    ///
    /// Propagates parse errors and semantic errors hit during the walk.
    pub fn deadlock_on_the_fly(
        src: &str,
        options: &ReachOptions,
    ) -> Result<SearchOutcome, FlowError> {
        let spec = parse_spec(src)?;
        let ts = PaTs::new(&spec);
        let outcome = deadlock_search(&ts, options);
        take_pa_error(&ts)?;
        Ok(outcome)
    }

    /// Model-checks a formula over `src` on the fly, if the formula falls
    /// in the safety/possibility/inevitability fragment. Returns `Ok(None)`
    /// when it does not — callers then materialize and use [`Flow::check`].
    ///
    /// # Errors
    ///
    /// Propagates parse errors, semantic errors hit during the walk, and
    /// truncation (cap hit before a verdict).
    pub fn check_on_the_fly(
        src: &str,
        formula: &str,
        options: &ReachOptions,
    ) -> Result<Option<OnTheFlyReport>, FlowError> {
        let spec = parse_spec(src)?;
        let f = parse_formula(formula).map_err(|e| FlowError::Formula(e.to_string()))?;
        let ts = PaTs::new(&spec);
        let report = match multival_mcl::check_on_the_fly(&ts, &f, options) {
            None => return Ok(None),
            Some(r) => r,
        };
        take_pa_error(&ts)?;
        report.map(Some).map_err(|e| FlowError::Formula(e.to_string()))
    }

    /// Weak-trace-compares two sources on the fly: each side is
    /// determinized straight from its term graph (τ-closure + subset
    /// construction over the implicit states), never materializing either
    /// LTS.
    ///
    /// # Errors
    ///
    /// Propagates parse and semantic errors; [`FlowError::Formula`] when a
    /// side exceeds `cap` subset states.
    pub fn weak_traces_on_the_fly(
        left: &str,
        right: &str,
        cap: usize,
    ) -> Result<Verdict, FlowError> {
        let da = Self::determinize_source(left, cap)?;
        let db = Self::determinize_source(right, cap)?;
        Ok(compare_determinized(&da, &db))
    }

    /// Determinizes a mini-LOTOS source straight from its term graph
    /// (τ-closure + subset construction, no intermediate LTS). The result
    /// feeds [`compare_determinized`].
    ///
    /// # Errors
    ///
    /// Propagates parse and semantic errors; [`FlowError::Formula`] when
    /// the subset construction exceeds `cap` states.
    pub fn determinize_source(src: &str, cap: usize) -> Result<Determinized, FlowError> {
        let spec = parse_spec(src)?;
        let ts = PaTs::new(&spec);
        let d = determinize_ts(&ts, cap);
        take_pa_error(&ts)?;
        d.ok_or_else(|| {
            FlowError::Formula(format!("determinization cap of {cap} subset states exceeded"))
        })
    }
}

/// Converts a semantic error parked in a [`PaTs`] into a [`FlowError`].
fn take_pa_error(ts: &PaTs<'_>) -> Result<(), FlowError> {
    match ts.take_error() {
        Some((error, term)) => Err(FlowError::Explore(multival_pa::ExploreError::Semantics {
            error,
            state: term.to_string(),
        })),
        None => Ok(()),
    }
}

/// A performance model in flight (an IMC about to become a CTMC).
#[derive(Debug, Clone)]
pub struct PerfFlow {
    imc: Imc,
}

impl PerfFlow {
    /// Wraps an existing IMC.
    pub fn from_imc(imc: Imc) -> PerfFlow {
        PerfFlow { imc }
    }

    /// The underlying IMC.
    pub fn imc(&self) -> &Imc {
        &self.imc
    }

    /// Minimizes the IMC by lumping.
    pub fn lumped(&self) -> (PerfFlow, multival_imc::LumpStats) {
        let (imc, stats) = multival_imc::lump(&self.imc, &multival_imc::LumpOptions::default());
        (PerfFlow { imc }, stats)
    }

    /// Converts to a CTMC, treating the listed labels as throughput probes
    /// and hiding everything else.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors (visible labels, nondeterminism under
    /// the chosen policy, timelocks).
    pub fn solve(&self, policy: NondetPolicy, probes: &[&str]) -> Result<Solved, FlowError> {
        let conv = to_ctmc(&self.closed(probes), policy, probes)?;
        Ok(Solved { conv })
    }

    /// Converts to a CTMDP keeping internal nondeterminism as scheduler
    /// choices: every measure of the resulting [`BoundsSolved`] is a
    /// `[min, max]` interval over all schedulers — the quantified answer
    /// where [`PerfFlow::solve`] with [`NondetPolicy::Reject`] errors out.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors (visible labels, timelocks).
    pub fn solve_bounds(&self, probes: &[&str]) -> Result<BoundsSolved, FlowError> {
        let conv = to_ctmdp_lifted(&self.closed(probes), probes)?;
        Ok(BoundsSolved { conv })
    }

    /// Hides everything that is not a probe.
    fn closed(&self, probes: &[&str]) -> Imc {
        let keep: Vec<String> = probes.iter().map(|s| s.to_string()).collect();
        multival_imc::ops::relabel(&self.imc, |name| {
            if keep.iter().any(|p| p == name) {
                Some(name.to_owned())
            } else {
                None
            }
        })
    }
}

/// A solved performance model.
#[derive(Debug, Clone)]
pub struct Solved {
    conv: CtmcConversion,
}

impl Solved {
    /// The underlying CTMC.
    pub fn ctmc(&self) -> &multival_ctmc::Ctmc {
        &self.conv.ctmc
    }

    /// The conversion record (state map, probe flows).
    pub fn conversion(&self) -> &CtmcConversion {
        &self.conv
    }

    /// Steady-state distribution.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn steady_state(&self) -> Result<Vec<f64>, FlowError> {
        Ok(steady_state(&self.conv.ctmc, &SolveOptions::default())?)
    }

    /// Steady-state probe throughputs.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn throughputs(&self) -> Result<Vec<(String, f64)>, FlowError> {
        Ok(probe_throughputs(&self.conv, &SolveOptions::default())?)
    }

    /// Mean time to reach any of the given *functional* states (ids of the
    /// pre-decoration LTS, which the decoration keeps as an id prefix).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn mean_time_to_states(&self, functional: &[u32]) -> Result<f64, FlowError> {
        let targets: Vec<usize> = functional
            .iter()
            .filter_map(|&s| self.conv.state_map.get(s as usize).copied().flatten())
            .collect();
        Ok(mean_time_to_target(&self.conv.ctmc, &targets, &SolveOptions::default())?)
    }

    /// Long-run fraction of time spent in the given functional states —
    /// the CTMC reference measure for [`BoundsSolved::occupancy_bounds`].
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn occupancy(&self, functional: &[u32]) -> Result<f64, FlowError> {
        let pi = self.steady_state()?;
        let mut states: Vec<usize> = functional
            .iter()
            .filter_map(|&s| self.conv.state_map.get(s as usize).copied().flatten())
            .collect();
        states.sort_unstable();
        states.dedup();
        Ok(states.iter().map(|&c| pi[c]).sum())
    }

    /// Transient (time `t`) distribution — the numerical counterpart of
    /// [`Self::simulate_transient`].
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn transient(&self, t: f64) -> Result<Vec<f64>, FlowError> {
        Ok(multival_ctmc::transient::transient(
            &self.conv.ctmc,
            t,
            &multival_ctmc::TransientOptions::default(),
        )?)
    }

    /// A Monte-Carlo evaluator over the solved chain (CSR view built once;
    /// reuse it across measures).
    pub fn simulator(&self) -> McSim {
        McSim::new(&self.conv.ctmc)
    }

    /// Statistical estimate of the per-state long-run occupancy: fraction
    /// of `[0, horizon]` each trajectory spends per state. Cross-validates
    /// [`Self::steady_state`] on ergodic chains.
    pub fn simulate_occupancy(&self, horizon: f64, opts: &McOptions) -> McRun {
        self.simulator().occupancy(horizon, opts)
    }

    /// Statistical estimate of the transient distribution at time `t`.
    /// Cross-validates [`Self::transient`].
    pub fn simulate_transient(&self, t: f64, opts: &McOptions) -> McRun {
        self.simulator().transient(t, opts)
    }

    /// Statistical estimate of the mean time to reach the given functional
    /// states (trajectories truncated at `time_cap`). Cross-validates
    /// [`Self::mean_time_to_states`].
    pub fn simulate_time_to_states(
        &self,
        functional: &[u32],
        time_cap: f64,
        opts: &McOptions,
    ) -> McRun {
        let targets: Vec<usize> = functional
            .iter()
            .filter_map(|&s| self.conv.state_map.get(s as usize).copied().flatten())
            .collect();
        self.simulator().hitting_time(&targets, time_cap, opts)
    }

    /// Probability that the chain has reached any of the given functional
    /// states within time `t` (CSL bounded reachability) — the CTMC
    /// reference measure for [`BoundsSolved::transient_bounds`].
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn timed_reach(&self, functional: &[u32], t: f64) -> Result<f64, FlowError> {
        let mut is_target = vec![false; self.conv.ctmc.num_states()];
        for &f in functional {
            if let Some(Some(c)) = self.conv.state_map.get(f as usize) {
                is_target[*c] = true;
            }
        }
        Ok(multival_ctmc::csl::bounded_reach(
            &self.conv.ctmc,
            |s| is_target[s],
            t,
            &multival_ctmc::TransientOptions::default(),
        )?)
    }
}

/// A `[min, max]` interval over all schedulers of a nondeterministic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Best case over schedulers (for "larger is better" measures, the
    /// guaranteed floor is `min`).
    pub min: f64,
    /// Worst case over schedulers.
    pub max: f64,
}

impl Interval {
    /// The spread between the two scheduler extremes.
    pub fn width(&self) -> f64 {
        self.max - self.min
    }

    /// Whether `x` lies inside the interval (with slack `tol` on both
    /// sides) — every concrete scheduler resolution must.
    pub fn contains(&self, x: f64, tol: f64) -> bool {
        self.min - tol <= x && x <= self.max + tol
    }

    /// Whether a threshold falls strictly between the extremes, so neither
    /// `TRUE` nor `FALSE` holds for all schedulers (`NO VERDICT`).
    pub fn straddles(&self, threshold: f64) -> bool {
        self.min < threshold && threshold < self.max
    }
}

/// Value-iteration tolerance for bounds measures.
const BOUNDS_TOL: f64 = 1e-12;
/// Iteration cap for bounds value iteration.
const BOUNDS_MAX_ITERS: usize = 1_000_000;

/// A performance model solved for scheduler bounds: each measure answers
/// with an [`Interval`] covering every scheduler, instead of one number
/// under one arbitrary resolution.
#[derive(Debug, Clone)]
pub struct BoundsSolved {
    conv: CtmdpConversion,
}

impl BoundsSolved {
    /// The underlying CTMDP.
    pub fn mdp(&self) -> &multival_ctmc::Ctmdp {
        &self.conv.mdp
    }

    /// The conversion record (state maps, probe impulses).
    pub fn conversion(&self) -> &CtmdpConversion {
        &self.conv
    }

    /// Maps functional state ids to CTMDP states (through eliminated
    /// deterministic τ-chains).
    fn targets(&self, functional: &[u32]) -> Vec<usize> {
        let mut ts: Vec<usize> = functional
            .iter()
            .filter_map(|&s| self.conv.resolved.get(s as usize).copied())
            .collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// Long-run throughput interval of every probe.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (including the Zeno guard).
    pub fn throughput_bounds(&self) -> Result<Vec<(String, Interval)>, FlowError> {
        let zeros = vec![0.0; self.conv.mdp.num_states()];
        self.conv
            .probe_impulse
            .iter()
            .map(|(name, imp)| {
                let min = self.conv.mdp.long_run_average(
                    &zeros,
                    Some(imp),
                    Opt::Min,
                    BOUNDS_TOL,
                    BOUNDS_MAX_ITERS,
                )?;
                let max = self.conv.mdp.long_run_average(
                    &zeros,
                    Some(imp),
                    Opt::Max,
                    BOUNDS_TOL,
                    BOUNDS_MAX_ITERS,
                )?;
                Ok((name.clone(), Interval { min, max }))
            })
            .collect()
    }

    /// Long-run occupancy interval of a set of functional states (fraction
    /// of time spent there — queue-fill levels, functional modes).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn occupancy_bounds(&self, functional: &[u32]) -> Result<Interval, FlowError> {
        let mut reward = vec![0.0; self.conv.mdp.num_states()];
        for &f in functional {
            if let Some(Some(c)) = self.conv.state_map.get(f as usize) {
                reward[*c] = 1.0;
            }
        }
        let min = self.conv.mdp.long_run_average(
            &reward,
            None,
            Opt::Min,
            BOUNDS_TOL,
            BOUNDS_MAX_ITERS,
        )?;
        let max = self.conv.mdp.long_run_average(
            &reward,
            None,
            Opt::Max,
            BOUNDS_TOL,
            BOUNDS_MAX_ITERS,
        )?;
        Ok(Interval { min, max })
    }

    /// Expected-latency interval: time to first reach any of the given
    /// functional states, from the initial state.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn latency_bounds(&self, functional: &[u32]) -> Result<Interval, FlowError> {
        let targets = self.targets(functional);
        let min = self.conv.mdp.expected_time_to_reach(
            &targets,
            Opt::Min,
            BOUNDS_TOL,
            BOUNDS_MAX_ITERS,
        )?;
        let max = self.conv.mdp.expected_time_to_reach(
            &targets,
            Opt::Max,
            BOUNDS_TOL,
            BOUNDS_MAX_ITERS,
        )?;
        Ok(Interval { min: min[self.conv.initial], max: max[self.conv.initial] })
    }

    /// Transient-probability interval: probability of having reached any of
    /// the given functional states within time `t`, from the initial state.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn transient_bounds(&self, functional: &[u32], t: f64) -> Result<Interval, FlowError> {
        let targets = self.targets(functional);
        let min = self.conv.mdp.timed_reach_probability(&targets, t, Opt::Min, BOUNDS_TOL)?;
        let max = self.conv.mdp.timed_reach_probability(&targets, t, Opt::Max, BOUNDS_TOL)?;
        Ok(Interval { min: min[self.conv.initial], max: max[self.conv.initial] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORK_REST: &str = "process P[work, rest] := work; rest; P[work, rest] endproc
                             behaviour P[work, rest]";

    #[test]
    fn functional_side() {
        let flow = Flow::from_source(WORK_REST).expect("parses");
        assert!(flow.deadlock().is_none());
        assert!(flow.divergences().is_empty());
        assert!(flow.check("nu X. <true> true and [true] X").expect("mc").holds);
        assert!(!flow.check("<\"rest\"> true").expect("mc").holds, "rest is not first");
    }

    #[test]
    fn partial_flow_survives_a_cap_hit() {
        // Unbounded interleaving would explode; the partial entry point
        // keeps what was admitted and reports why it stopped.
        let src = "process P[a] := a; P[a] ||| a; P[a] endproc behaviour P[a]";
        let options = ExploreOptions::with_max_states(8);
        let (flow, aborted) = Flow::from_source_partial(src, &options).expect("parses");
        assert_eq!(flow.lts().num_states(), 8);
        match aborted {
            Some(multival_pa::ExploreError::Explosion { states, .. }) => {
                assert_eq!(states, 8)
            }
            other => panic!("expected a cap abort, got {other:?}"),
        }
        // A non-aborting run returns no cause.
        let (_, aborted) =
            Flow::from_source_partial(WORK_REST, &ExploreOptions::default()).expect("parses");
        assert!(aborted.is_none());
    }

    #[test]
    fn performance_side() {
        let flow = Flow::from_source(WORK_REST).expect("parses");
        let mut rates = HashMap::new();
        rates.insert("work".to_owned(), 2.0);
        rates.insert("rest".to_owned(), 1.0);
        let solved =
            flow.with_rates(&rates).solve(NondetPolicy::Reject, &["work"]).expect("solves");
        let tp = solved.throughputs().expect("throughputs");
        // Alternating exp(2)/exp(1): cycle time 1.5, work throughput 2/3.
        assert!((tp[0].1 - 2.0 / 3.0).abs() < 1e-9, "{}", tp[0].1);
    }

    #[test]
    fn occupancy_matches_bounds_on_a_deterministic_model() {
        let flow = Flow::from_source(WORK_REST).expect("parses");
        let mut rates = HashMap::new();
        rates.insert("work".to_owned(), 2.0);
        rates.insert("rest".to_owned(), 1.0);
        let perf = flow.with_rates(&rates);
        let solved = perf.solve(NondetPolicy::Reject, &[]).expect("solves");
        // Functional state 1 (between work and rest) holds exp(1): the
        // chain spends 1/(1/2 + 1) · 1 = 2/3 of its time there.
        let occ = solved.occupancy(&[1]).expect("occupancy");
        assert!((occ - 2.0 / 3.0).abs() < 1e-9, "{occ}");
        // No nondeterminism: the scheduler interval collapses onto it.
        let bounds = perf.solve_bounds(&[]).expect("bounds");
        let i = bounds.occupancy_bounds(&[1]).expect("bounds");
        assert!((i.min - occ).abs() < 1e-9 && (i.max - occ).abs() < 1e-9, "{i:?}");
    }

    #[test]
    fn minimization_through_facade() {
        let flow = Flow::from_source("behaviour hide mid in (a; mid; stop |[mid]| mid; b; stop)")
            .expect("parses");
        let (min, stats) = flow.minimized(Equivalence::Branching);
        assert!(min.lts().num_states() < stats.states_before);
    }

    #[test]
    fn lumping_through_facade_preserves_measures() {
        let flow = Flow::from_source(WORK_REST).expect("parses");
        let mut rates = HashMap::new();
        rates.insert("work".to_owned(), 2.0);
        rates.insert("rest".to_owned(), 1.0);
        let perf = flow.with_rates(&rates);
        let (lumped, stats) = perf.lumped();
        assert!(stats.states_after <= stats.states_before);
        let a =
            perf.solve(NondetPolicy::Reject, &["work"]).expect("solves").throughputs().expect("tp")
                [0]
            .1;
        let b = lumped
            .solve(NondetPolicy::Reject, &["work"])
            .expect("solves")
            .throughputs()
            .expect("tp")[0]
            .1;
        assert!((a - b).abs() < 1e-9, "lumping must not change throughput");
    }

    #[test]
    fn on_the_fly_scan_matches_eager_counts() {
        let flow = Flow::from_source(WORK_REST).expect("parses");
        let summary = Flow::scan_on_the_fly(WORK_REST, &ReachOptions::default()).expect("scans");
        assert_eq!(summary.states, flow.lts().num_states());
        assert_eq!(summary.transitions, flow.lts().num_transitions());
        assert_eq!(summary.deadlocks, 0);
    }

    #[test]
    fn on_the_fly_deadlock_agrees_with_eager_witness() {
        let src = "behaviour a; b; stop";
        let eager = Flow::from_source(src).expect("parses").deadlock().expect("deadlocks");
        let otf = Flow::deadlock_on_the_fly(src, &ReachOptions::default()).expect("searches");
        assert_eq!(otf.witness.as_ref().map(Vec::len), Some(eager.len()));
    }

    #[test]
    fn on_the_fly_check_covers_fragment_and_declines_rest() {
        let src = "behaviour a; b; stop";
        let r =
            Flow::check_on_the_fly(src, "mu X. <\"b\"> true or <true> X", &ReachOptions::default())
                .expect("checks")
                .expect("in fragment");
        assert!(r.holds);
        assert_eq!(r.trace, Some(vec!["a".to_owned(), "b".to_owned()]));
        // Outside the fragment: caller falls back to the eager path.
        let none =
            Flow::check_on_the_fly(src, "<\"a\"> true", &ReachOptions::default()).expect("parses");
        assert!(none.is_none());
    }

    #[test]
    fn on_the_fly_weak_traces() {
        let with_tau = "behaviour hide m in (m; a; stop)";
        let plain = "behaviour a; stop";
        assert!(Flow::weak_traces_on_the_fly(with_tau, plain, 1 << 16).expect("compares").holds());
        let other = "behaviour b; stop";
        match Flow::weak_traces_on_the_fly(plain, other, 1 << 16).expect("compares") {
            multival_lts::equiv::Verdict::Inequivalent { witness: Some(w) } => {
                assert_eq!(w.len(), 1)
            }
            v => panic!("expected inequivalent with witness, got {v:?}"),
        }
    }

    #[test]
    fn hitting_time_through_facade() {
        // 3-state chain: initial --go--> mid --fin--> end(deadlock).
        let flow = Flow::from_source("behaviour go; fin; stop").expect("parses");
        let mut rates = HashMap::new();
        rates.insert("go".to_owned(), 2.0);
        rates.insert("fin".to_owned(), 2.0);
        let solved = flow.with_rates(&rates).solve(NondetPolicy::Reject, &[]).expect("solves");
        // Functional state 2 is the deadlock (BFS order: 0, 1, 2).
        let t = solved.mean_time_to_states(&[2]).expect("solves");
        assert!((t - 1.0).abs() < 1e-9, "{t}");
    }
}
