//! The `multival` command-line tool: the CADP-style verbs (explore, check,
//! minimize, compare, solve) over mini-LOTOS sources and `.aut` files.
//!
//! The logic lives here (testable); `src/bin/multival.rs` is a thin wrapper.

use crate::budget::Budget;
use crate::flow::{BoundsSolved, Flow, Interval, Solved};
use crate::report::{
    fmt_f, BoundsReport, BoundsRow, BoundsVerdict, FlyStats, ParStats, ReduceStageRow, ReduceStats,
    SimStats, StoreReport, Table,
};
use multival_ctmc::McOptions;
use multival_imc::to_ctmc::NondetPolicy;
use multival_lts::equiv::{
    compare_determinized, determinize_ts, equivalent, weak_trace_equivalent, Determinized, Verdict,
};
use multival_lts::io::{read_aut, read_blts, write_aut, write_blts, write_dot};
use multival_lts::minimize::{minimize, Equivalence};
use multival_lts::reach::ReachOptions;
use multival_lts::Lts;
use multival_pa::{explore, explore_partial, parse_spec, ExploreError, ExploreOptions};
use multival_par::Workers;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Exit status of an executed command, carried next to the rendered text so
/// the binary can turn soft failures (budget trips, non-convergence) into
/// nonzero exit codes while tests keep matching on the text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CmdStatus {
    /// Clean run.
    #[default]
    Ok,
    /// The CI-width stopping rule was not met within the trajectory cap.
    NotConverged,
    /// A `--timeout-secs`/`--max-states` budget cut the run short; the text
    /// reports partial results.
    BudgetExceeded,
}

impl CmdStatus {
    /// Process exit code for this status (`0`, `2`, `3`).
    #[must_use]
    pub fn exit_code(self) -> i32 {
        match self {
            CmdStatus::Ok => 0,
            CmdStatus::NotConverged => 2,
            CmdStatus::BudgetExceeded => 3,
        }
    }

    /// The worse of two statuses (budget trips dominate non-convergence).
    #[must_use]
    pub fn worst(self, other: CmdStatus) -> CmdStatus {
        if self.exit_code() >= other.exit_code() {
            self
        } else {
            other
        }
    }
}

/// Rendered output of one command plus its [`CmdStatus`]. Dereferences to
/// the text so existing call sites can keep using `contains`/`starts_with`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOut {
    /// The text to print.
    pub text: String,
    /// Exit status.
    pub status: CmdStatus,
}

impl CmdOut {
    /// Output with the given status.
    #[must_use]
    pub fn with_status(text: impl Into<String>, status: CmdStatus) -> CmdOut {
        CmdOut { text: text.into(), status }
    }
}

impl From<String> for CmdOut {
    fn from(text: String) -> CmdOut {
        CmdOut { text, status: CmdStatus::Ok }
    }
}

impl std::ops::Deref for CmdOut {
    type Target = str;
    fn deref(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for CmdOut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `explore <model.lot> [--aut out.aut] [--blts out.blts] [--dot out.dot]
    /// [--max-states N] [--timeout-secs T] [--threads N] [--on-the-fly]
    /// [--store hash|arena|spill] [--mem-budget BYTES]`
    Explore {
        /// Input model path.
        input: String,
        /// Write the LTS in Aldebaran format here.
        aut: Option<String>,
        /// Write the LTS in compact binary BLTS format here.
        blts: Option<String>,
        /// Write a Graphviz rendering here.
        dot: Option<String>,
        /// State-count / wall-clock budget.
        budget: Budget,
        /// Worker threads (1 = sequential, 0 = one per hardware thread).
        threads: usize,
        /// Scan the state space on the fly instead of materializing it.
        on_the_fly: bool,
        /// Dedup states through this store backend instead of the
        /// term-retaining index (`None` = classic exploration).
        store: Option<multival_lts::StoreKind>,
        /// Resident-memory budget for the spill backend, in bytes.
        mem_budget: Option<usize>,
    },
    /// `check <model.lot|lts.aut> <formula> [--max-states N]
    /// [--timeout-secs T] [--on-the-fly]` — μ-calculus model checking; with
    /// `--rate GATE=λ` the formula is a performance predicate instead,
    /// evaluated under the `--scheduler` treatment of nondeterminism.
    Check {
        /// Input model or LTS path.
        input: String,
        /// Formula text (μ-calculus, or a measure predicate in performance
        /// mode).
        formula: String,
        /// Gate → exponential rate; non-empty selects performance mode.
        rates: Vec<(String, f64)>,
        /// Throughput probes kept visible through the conversion.
        probes: Vec<String>,
        /// Treatment of internal nondeterminism in performance mode.
        scheduler: Scheduler,
        /// Decide fragment formulas by a short-circuiting search instead of
        /// the eager fixpoint evaluator.
        on_the_fly: bool,
        /// State-count / wall-clock budget for the exploration phase.
        budget: Budget,
    },
    /// `minimize <in> [--eq strong|branching] [--aut out.aut]`
    Minimize {
        /// Input model or LTS path.
        input: String,
        /// Equivalence to minimize modulo.
        eq: Equivalence,
        /// Output path.
        aut: Option<String>,
    },
    /// `reduce <model.lot> [--eq strong|branching] [--order smart|given|seed:N]
    /// [--aut out.aut] [--checkpoint DIR] [--threads N] [--max-states N]
    /// [--timeout-secs T]` — compositional reduction over the model's
    /// component network.
    Reduce {
        /// Input model path (mini-LOTOS with a parallel top behaviour).
        input: String,
        /// Equivalence to minimize modulo at every stage.
        eq: Equivalence,
        /// Composition-order policy.
        order: multival_lts::pipeline::Order,
        /// Write the reduced LTS in Aldebaran format here.
        aut: Option<String>,
        /// Write the reduced LTS in compact binary BLTS format here.
        blts: Option<String>,
        /// Per-stage checkpoint directory (resumes when it matches).
        checkpoint: Option<String>,
        /// Worker threads (1 = sequential, 0 = one per hardware thread).
        threads: usize,
        /// Cap on intermediate products / wall-clock deadline.
        budget: Budget,
        /// Stage products dedup through this store backend.
        store: Option<multival_lts::StoreKind>,
        /// Resident-memory budget for the spill backend, in bytes.
        mem_budget: Option<usize>,
    },
    /// `compare <a> <b> [--eq strong|branching|traces] [--on-the-fly]`
    Compare {
        /// Left input.
        left: String,
        /// Right input.
        right: String,
        /// Comparison relation.
        relation: Relation,
        /// Determinize straight from the term graphs (traces only).
        on_the_fly: bool,
    },
    /// `solve <model.lot> --rate GATE=λ ... [--probe GATE ...]`
    Solve {
        /// Input model path.
        input: String,
        /// Gate → exponential rate.
        rates: Vec<(String, f64)>,
        /// Throughput probes.
        probes: Vec<String>,
    },
    /// `simulate <model.lot|lts.aut> --rate GATE=λ ... [--probe GATE ...]
    /// [--horizon T] [--time T] [--trajectories N] [--seed S] [--threads N]
    /// [--rel-width W] [--confidence C] [--max-states N] [--timeout-secs T]`
    /// — Monte-Carlo estimation cross-checked against the numerical solvers.
    Simulate {
        /// Input model or LTS path.
        input: String,
        /// Gate → exponential rate.
        rates: Vec<(String, f64)>,
        /// Throughput probes.
        probes: Vec<String>,
        /// Occupancy horizon per trajectory.
        horizon: f64,
        /// Optional transient comparison time.
        time: Option<f64>,
        /// Trajectory cap.
        trajectories: usize,
        /// Base seed of the deterministic per-trajectory streams.
        seed: u64,
        /// Worker threads (1 = sequential, 0 = one per hardware thread).
        threads: usize,
        /// Relative CI half-width stopping target.
        rel_width: f64,
        /// Confidence level of the intervals.
        confidence: f64,
        /// State-count / wall-clock budget (cap on exploration; deadline
        /// checked between simulation batches).
        budget: Budget,
        /// `Bounds` adds the per-state occupancy interval over all
        /// schedulers next to the sampled estimates.
        scheduler: Scheduler,
    },
    /// `serve [--addr HOST:PORT] [--cache-dir DIR] [--workers N]
    /// [--queue-cap N] [--cache-capacity N] [--journal DIR]
    /// [--event-threads N]` — run the evaluation service (handled by the
    /// `multival` binary in the `multival-svc` crate).
    Serve {
        /// Listen address.
        addr: String,
        /// On-disk cache tier directory (`None` = in-memory cache only,
        /// unless `--journal` supplies a default).
        cache_dir: Option<String>,
        /// Worker threads evaluating jobs.
        workers: usize,
        /// Bounded submission-queue capacity (further posts are rejected).
        queue_cap: usize,
        /// In-memory cache entries per shard times shard count.
        cache_capacity: usize,
        /// Crash-recovery journal directory (`None` = no durability).
        journal: Option<String>,
        /// Event-loop I/O threads sharing the listener.
        event_threads: usize,
    },
    /// `explore-space <spec.toml> [--workers N] [--endpoint HOST:PORT]
    /// [--cache-dir DIR] [--max-states N]` — design-space sweep driver
    /// (handled by the `multival` binary in the `multival-svc` crate).
    ExploreSpace {
        /// Sweep spec path (TOML subset or JSON).
        spec: String,
        /// Evaluation threads for the in-process engine.
        workers: usize,
        /// Submit over HTTP to a live `serve` endpoint instead.
        endpoint: Option<String>,
        /// Disk tier for the in-process result cache (re-runs resume).
        cache_dir: Option<String>,
        /// Per-point CTMC state cap; a tripped point reports as partial
        /// and the run exits 3.
        max_states: Option<usize>,
    },
    /// `walk <model.lot> [--steps N] [--seed S]` — random execution trace.
    Walk {
        /// Input model path.
        input: String,
        /// Maximum steps.
        steps: usize,
        /// RNG seed (reproducible).
        seed: u64,
    },
    /// `refines <imp> <spec> [--weak]` — simulation-preorder check.
    Refines {
        /// Implementation input.
        imp: String,
        /// Specification input.
        spec: String,
        /// Use weak (τ-abstracting) simulation.
        weak: bool,
    },
    /// `lint <model.lot>` — static modeling-pitfall checks.
    Lint {
        /// Input model path.
        input: String,
    },
    /// `fuzz [--seeds A..B] [--corpus DIR] [--threads N] [--max-states N]
    /// [--timeout-secs T] [--max-steps N] [--max-colors N] [--max-cap N]
    /// [--inject-flip] [--store hash|arena|spill] [--mem-budget BYTES]` —
    /// differential fuzzing over generated xMAS fabrics.
    Fuzz {
        /// Seed range, start inclusive, end exclusive.
        seeds: (u64, u64),
        /// Directory for minimized reproducers (skipped on budget trips).
        corpus: Option<String>,
        /// Worker threads (1 = sequential, 0 = one per hardware thread).
        threads: usize,
        /// State-count / wall-clock budget for the whole sweep.
        budget: Budget,
        /// Generator growth steps per fabric.
        max_steps: usize,
        /// Generator color-palette size (1..=4).
        max_colors: usize,
        /// Generator queue-capacity bound (1..=3).
        max_cap: usize,
        /// Plant the switch-polarity renderer bug (harness self-test: the
        /// sweep must then report mismatches).
        inject_flip: bool,
        /// Stage products dedup through this store backend.
        store: Option<multival_lts::StoreKind>,
        /// Resident-memory budget for the spill backend, in bytes.
        mem_budget: Option<usize>,
    },
    /// `help`
    Help,
}

/// How the performance side treats internal (τ) nondeterminism left after
/// lumping: one concrete resolution, or quantification over all schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Resolve every τ-choice uniformly at random (the historical
    /// single-number answer).
    #[default]
    Uniform,
    /// Guaranteed worst case: the infimum over all schedulers.
    Min,
    /// Best case: the supremum over all schedulers.
    Max,
    /// The full `[min, max]` interval over all schedulers.
    Bounds,
}

/// Comparison relation for `compare`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// Strong bisimulation.
    Strong,
    /// Branching bisimulation.
    Branching,
    /// Weak trace equivalence (gives a distinguishing trace).
    Traces,
}

/// Usage text.
pub const USAGE: &str = "\
multival — functional verification + performance evaluation (DATE'08 flow)

USAGE:
  multival explore  <model.lot> [--aut OUT] [--blts OUT] [--dot OUT]
                    [--max-states N] [--timeout-secs T]
                    [--threads N]   (1 = sequential, 0 = all hardware threads)
                    [--on-the-fly]  (scan without materializing the LTS)
                    [--store hash|arena|spill] [--mem-budget BYTES]
  multival check    <model.lot|lts.aut> <FORMULA> [--max-states N]
                    [--timeout-secs T] [--on-the-fly]
                    [--rate GATE=RATE ...] [--probe GATE ...]
                    [--scheduler min|max|bounds|uniform]
  multival minimize <model.lot|lts.aut> [--eq strong|branching] [--aut OUT]
  multival reduce   <model.lot> [--eq strong|branching] [--order smart|given|seed:N]
                    [--aut OUT] [--blts OUT] [--checkpoint DIR] [--threads N]
                    [--max-states N] [--timeout-secs T]
                    [--store hash|arena|spill] [--mem-budget BYTES]
  multival compare  <A> <B> [--eq strong|branching|traces] [--on-the-fly]
  multival solve    <model.lot> --rate GATE=RATE ... [--probe GATE ...]
  multival simulate <model.lot|lts.aut> --rate GATE=RATE ... [--probe GATE ...]
                    [--horizon T] [--time T] [--trajectories N] [--seed S]
                    [--threads N] [--rel-width W] [--confidence C]
                    [--max-states N] [--timeout-secs T]
                    [--scheduler uniform|bounds]
  multival walk     <model.lot> [--steps N] [--seed S]
  multival refines  <IMP> <SPEC> [--weak]
  multival lint     <model.lot>
  multival fuzz     [--seeds A..B] [--corpus DIR] [--threads N]
                    [--max-states N] [--timeout-secs T]
                    [--max-steps N] [--max-colors N] [--max-cap N]
                    [--inject-flip] [--store hash|arena|spill] [--mem-budget BYTES]
  multival serve    [--addr HOST:PORT] [--cache-dir DIR] [--workers N]
                    [--queue-cap N] [--cache-capacity N] [--journal DIR]
                    [--event-threads N]
  multival explore-space <spec.toml|spec.json> [--workers N]
                    [--endpoint HOST:PORT] [--cache-dir DIR] [--max-states N]

Inputs ending in .aut are read as Aldebaran LTSs, inputs ending in .blts as
compact binary LTSs; anything else is parsed as mini-LOTOS. FORMULA is modal
mu-calculus, e.g. 'nu X. <true> true and [true] X'.

check with --rate enters performance mode: FORMULA is then a measure
predicate — throughput(GATE), occupancy(STATE,...), latency(STATE,...), or
transient(STATE,... @ TIME) compared with >= or <= — evaluated on the
model's Markov semantics (states are functional state ids). --scheduler
picks how internal nondeterminism left after hiding is treated: uniform
resolves every choice uniformly (one number), min/max answer with the
guaranteed worst/best case over all schedulers, and bounds reports the full
[min, max] interval. The verdict is NO VERDICT (exit 2) exactly when the
interval straddles the threshold. simulate --scheduler bounds prints the
per-state occupancy interval over all schedulers next to the sampled
estimates, which must fall inside it.

--store picks the state-dedup backend for explore/reduce: `hash` retains a
term per state (the classic layout), `arena` packs state keys into a
contiguous arena with a fingerprint index, and `spill` additionally pages
sealed arena segments to a temp file once resident bytes exceed
--mem-budget (accepts k/m/g suffixes). Every backend produces byte-identical
output.

--on-the-fly walks the implicit transition system instead of generating the
full LTS first: explore reports visited states, check decides the
safety/possibility/inevitability fragment by a short-circuiting search (other
formulas fall back to the eager evaluator), and compare --eq traces
determinizes straight from the term graphs.

reduce folds the model's parallel components into the product one at a time,
hiding each gate as soon as all of its owners are folded and minimizing after
every stage (compositional smart reduction). The result is canonical: every
--order policy and --threads count produces byte-identical output. With
--checkpoint DIR, per-stage .aut files let an interrupted run resume.

simulate runs the statistical engine: batched Monte-Carlo trajectories with
Welford statistics and CI-width stopping, reported next to the numerical
steady-state (and, with --time, transient) answers. Estimates depend only on
--seed, never on --threads. simulate exits nonzero (2) when the stopping
rule is not met within the trajectory cap.

--timeout-secs / --max-states bound a run: when a budget trips, partial
results are reported with a `Budget exceeded` note and exit code 3.

explore-space expands a sweep spec (a TOML-subset or JSON file: a [base]
pipeline configuration plus [axes] value lists crossed into points —
capacities, rates, delay styles exponential|erlang:K|det:TOL, schedulers)
into canonical `sweep` jobs, evaluates them through the job engine
(in-process, or against a live serve with --endpoint so identical points
cache and coalesce), and reports per-point measures plus the
accuracy-vs-peak-states Pareto front. The report is byte-identical across
--workers counts, transports, and cache states; with --cache-dir (or a
long-lived serve) a re-run only computes new points. A point tripping
--max-states is reported partial and the run exits 3.

fuzz sweeps seeded random xMAS fabrics (--seeds A..B, end exclusive; size
shaped by --max-steps/--max-colors/--max-cap) through the whole flow and
differentially cross-checks it against itself: smart compositional reduction
vs monolithic composition, the direct network builder vs the rendered
mini-LOTOS frontend, on-the-fly deadlock search vs reduced-model detection,
and scheduler throughput-bound sanity. Any disagreement is minimized and, with
--corpus DIR, written as a standalone .lot reproducer; mismatches exit 1.
--inject-flip plants a switch-polarity bug in the renderer to prove the
harness catches miscompilation. A budget trip (exit 3) skips the corpus
write.

serve starts the long-running evaluation service: a bounded job queue and
worker pool behind a std-only HTTP/1.1 JSON API (POST /v1/jobs,
GET /v1/jobs/{id}, GET /v1/metrics, GET /v1/healthz), fronted by a
content-addressed result cache. SIGTERM/SIGINT drains in-flight jobs, then
prints the service report.
";

/// Parses argv (without the program name).
///
/// # Errors
///
/// Returns a usage message on malformed invocations.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("explore") => {
            let mut input = None;
            let mut aut = None;
            let mut blts = None;
            let mut dot = None;
            let mut budget = Budget::default();
            let mut threads = 1usize;
            let mut on_the_fly = false;
            let mut store = None;
            let mut mem_budget = None;
            while let Some(a) = it.next() {
                match a {
                    "--aut" => aut = Some(next_value(&mut it, "--aut")?),
                    "--blts" => blts = Some(next_value(&mut it, "--blts")?),
                    "--dot" => dot = Some(next_value(&mut it, "--dot")?),
                    "--max-states" => budget.max_states = Some(parse_flag(&mut it, a)?),
                    "--timeout-secs" => budget = budget.with_timeout_secs(parse_flag(&mut it, a)?),
                    "--threads" => threads = parse_flag(&mut it, a)?,
                    "--on-the-fly" => on_the_fly = true,
                    "--store" => store = Some(parse_store(&next_value(&mut it, "--store")?)?),
                    "--mem-budget" => {
                        mem_budget = Some(parse_mem(&next_value(&mut it, "--mem-budget")?)?)
                    }
                    other if input.is_none() => input = Some(other.to_owned()),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            if on_the_fly && (aut.is_some() || dot.is_some() || blts.is_some()) {
                return Err("--on-the-fly materializes no LTS to write; \
                            drop --aut/--blts/--dot or the flag"
                    .to_owned());
            }
            if on_the_fly && budget.timeout.is_some() {
                return Err("--timeout-secs applies to materializing exploration; \
                            the on-the-fly scan is bounded by --max-states"
                    .to_owned());
            }
            if on_the_fly && store.is_some() {
                return Err("--store applies to materializing exploration; \
                            the on-the-fly scan keeps no state table to back"
                    .to_owned());
            }
            Ok(Command::Explore {
                input: input.ok_or("explore needs a model path")?,
                aut,
                blts,
                dot,
                budget,
                threads,
                on_the_fly,
                store,
                mem_budget,
            })
        }
        Some("check") => {
            let mut positional = Vec::new();
            let mut on_the_fly = false;
            let mut budget = Budget::default();
            let mut rates = Vec::new();
            let mut probes = Vec::new();
            let mut scheduler = None;
            while let Some(a) = it.next() {
                match a {
                    "--on-the-fly" => on_the_fly = true,
                    "--max-states" => budget.max_states = Some(parse_flag(&mut it, a)?),
                    "--timeout-secs" => budget = budget.with_timeout_secs(parse_flag(&mut it, a)?),
                    "--rate" => rates.push(parse_rate(&next_value(&mut it, "--rate")?)?),
                    "--probe" => probes.push(next_value(&mut it, "--probe")?),
                    "--scheduler" => {
                        scheduler = Some(parse_scheduler(&next_value(&mut it, "--scheduler")?)?)
                    }
                    other => positional.push(other.to_owned()),
                }
            }
            if positional.len() != 2 {
                return Err("check needs a model path and a formula".to_owned());
            }
            if rates.is_empty() && (scheduler.is_some() || !probes.is_empty()) {
                return Err("--scheduler/--probe select the performance side of check; \
                            add at least one --rate GATE=RATE"
                    .to_owned());
            }
            if on_the_fly && !rates.is_empty() {
                return Err("--on-the-fly applies to mu-calculus check; performance \
                            predicates need the materialized Markov model"
                    .to_owned());
            }
            let formula = positional.pop().expect("len 2");
            let input = positional.pop().expect("len 1");
            Ok(Command::Check {
                input,
                formula,
                rates,
                probes,
                scheduler: scheduler.unwrap_or_default(),
                on_the_fly,
                budget,
            })
        }
        Some("minimize") => {
            let mut input = None;
            let mut eq = Equivalence::Branching;
            let mut aut = None;
            while let Some(a) = it.next() {
                match a {
                    "--eq" => {
                        eq = match next_value(&mut it, "--eq")?.as_str() {
                            "strong" => Equivalence::Strong,
                            "branching" => Equivalence::Branching,
                            other => return Err(format!("unknown equivalence `{other}`")),
                        }
                    }
                    "--aut" => aut = Some(next_value(&mut it, "--aut")?),
                    other if input.is_none() => input = Some(other.to_owned()),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            Ok(Command::Minimize { input: input.ok_or("minimize needs an input")?, eq, aut })
        }
        Some("reduce") => {
            let mut input = None;
            let mut eq = Equivalence::Branching;
            let mut order = multival_lts::pipeline::Order::Smart;
            let mut aut = None;
            let mut blts = None;
            let mut checkpoint = None;
            let mut threads = 1usize;
            let mut budget = Budget::default();
            let mut store = None;
            let mut mem_budget = None;
            while let Some(a) = it.next() {
                match a {
                    "--eq" => {
                        eq = match next_value(&mut it, "--eq")?.as_str() {
                            "strong" => Equivalence::Strong,
                            "branching" => Equivalence::Branching,
                            other => return Err(format!("unknown equivalence `{other}`")),
                        }
                    }
                    "--order" => order = parse_order(&next_value(&mut it, "--order")?)?,
                    "--aut" => aut = Some(next_value(&mut it, "--aut")?),
                    "--blts" => blts = Some(next_value(&mut it, "--blts")?),
                    "--checkpoint" => checkpoint = Some(next_value(&mut it, "--checkpoint")?),
                    "--threads" => threads = parse_flag(&mut it, a)?,
                    "--max-states" => budget.max_states = Some(parse_flag(&mut it, a)?),
                    "--timeout-secs" => budget = budget.with_timeout_secs(parse_flag(&mut it, a)?),
                    "--store" => store = Some(parse_store(&next_value(&mut it, "--store")?)?),
                    "--mem-budget" => {
                        mem_budget = Some(parse_mem(&next_value(&mut it, "--mem-budget")?)?)
                    }
                    other if input.is_none() => input = Some(other.to_owned()),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            Ok(Command::Reduce {
                input: input.ok_or("reduce needs a model path")?,
                eq,
                order,
                aut,
                blts,
                checkpoint,
                threads,
                budget,
                store,
                mem_budget,
            })
        }
        Some("compare") => {
            let mut paths = Vec::new();
            let mut relation = Relation::Branching;
            let mut on_the_fly = false;
            while let Some(a) = it.next() {
                match a {
                    "--eq" => {
                        relation = match next_value(&mut it, "--eq")?.as_str() {
                            "strong" => Relation::Strong,
                            "branching" => Relation::Branching,
                            "traces" => Relation::Traces,
                            other => return Err(format!("unknown relation `{other}`")),
                        }
                    }
                    "--on-the-fly" => on_the_fly = true,
                    other => paths.push(other.to_owned()),
                }
            }
            if paths.len() != 2 {
                return Err("compare needs exactly two inputs".to_owned());
            }
            if on_the_fly && relation != Relation::Traces {
                return Err("--on-the-fly compare supports --eq traces only; bisimulations \
                     need the materialized LTSs"
                    .to_owned());
            }
            let right = paths.pop().expect("len 2");
            let left = paths.pop().expect("len 1");
            Ok(Command::Compare { left, right, relation, on_the_fly })
        }
        Some("lint") => {
            let input = it.next().ok_or("lint needs a model path")?.to_owned();
            if let Some(extra) = it.next() {
                return Err(format!("unexpected argument `{extra}`"));
            }
            Ok(Command::Lint { input })
        }
        Some("fuzz") => {
            let mut seeds = (0u64, 16u64);
            let mut corpus = None;
            let mut threads = 1usize;
            let mut budget = Budget::default();
            let mut max_steps = 7usize;
            let mut max_colors = 2usize;
            let mut max_cap = 2usize;
            let mut inject_flip = false;
            let mut store = None;
            let mut mem_budget = None;
            while let Some(a) = it.next() {
                match a {
                    "--seeds" => seeds = parse_seed_range(&next_value(&mut it, "--seeds")?)?,
                    "--corpus" => corpus = Some(next_value(&mut it, "--corpus")?),
                    "--threads" => threads = parse_flag(&mut it, a)?,
                    "--max-states" => budget.max_states = Some(parse_flag(&mut it, a)?),
                    "--timeout-secs" => budget = budget.with_timeout_secs(parse_flag(&mut it, a)?),
                    "--max-steps" => max_steps = parse_flag(&mut it, a)?,
                    "--max-colors" => max_colors = parse_flag(&mut it, a)?,
                    "--max-cap" => max_cap = parse_flag(&mut it, a)?,
                    "--inject-flip" => inject_flip = true,
                    "--store" => store = Some(parse_store(&next_value(&mut it, "--store")?)?),
                    "--mem-budget" => {
                        mem_budget = Some(parse_mem(&next_value(&mut it, "--mem-budget")?)?)
                    }
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            Ok(Command::Fuzz {
                seeds,
                corpus,
                threads,
                budget,
                max_steps,
                max_colors,
                max_cap,
                inject_flip,
                store,
                mem_budget,
            })
        }
        Some("walk") => {
            let mut input = None;
            let mut steps = 20usize;
            let mut seed = 0u64;
            while let Some(a) = it.next() {
                match a {
                    "--steps" => {
                        steps = next_value(&mut it, "--steps")?
                            .parse()
                            .map_err(|_| "--steps needs a number".to_owned())?
                    }
                    "--seed" => {
                        seed = next_value(&mut it, "--seed")?
                            .parse()
                            .map_err(|_| "--seed needs a number".to_owned())?
                    }
                    other if input.is_none() => input = Some(other.to_owned()),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            Ok(Command::Walk { input: input.ok_or("walk needs a model path")?, steps, seed })
        }
        Some("refines") => {
            let mut paths = Vec::new();
            let mut weak = false;
            for a in it.by_ref() {
                match a {
                    "--weak" => weak = true,
                    other => paths.push(other.to_owned()),
                }
            }
            if paths.len() != 2 {
                return Err("refines needs exactly two inputs".to_owned());
            }
            let spec = paths.pop().expect("len 2");
            let imp = paths.pop().expect("len 1");
            Ok(Command::Refines { imp, spec, weak })
        }
        Some("solve") => {
            let mut input = None;
            let mut rates = Vec::new();
            let mut probes = Vec::new();
            while let Some(a) = it.next() {
                match a {
                    "--rate" => rates.push(parse_rate(&next_value(&mut it, "--rate")?)?),
                    "--probe" => probes.push(next_value(&mut it, "--probe")?),
                    other if input.is_none() => input = Some(other.to_owned()),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            if rates.is_empty() {
                return Err("solve needs at least one --rate GATE=RATE".to_owned());
            }
            Ok(Command::Solve { input: input.ok_or("solve needs a model path")?, rates, probes })
        }
        Some("simulate") => {
            let mut input = None;
            let mut rates = Vec::new();
            let mut probes = Vec::new();
            let mut horizon = 100.0f64;
            let mut time = None;
            let mut trajectories = 20_000usize;
            let mut seed = 42u64;
            let mut threads = 1usize;
            let mut rel_width = 0.05f64;
            let mut confidence = 0.99f64;
            let mut budget = Budget::default();
            let mut scheduler = Scheduler::Uniform;
            while let Some(a) = it.next() {
                match a {
                    "--rate" => rates.push(parse_rate(&next_value(&mut it, "--rate")?)?),
                    "--probe" => probes.push(next_value(&mut it, "--probe")?),
                    "--horizon" => {
                        horizon = next_value(&mut it, "--horizon")?
                            .parse()
                            .map_err(|_| "--horizon needs a number".to_owned())?
                    }
                    "--time" => {
                        time = Some(
                            next_value(&mut it, "--time")?
                                .parse()
                                .map_err(|_| "--time needs a number".to_owned())?,
                        )
                    }
                    "--trajectories" => {
                        trajectories = next_value(&mut it, "--trajectories")?
                            .parse()
                            .map_err(|_| "--trajectories needs an integer".to_owned())?
                    }
                    "--seed" => {
                        seed = next_value(&mut it, "--seed")?
                            .parse()
                            .map_err(|_| "--seed needs an integer".to_owned())?
                    }
                    "--threads" => {
                        threads = next_value(&mut it, "--threads")?
                            .parse()
                            .map_err(|_| "--threads needs an integer".to_owned())?
                    }
                    "--rel-width" => {
                        rel_width = next_value(&mut it, "--rel-width")?
                            .parse()
                            .map_err(|_| "--rel-width needs a number".to_owned())?
                    }
                    "--confidence" => {
                        confidence = next_value(&mut it, "--confidence")?
                            .parse()
                            .map_err(|_| "--confidence needs a number".to_owned())?
                    }
                    "--max-states" => budget.max_states = Some(parse_flag(&mut it, a)?),
                    "--timeout-secs" => budget = budget.with_timeout_secs(parse_flag(&mut it, a)?),
                    "--scheduler" => {
                        scheduler = parse_scheduler(&next_value(&mut it, "--scheduler")?)?
                    }
                    other if input.is_none() => input = Some(other.to_owned()),
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            if rates.is_empty() {
                return Err("simulate needs at least one --rate GATE=RATE".to_owned());
            }
            if !(confidence > 0.0 && confidence < 1.0) {
                return Err("--confidence must lie in (0, 1)".to_owned());
            }
            if matches!(scheduler, Scheduler::Min | Scheduler::Max) {
                return Err("simulate samples one concrete resolution; --scheduler min|max \
                            have no sampling semantics (use bounds here, or `check`)"
                    .to_owned());
            }
            Ok(Command::Simulate {
                input: input.ok_or("simulate needs a model path")?,
                rates,
                probes,
                horizon,
                time,
                trajectories,
                seed,
                threads,
                rel_width,
                confidence,
                budget,
                scheduler,
            })
        }
        Some("serve") => {
            let mut addr = "127.0.0.1:7171".to_owned();
            let mut cache_dir = None;
            let mut workers = 2usize;
            let mut queue_cap = 64usize;
            let mut cache_capacity = 256usize;
            let mut journal = None;
            let mut event_threads = 2usize;
            while let Some(a) = it.next() {
                match a {
                    "--addr" => addr = next_value(&mut it, "--addr")?,
                    "--cache-dir" => cache_dir = Some(next_value(&mut it, "--cache-dir")?),
                    "--workers" => workers = parse_flag(&mut it, a)?,
                    "--queue-cap" => queue_cap = parse_flag(&mut it, a)?,
                    "--cache-capacity" => cache_capacity = parse_flag(&mut it, a)?,
                    "--journal" => journal = Some(next_value(&mut it, "--journal")?),
                    "--event-threads" => event_threads = parse_flag(&mut it, a)?,
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            if workers == 0 {
                return Err("--workers must be at least 1".to_owned());
            }
            if queue_cap == 0 {
                return Err("--queue-cap must be at least 1".to_owned());
            }
            if event_threads == 0 {
                return Err("--event-threads must be at least 1".to_owned());
            }
            Ok(Command::Serve {
                addr,
                cache_dir,
                workers,
                queue_cap,
                cache_capacity,
                journal,
                event_threads,
            })
        }
        Some("explore-space") => {
            let mut spec = None;
            let mut workers = 2usize;
            let mut endpoint = None;
            let mut cache_dir = None;
            let mut max_states = None;
            while let Some(a) = it.next() {
                match a {
                    "--workers" => workers = parse_flag(&mut it, a)?,
                    "--endpoint" => endpoint = Some(next_value(&mut it, "--endpoint")?),
                    "--cache-dir" => cache_dir = Some(next_value(&mut it, "--cache-dir")?),
                    "--max-states" => max_states = Some(parse_flag(&mut it, a)?),
                    other if !other.starts_with('-') && spec.is_none() => {
                        spec = Some(other.to_owned());
                    }
                    other => return Err(format!("unexpected argument `{other}`")),
                }
            }
            let spec = spec.ok_or("explore-space needs a sweep spec path")?;
            if workers == 0 {
                return Err("--workers must be at least 1".to_owned());
            }
            if endpoint.is_some() && cache_dir.is_some() {
                return Err("--cache-dir applies to the in-process engine; with --endpoint the \
                     server owns the cache"
                    .to_owned());
            }
            Ok(Command::ExploreSpace { spec, workers, endpoint, cache_dir, max_states })
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

/// Parses an `--order` value: `smart`, `given`, or `seed:N`.
fn parse_order(value: &str) -> Result<multival_lts::pipeline::Order, String> {
    use multival_lts::pipeline::Order;
    match value {
        "smart" => Ok(Order::Smart),
        "given" => Ok(Order::Given),
        other => match other.strip_prefix("seed:").and_then(|s| s.parse().ok()) {
            Some(seed) => Ok(Order::Seeded(seed)),
            None => Err(format!("unknown order `{other}` (expected smart, given, or seed:N)")),
        },
    }
}

/// Parses a `--rate` value: `GATE=RATE`.
fn parse_rate(spec: &str) -> Result<(String, f64), String> {
    let (gate, rate) =
        spec.split_once('=').ok_or_else(|| format!("--rate `{spec}` must be GATE=RATE"))?;
    let rate: f64 = rate.parse().map_err(|_| format!("invalid rate in `{spec}`"))?;
    Ok((gate.to_owned(), rate))
}

/// Parses a `--scheduler` value: `min`, `max`, `bounds`, or `uniform`.
fn parse_scheduler(value: &str) -> Result<Scheduler, String> {
    match value {
        "uniform" => Ok(Scheduler::Uniform),
        "min" => Ok(Scheduler::Min),
        "max" => Ok(Scheduler::Max),
        "bounds" => Ok(Scheduler::Bounds),
        other => {
            Err(format!("unknown scheduler `{other}` (expected min, max, bounds, or uniform)"))
        }
    }
}

/// Parses a `--store` value: `hash`, `arena`, or `spill`.
fn parse_store(value: &str) -> Result<multival_lts::StoreKind, String> {
    value
        .parse()
        .map_err(|_| format!("unknown store backend `{value}` (expected hash, arena, or spill)"))
}

/// Parses a `--mem-budget` value: plain bytes, or with a `k`/`m`/`g`
/// (KiB/MiB/GiB) suffix, e.g. `512m`.
fn parse_mem(value: &str) -> Result<usize, String> {
    let err = || format!("--mem-budget `{value}` must be BYTES or BYTES{{k|m|g}}");
    let (digits, shift) = match value.as_bytes().last() {
        Some(b'k' | b'K') => (&value[..value.len() - 1], 10),
        Some(b'm' | b'M') => (&value[..value.len() - 1], 20),
        Some(b'g' | b'G') => (&value[..value.len() - 1], 30),
        _ => (value, 0),
    };
    let n: usize = digits.parse().map_err(|_| err())?;
    n.checked_shl(shift).filter(|_| n.leading_zeros() >= shift).ok_or_else(err)
}

/// Parses a `--seeds` value: `A..B` (start inclusive, end exclusive).
fn parse_seed_range(value: &str) -> Result<(u64, u64), String> {
    let err = || format!("--seeds `{value}` must be A..B with A < B");
    let (a, b) = value.split_once("..").ok_or_else(err)?;
    let start: u64 = a.parse().map_err(|_| err())?;
    let end: u64 = b.parse().map_err(|_| err())?;
    if start >= end {
        return Err(err());
    }
    Ok((start, end))
}

fn next_value<'a>(it: &mut impl Iterator<Item = &'a str>, flag: &str) -> Result<String, String> {
    it.next().map(str::to_owned).ok_or_else(|| format!("{flag} needs a value"))
}

/// Takes and parses the value of a numeric flag.
fn parse_flag<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a str>,
    flag: &str,
) -> Result<T, String> {
    next_value(it, flag)?.parse().map_err(|_| format!("{flag} needs a number"))
}

/// Runs `check --on-the-fly`. Returns `Ok(None)` when the formula is
/// outside the searchable fragment, directing the caller to the eager
/// evaluator.
fn check_on_the_fly(input: &str, formula: &str) -> Result<Option<String>, Box<dyn Error>> {
    let options = ReachOptions::default();
    let (report, materialized) = if is_lts_file(input) {
        let lts = load(input, 0)?;
        let f = multival_mcl::parse_formula(formula)?;
        match multival_mcl::check_on_the_fly(&lts, &f, &options) {
            None => return Ok(None),
            Some(r) => (r?, lts.num_states()),
        }
    } else {
        let text =
            std::fs::read_to_string(input).map_err(|e| format!("cannot read `{input}`: {e}"))?;
        match Flow::check_on_the_fly(&text, formula, &options)? {
            None => return Ok(None),
            Some(r) => (r, 0),
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "{}", if report.holds { "TRUE" } else { "FALSE" });
    if let Some(trace) = &report.trace {
        let kind = if report.holds { "witness" } else { "counterexample" };
        let _ = writeln!(out, "{kind} trace: {}", trace.join(" "));
    }
    let stats = FlyStats {
        visited: report.stats.visited,
        transitions: report.stats.transitions,
        materialized,
        // A truncated search is an error, caught above — never a verdict.
        truncated: false,
    };
    out.push_str(&stats.render());
    Ok(Some(out))
}

/// A performance measure named in a `check` predicate. State arguments are
/// functional state ids of the pre-decoration LTS.
#[derive(Debug, Clone, PartialEq)]
enum Measure {
    /// Long-run throughput of a probe gate.
    Throughput(String),
    /// Long-run fraction of time spent in a set of functional states.
    Occupancy(Vec<u32>),
    /// Expected time to first reach a set of functional states.
    Latency(Vec<u32>),
    /// Probability of reaching a set of functional states by a deadline.
    Transient(Vec<u32>, f64),
}

impl fmt::Display for Measure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let join = |ids: &[u32]| ids.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",");
        match self {
            Measure::Throughput(gate) => write!(f, "throughput({gate})"),
            Measure::Occupancy(ids) => write!(f, "occupancy({})", join(ids)),
            Measure::Latency(ids) => write!(f, "latency({})", join(ids)),
            Measure::Transient(ids, t) => write!(f, "transient({} @ {t})", join(ids)),
        }
    }
}

/// Comparison direction of a performance predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cmp {
    /// `>=`.
    Ge,
    /// `<=`.
    Le,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Ge => ">=",
            Cmp::Le => "<=",
        })
    }
}

/// A parsed performance predicate: `MEASURE >= V` or `MEASURE <= V`.
#[derive(Debug, Clone, PartialEq)]
struct PerfPredicate {
    measure: Measure,
    cmp: Cmp,
    threshold: f64,
}

impl PerfPredicate {
    /// Three-valued verdict of a scheduler interval against the threshold:
    /// `TRUE`/`FALSE` when every scheduler agrees, `NO VERDICT` when the
    /// interval straddles it.
    fn verdict(&self, i: &Interval) -> BoundsVerdict {
        match self.cmp {
            Cmp::Ge if i.min >= self.threshold => BoundsVerdict::True,
            Cmp::Ge if i.max < self.threshold => BoundsVerdict::False,
            Cmp::Le if i.max <= self.threshold => BoundsVerdict::True,
            Cmp::Le if i.min > self.threshold => BoundsVerdict::False,
            _ => BoundsVerdict::NoVerdict,
        }
    }
}

/// Parses a performance predicate, e.g. `throughput(push) >= 0.5`,
/// `occupancy(1,2) <= 0.8`, `latency(3) <= 2`, `transient(3 @ 0.5) >= 0.9`.
fn parse_perf_predicate(text: &str) -> Result<PerfPredicate, String> {
    let (lhs, cmp, rhs) = if let Some((l, r)) = text.split_once(">=") {
        (l, Cmp::Ge, r)
    } else if let Some((l, r)) = text.split_once("<=") {
        (l, Cmp::Le, r)
    } else {
        return Err(format!(
            "performance predicate `{text}` must compare a measure with >= or <=, \
             e.g. `throughput(push) >= 0.5`"
        ));
    };
    let threshold: f64 =
        rhs.trim().parse().map_err(|_| format!("invalid threshold `{}`", rhs.trim()))?;
    let lhs = lhs.trim();
    let (name, args) = lhs
        .split_once('(')
        .and_then(|(n, a)| a.strip_suffix(')').map(|a| (n.trim(), a.trim())))
        .ok_or_else(|| format!("measure `{lhs}` must be NAME(ARGS), e.g. `latency(3)`"))?;
    let measure = match name {
        "throughput" => {
            if args.is_empty() || args.contains(',') {
                return Err("throughput takes exactly one probe gate".to_owned());
            }
            Measure::Throughput(args.to_owned())
        }
        "occupancy" => Measure::Occupancy(parse_state_ids(args)?),
        "latency" => Measure::Latency(parse_state_ids(args)?),
        "transient" => {
            let (ids, t) = args.split_once('@').ok_or_else(|| {
                "transient needs a deadline: `transient(STATE,... @ TIME)`".to_owned()
            })?;
            let time: f64 = t.trim().parse().map_err(|_| format!("invalid time `{}`", t.trim()))?;
            if time < 0.0 {
                return Err("transient time must be nonnegative".to_owned());
            }
            Measure::Transient(parse_state_ids(ids)?, time)
        }
        other => {
            return Err(format!(
                "unknown measure `{other}` (expected throughput, occupancy, latency, or transient)"
            ))
        }
    };
    Ok(PerfPredicate { measure, cmp, threshold })
}

/// Parses a comma-separated, non-empty list of functional state ids.
fn parse_state_ids(args: &str) -> Result<Vec<u32>, String> {
    let ids: Vec<u32> = args
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<u32>().map_err(|_| format!("invalid state id `{s}`")))
        .collect::<Result<_, _>>()?;
    if ids.is_empty() {
        return Err("at least one functional state id is required".to_owned());
    }
    Ok(ids)
}

/// Evaluates a measure on a concretely resolved CTMC.
fn eval_measure(solved: &Solved, measure: &Measure) -> Result<f64, Box<dyn Error>> {
    Ok(match measure {
        Measure::Throughput(gate) => solved
            .throughputs()?
            .into_iter()
            .find(|(name, _)| name == gate)
            .map(|(_, tp)| tp)
            .ok_or_else(|| format!("probe `{gate}` was not converted"))?,
        Measure::Occupancy(ids) => solved.occupancy(ids)?,
        Measure::Latency(ids) => solved.mean_time_to_states(ids)?,
        Measure::Transient(ids, t) => solved.timed_reach(ids, *t)?,
    })
}

/// Evaluates a measure's `[min, max]` interval over all schedulers.
fn eval_measure_bounds(
    bounds: &BoundsSolved,
    measure: &Measure,
) -> Result<Interval, Box<dyn Error>> {
    Ok(match measure {
        Measure::Throughput(gate) => bounds
            .throughput_bounds()?
            .into_iter()
            .find(|(name, _)| name == gate)
            .map(|(_, i)| i)
            .ok_or_else(|| format!("probe `{gate}` was not converted"))?,
        Measure::Occupancy(ids) => bounds.occupancy_bounds(ids)?,
        Measure::Latency(ids) => bounds.latency_bounds(ids)?,
        Measure::Transient(ids, t) => bounds.transient_bounds(ids, *t)?,
    })
}

/// Runs `check` in performance mode (any `--rate` present): the formula is
/// a measure predicate, decided under the selected scheduler treatment.
/// `NO VERDICT` (exit 2) exactly when the `[min, max]` interval straddles
/// the threshold, so neither verdict holds for all schedulers.
fn check_performance(
    input: &str,
    predicate: &str,
    rates: &[(String, f64)],
    probes: &[String],
    scheduler: Scheduler,
    budget: &Budget,
) -> Result<CmdOut, Box<dyn Error>> {
    let pred = parse_perf_predicate(predicate)?;
    let mut probes: Vec<String> = probes.to_vec();
    if let Measure::Throughput(gate) = &pred.measure {
        if !probes.iter().any(|p| p == gate) {
            probes.push(gate.clone());
        }
    }
    let lts = match load_budgeted(input, budget)? {
        Ok(lts) => lts,
        Err((partial, err)) => {
            return Ok(CmdOut::with_status(
                format!(
                    "Budget exceeded: {err}\n\
                     NO VERDICT: the measure needs the full state space \
                     ({} states explored)\n",
                    partial.num_states()
                ),
                CmdStatus::BudgetExceeded,
            ));
        }
    };
    let rate_map: HashMap<String, f64> = rates.iter().cloned().collect();
    let perf = Flow::from_lts(lts).with_rates(&rate_map);
    let probe_refs: Vec<&str> = probes.iter().map(String::as_str).collect();
    let mut out = String::new();
    let interval = if scheduler == Scheduler::Uniform {
        let solved = perf.solve(NondetPolicy::Uniform, &probe_refs)?;
        let _ = writeln!(out, "ctmc states: {}", solved.ctmc().num_states());
        let v = eval_measure(&solved, &pred.measure)?;
        Interval { min: v, max: v }
    } else {
        let bounds = perf.solve_bounds(&probe_refs)?;
        let mdp = bounds.mdp();
        let instant = (0..mdp.num_states()).filter(|&s| mdp.is_instant(s)).count();
        let _ = writeln!(out, "ctmdp states: {} ({instant} instant)", mdp.num_states());
        let full = eval_measure_bounds(&bounds, &pred.measure)?;
        match scheduler {
            Scheduler::Min => Interval { min: full.min, max: full.min },
            Scheduler::Max => Interval { min: full.max, max: full.max },
            _ => full,
        }
    };
    let verdict = pred.verdict(&interval);
    let report = BoundsReport {
        rows: vec![BoundsRow {
            measure: pred.measure.to_string(),
            interval,
            verdict: Some((format!("{} {}", pred.cmp, fmt_f(pred.threshold)), verdict)),
        }],
        point: scheduler != Scheduler::Bounds,
    };
    out.push_str(&report.render());
    let status = if verdict == BoundsVerdict::NoVerdict {
        let _ = writeln!(
            out,
            "NO VERDICT: the [min, max] interval straddles the threshold; \
             the answer depends on the scheduler"
        );
        CmdStatus::NotConverged
    } else {
        CmdStatus::Ok
    };
    Ok(CmdOut::with_status(out, status))
}

/// Renders the per-state occupancy `[min, max]` over all schedulers next to
/// the uniform-resolution sampled estimates, which must fall inside (the
/// statistical leg of the sandwich property).
fn occupancy_bounds_table(
    solved: &Solved,
    bounds: &BoundsSolved,
    run: &multival_ctmc::McRun,
    slack: f64,
) -> Result<String, Box<dyn Error>> {
    // Invert the CTMC state map: tangible states survive both conversions,
    // so the originating IMC index keys the CTMDP occupancy query.
    let map = &solved.conversion().state_map;
    let mut source = vec![None; solved.ctmc().num_states()];
    for (imc, &c) in map.iter().enumerate() {
        if let Some(c) = c {
            source[c] = Some(imc as u32);
        }
    }
    let mut out =
        String::from("occupancy scheduler bounds (sampled estimates must fall inside):\n");
    let mut t = Table::new(&["state", "min", "max", "simulated", "inside bounds"]);
    let mut agree = 0usize;
    let shown = source.len().min(20);
    for (s, src) in source.iter().enumerate().take(shown) {
        let src = src.ok_or("internal: CTMC state without an IMC source")?;
        let i = bounds.occupancy_bounds(&[src])?;
        let e = &run.estimates[s];
        let inside = i.contains(e.mean, e.half_width + slack);
        agree += usize::from(inside);
        t.row_owned(vec![
            s.to_string(),
            format!("{:.6}", i.min),
            format!("{:.6}", i.max),
            format!("{:.6}", e.mean),
            if inside { "yes".into() } else { "NO".into() },
        ]);
    }
    out.push_str(&t.render());
    if source.len() > shown {
        let _ = writeln!(out, "... ({} states total)", source.len());
    }
    let _ = writeln!(out, "bounds agreement: {agree}/{shown} estimates inside [min, max]");
    Ok(out)
}

/// Determinizes one `compare --on-the-fly` input: a `.aut` file via its
/// explicit LTS, a mini-LOTOS source straight from the term graph.
fn determinize_input(path: &str) -> Result<Determinized, Box<dyn Error>> {
    const CAP: usize = 1 << 20;
    if is_lts_file(path) {
        let lts = load(path, CAP)?;
        determinize_ts(&lts, CAP)
            .ok_or_else(|| format!("determinization cap of {CAP} subset states exceeded").into())
    } else {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        Ok(Flow::determinize_source(&text, CAP)?)
    }
}

/// True when a path names an already-materialized LTS file rather than a
/// mini-LOTOS source: Aldebaran text (`.aut`) or compact binary (`.blts`).
fn is_lts_file(path: &str) -> bool {
    path.ends_with(".aut") || path.ends_with(".blts")
}

/// Loads a `.blts` file (binary, so outside the `read_to_string` path).
fn load_blts(path: &str) -> Result<Lts, Box<dyn Error>> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(read_blts(&bytes)?)
}

/// Loads an input: `.aut`/`.blts` files are parsed as LTSs, everything
/// else as mini-LOTOS (explored with the given cap).
fn load(path: &str, max_states: usize) -> Result<Lts, Box<dyn Error>> {
    if path.ends_with(".blts") {
        return load_blts(path);
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if path.ends_with(".aut") {
        Ok(read_aut(&text)?)
    } else {
        let spec = parse_spec(&text)?;
        Ok(explore(&spec, &ExploreOptions::with_max_states(max_states))?.lts)
    }
}

/// Budget-aware [`load`]: a `.aut` input is already materialized and loads
/// fully; a mini-LOTOS source is explored under the budget, and a tripped
/// budget comes back as `Ok(Err((partial_lts, reason)))` so callers can
/// report partial results.
#[allow(clippy::type_complexity)]
fn load_budgeted(
    path: &str,
    budget: &Budget,
) -> Result<Result<Lts, (Lts, ExploreError)>, Box<dyn Error>> {
    if path.ends_with(".blts") {
        return Ok(Ok(load_blts(path)?));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    if path.ends_with(".aut") {
        Ok(Ok(read_aut(&text)?))
    } else {
        let spec = parse_spec(&text)?;
        let mut options = ExploreOptions::with_max_states(budget.max_states_or(1_000_000));
        if let Some(deadline) = budget.deadline() {
            options = options.with_deadline(deadline);
        }
        let exploration = explore_partial(&spec, &options);
        Ok(match exploration.aborted {
            Some(err) => Err((exploration.explored.lts, err)),
            None => Ok(exploration.explored.lts),
        })
    }
}

/// Executes a command, returning the text to print plus its exit status.
///
/// # Errors
///
/// Propagates I/O, parse, exploration, and solver errors.
pub fn execute(cmd: &Command) -> Result<CmdOut, Box<dyn Error>> {
    match cmd {
        Command::Help => Ok(USAGE.to_owned().into()),
        Command::Serve { .. } => Err("`multival serve` is provided by the full `multival` \
             binary (crate multival-svc); the core library only parses the verb"
            .into()),
        Command::ExploreSpace { .. } => Err("`multival explore-space` is provided by the full \
             `multival` binary (crate multival-svc); the core library only parses the verb"
            .into()),
        Command::Explore {
            input,
            aut,
            blts,
            dot,
            budget,
            threads,
            on_the_fly,
            store,
            mem_budget,
        } => {
            let mut out = String::new();
            let mut status = CmdStatus::Ok;
            let max_states = budget.max_states_or(1_000_000);
            if *on_the_fly {
                let options = ReachOptions::with_max_states(max_states);
                // A .aut/.blts input is already an explicit LTS, so the scan
                // walks materialized states; a mini-LOTOS source is walked
                // straight over its term graph.
                let (summary, materialized) = if is_lts_file(input) {
                    let lts = load(input, max_states)?;
                    (multival_lts::reach::scan(&lts, &options), lts.num_states())
                } else {
                    let text = std::fs::read_to_string(input)
                        .map_err(|e| format!("cannot read `{input}`: {e}"))?;
                    (Flow::scan_on_the_fly(&text, &options)?, 0)
                };
                let stats = FlyStats {
                    visited: summary.states,
                    transitions: summary.transitions,
                    materialized,
                    truncated: summary.truncated,
                };
                out.push_str(&stats.render());
                let _ = writeln!(out, "deadlock states: {}", summary.deadlocks);
                return Ok(out.into());
            }
            let lts = if is_lts_file(input) {
                load(input, max_states)?
            } else {
                let text = std::fs::read_to_string(input)
                    .map_err(|e| format!("cannot read `{input}`: {e}"))?;
                let spec = parse_spec(&text)?;
                let mut options =
                    ExploreOptions::with_max_states(max_states).with_threads(*threads);
                if let Some(deadline) = budget.deadline() {
                    options = options.with_deadline(deadline);
                }
                if store.is_some() || mem_budget.is_some() {
                    // Store-backed exploration: states are deduplicated on
                    // packed bytes in the selected backend instead of a term
                    // table, trading CPU for a bounded resident footprint.
                    let kind = store.unwrap_or_default();
                    let config = multival_lts::store::StoreConfig { kind, mem_budget: *mem_budget };
                    let run = multival_pa::explore_term_store_partial(
                        spec.top().clone(),
                        &spec,
                        &options,
                        &config,
                    );
                    if let Some(err) = &run.aborted {
                        let _ = writeln!(out, "warning: exploration aborted: {err}");
                        let _ = writeln!(out, "Budget exceeded; reporting the partial state space");
                        status = CmdStatus::BudgetExceeded;
                    }
                    out.push_str(&StoreReport { kind, stats: run.store }.render());
                    run.lts
                } else {
                    let start = std::time::Instant::now();
                    let exploration = explore_partial(&spec, &options);
                    let wall = start.elapsed();
                    if let Some(err) = &exploration.aborted {
                        let _ = writeln!(out, "warning: exploration aborted: {err}");
                        let _ = writeln!(out, "Budget exceeded; reporting the partial state space");
                        status = CmdStatus::BudgetExceeded;
                    }
                    let explored = exploration.explored;
                    if *threads != 1 {
                        // Time a one-thread reference run so the report can
                        // show the parallel speedup on this exact model.
                        let start = std::time::Instant::now();
                        let _ = explore_partial(&spec, &options.clone().with_threads(1));
                        let baseline_wall = start.elapsed();
                        let resolved = if *threads == 0 {
                            std::thread::available_parallelism().map_or(1, |n| n.get())
                        } else {
                            *threads
                        };
                        let stats = ParStats {
                            threads: resolved,
                            states: explored.lts.num_states(),
                            transitions: explored.lts.num_transitions(),
                            wall,
                            baseline_wall: Some(baseline_wall),
                        };
                        out.push_str(&stats.render());
                    }
                    explored.lts
                }
            };
            let _ = writeln!(out, "{}", lts.summary());
            let deadlocks = lts.deadlock_states();
            let _ = writeln!(out, "deadlock states: {}", deadlocks.len());
            if let Some(path) = aut {
                std::fs::write(path, write_aut(&lts))?;
                let _ = writeln!(out, "wrote {path}");
            }
            if let Some(path) = blts {
                std::fs::write(path, write_blts(&lts))?;
                let _ = writeln!(out, "wrote {path}");
            }
            if let Some(path) = dot {
                std::fs::write(path, write_dot(&lts, input))?;
                let _ = writeln!(out, "wrote {path}");
            }
            Ok(CmdOut::with_status(out, status))
        }
        Command::Check { input, formula, rates, probes, scheduler, on_the_fly, budget } => {
            if !rates.is_empty() {
                return check_performance(input, formula, rates, probes, *scheduler, budget);
            }
            if *on_the_fly {
                if let Some(out) = check_on_the_fly(input, formula)? {
                    return Ok(out.into());
                }
                // Outside the fragment: fall through to the eager evaluator.
            }
            // A verdict on a partial state space would be unsound, so a
            // tripped budget yields a clear no-verdict report instead.
            let lts = match load_budgeted(input, budget)? {
                Ok(lts) => lts,
                Err((partial, err)) => {
                    return Ok(CmdOut::with_status(
                        format!(
                            "Budget exceeded: {err}\n\
                             NO VERDICT: the formula needs the full state space \
                             ({} states explored)\n",
                            partial.num_states()
                        ),
                        CmdStatus::BudgetExceeded,
                    ));
                }
            };
            let f = multival_mcl::parse_formula(formula)?;
            let result = multival_mcl::check(&lts, &f)?;
            let mut out = String::new();
            if *on_the_fly {
                let _ = writeln!(
                    out,
                    "note: formula outside the on-the-fly fragment; \
                     evaluated eagerly over {} materialized states",
                    lts.num_states()
                );
            }
            let _ = writeln!(
                out,
                "{}  ({} of {} states satisfy the formula)",
                if result.holds { "TRUE" } else { "FALSE" },
                result.satisfying,
                result.total
            );
            Ok(out.into())
        }
        Command::Minimize { input, eq, aut } => {
            let lts = load(input, 1_000_000)?;
            let (min, stats) = minimize(&lts, *eq);
            let mut out = format!(
                "{:?}: {} states / {} transitions  ->  {} states / {} transitions\n",
                eq,
                stats.states_before,
                stats.transitions_before,
                stats.states_after,
                stats.transitions_after
            );
            if let Some(path) = aut {
                std::fs::write(path, write_aut(&min))?;
                let _ = writeln!(out, "wrote {path}");
            }
            Ok(out.into())
        }
        Command::Reduce {
            input,
            eq,
            order,
            aut,
            blts,
            checkpoint,
            threads,
            budget,
            store,
            mem_budget,
        } => {
            use multival_lts::pipeline::PipelineOptions;
            if is_lts_file(input) {
                return Err("reduce needs a mini-LOTOS model: a .aut/.blts file has no \
                     parallel structure left to reduce compositionally"
                    .into());
            }
            let text = std::fs::read_to_string(input)
                .map_err(|e| format!("cannot read `{input}`: {e}"))?;
            let spec = parse_spec(&text)?;
            // Component exploration keeps the default cap: the budget below
            // bounds the intermediate *products*, which is where
            // compositional state spaces actually blow up.
            let network = multival_pa::extract_network(&spec, &ExploreOptions::default())?;
            let options = PipelineOptions {
                equivalence: *eq,
                order: *order,
                workers: if *threads == 0 { Workers::auto() } else { Workers::new(*threads) },
                max_states: budget.max_states,
                deadline: budget.deadline(),
                checkpoint_dir: checkpoint.as_ref().map(std::path::PathBuf::from),
                store: multival_lts::store::StoreConfig {
                    kind: store.unwrap_or_default(),
                    mem_budget: *mem_budget,
                },
            };
            let run = multival_lts::pipeline::run_pipeline(&network, &options);
            let mut out = String::new();
            let _ = writeln!(
                out,
                "{} components, {:?} minimization, {} order",
                network.components().len(),
                eq,
                order
            );
            let stats = ReduceStats {
                stages: run
                    .stages
                    .iter()
                    .map(|s| ReduceStageRow {
                        stage: s.stage,
                        component: s.component.clone(),
                        states_before: s.states_before,
                        transitions_before: s.transitions_before,
                        states_after: s.states_after,
                        transitions_after: s.transitions_after,
                        hidden: s.hidden.clone(),
                    })
                    .collect(),
                peak_states: run.peak_states(),
                final_states: run.lts.num_states(),
                final_transitions: run.lts.num_transitions(),
                resumed_stages: run.resumed_stages,
            };
            out.push_str(&stats.render());
            let mut status = CmdStatus::Ok;
            if let Some(reason) = &run.abort {
                let _ = writeln!(out, "warning: pipeline aborted: {reason}");
                let _ = writeln!(out, "Budget exceeded; reporting the partial reduction");
                status = CmdStatus::BudgetExceeded;
            }
            if let Some(path) = aut {
                std::fs::write(path, write_aut(&run.lts))?;
                let _ = writeln!(out, "wrote {path}");
            }
            if let Some(path) = blts {
                std::fs::write(path, write_blts(&run.lts))?;
                let _ = writeln!(out, "wrote {path}");
            }
            Ok(CmdOut::with_status(out, status))
        }
        Command::Compare { left, right, relation, on_the_fly } => {
            let verdict = if *on_the_fly {
                // parse_args guarantees Relation::Traces here.
                let da = determinize_input(left)?;
                let db = determinize_input(right)?;
                compare_determinized(&da, &db)
            } else {
                let a = load(left, 1_000_000)?;
                let b = load(right, 1_000_000)?;
                match relation {
                    Relation::Strong => equivalent(&a, &b, Equivalence::Strong),
                    Relation::Branching => equivalent(&a, &b, Equivalence::Branching),
                    Relation::Traces => weak_trace_equivalent(&a, &b, 1 << 20),
                }
            };
            Ok(CmdOut::from(match verdict {
                Verdict::Equivalent => "EQUIVALENT\n".to_owned(),
                Verdict::Inequivalent { witness: Some(w) } => {
                    format!("NOT EQUIVALENT\ndistinguishing trace: {}\n", w.join(" "))
                }
                Verdict::Inequivalent { witness: None } => "NOT EQUIVALENT\n".to_owned(),
            }))
        }
        Command::Fuzz {
            seeds,
            corpus,
            threads,
            budget,
            max_steps,
            max_colors,
            max_cap,
            inject_flip,
            store,
            mem_budget,
        } => {
            let options = crate::fuzz::FuzzOptions {
                seed_start: seeds.0,
                seed_end: seeds.1,
                corpus_dir: corpus.as_ref().map(std::path::PathBuf::from),
                budget: *budget,
                workers: if *threads == 0 { Workers::auto() } else { Workers::new(*threads) },
                gen: multival_models::xmas::GenConfig {
                    max_steps: *max_steps,
                    max_colors: *max_colors,
                    max_cap: *max_cap,
                    credit_rings: true,
                },
                inject_flip: *inject_flip,
                max_shrink_rounds: 64,
                store: multival_lts::store::StoreConfig {
                    kind: store.unwrap_or_default(),
                    mem_budget: *mem_budget,
                },
            };
            let report = crate::fuzz::run_fuzz(&options);
            let mut out = report.render();
            if report.budget_tripped {
                return Ok(CmdOut::with_status(out, CmdStatus::BudgetExceeded));
            }
            if !report.mismatches.is_empty() {
                let _ = writeln!(out, "DIFFERENTIAL MISMATCH");
                return Err(out.into());
            }
            let _ = writeln!(out, "all oracles agree");
            Ok(CmdOut::from(out))
        }
        Command::Lint { input } => {
            let text = std::fs::read_to_string(input)
                .map_err(|e| format!("cannot read `{input}`: {e}"))?;
            let spec = multival_pa::parse_spec(&text)?;
            let findings = multival_pa::lint(&spec);
            if findings.is_empty() {
                Ok("no lint findings\n".to_owned().into())
            } else {
                let mut out = String::new();
                for f in findings {
                    let _ = writeln!(out, "warning: {f}");
                }
                Ok(out.into())
            }
        }
        Command::Walk { input, steps, seed } => {
            use rand::{Rng, SeedableRng};
            let lts = load(input, 1_000_000)?;
            let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
            let mut out = String::new();
            let mut state = lts.initial();
            for step in 0..*steps {
                let ts = lts.transitions_from(state);
                if ts.is_empty() {
                    let _ = writeln!(out, "{step:>4}: DEADLOCK in state {state}");
                    break;
                }
                let t = ts[rng.gen_range(0..ts.len())];
                let _ = writeln!(
                    out,
                    "{step:>4}: {} --{}--> {}",
                    state,
                    lts.labels().name(t.label),
                    t.target
                );
                state = t.target;
            }
            Ok(out.into())
        }
        Command::Refines { imp, spec, weak } => {
            use multival_lts::simulation::{simulates, SimulationKind};
            let a = load(imp, 1_000_000)?;
            let b = load(spec, 1_000_000)?;
            let kind = if *weak { SimulationKind::Weak } else { SimulationKind::Strong };
            Ok(CmdOut::from(if simulates(&a, &b, kind) {
                "REFINES (the specification simulates the implementation)\n".to_owned()
            } else {
                "DOES NOT REFINE\n".to_owned()
            }))
        }
        Command::Solve { input, rates, probes } => {
            let text = std::fs::read_to_string(input)
                .map_err(|e| format!("cannot read `{input}`: {e}"))?;
            let flow = Flow::from_source(&text)?;
            let rate_map: HashMap<String, f64> = rates.iter().cloned().collect();
            let probe_refs: Vec<&str> = probes.iter().map(String::as_str).collect();
            let solved = flow.with_rates(&rate_map).solve(NondetPolicy::Uniform, &probe_refs)?;
            let mut out = String::new();
            let _ = writeln!(out, "ctmc states: {}", solved.ctmc().num_states());
            if !probes.is_empty() {
                let mut t = Table::new(&["probe", "throughput"]);
                for (label, tp) in solved.throughputs()? {
                    t.row_owned(vec![label, fmt_f(tp)]);
                }
                out.push_str(&t.render());
            } else {
                let pi = solved.steady_state()?;
                let mut t = Table::new(&["state", "steady-state probability"]);
                for (s, p) in pi.iter().enumerate().take(20) {
                    t.row_owned(vec![s.to_string(), fmt_f(*p)]);
                }
                out.push_str(&t.render());
                if pi.len() > 20 {
                    let _ = writeln!(out, "... ({} states total)", pi.len());
                }
            }
            Ok(out.into())
        }
        Command::Simulate {
            input,
            rates,
            probes,
            horizon,
            time,
            trajectories,
            seed,
            threads,
            rel_width,
            confidence,
            budget,
            scheduler,
        } => {
            let flow = Flow::from_lts(load(input, budget.max_states_or(1_000_000))?);
            let rate_map: HashMap<String, f64> = rates.iter().cloned().collect();
            let probe_refs: Vec<&str> = probes.iter().map(String::as_str).collect();
            let perf = flow.with_rates(&rate_map);
            let solved = perf.solve(NondetPolicy::Uniform, &probe_refs)?;
            let workers = if *threads == 0 { Workers::auto() } else { Workers::new(*threads) };
            // One wall-clock budget covers the whole invocation, so both
            // sampling runs share the same absolute deadline.
            let opts = McOptions {
                seed: *seed,
                workers,
                max_trajectories: *trajectories,
                rel_width: *rel_width,
                confidence: *confidence,
                deadline: budget.deadline(),
                ..McOptions::default()
            };
            let mut out = String::new();
            let mut status = CmdStatus::Ok;
            let mut account = |run: &multival_ctmc::McRun, out: &mut String| {
                if run.budget_hit {
                    let _ = writeln!(
                        out,
                        "Budget exceeded: wall-clock limit hit after {} trajectories; \
                         the estimates above are partial",
                        run.trajectories
                    );
                    status = status.worst(CmdStatus::BudgetExceeded);
                } else if !run.converged {
                    status = status.worst(CmdStatus::NotConverged);
                }
            };
            let _ = writeln!(out, "ctmc states: {}", solved.ctmc().num_states());

            let pi = solved.steady_state()?;
            let run = solved.simulate_occupancy(*horizon, &opts);
            let _ = writeln!(out, "occupancy vs steady state (horizon {horizon}):");
            out.push_str(&comparison_table(&pi, &run, opts.abs_width));
            out.push_str(&SimStats::from(&run).render());
            account(&run, &mut out);

            if let Some(t) = time {
                let exact = solved.transient(*t)?;
                let run_t = solved.simulate_transient(*t, &opts);
                let _ = writeln!(out, "transient vs uniformization (t = {t}):");
                out.push_str(&comparison_table(&exact, &run_t, opts.abs_width));
                out.push_str(&SimStats::from(&run_t).render());
                account(&run_t, &mut out);
            }
            if *scheduler == Scheduler::Bounds {
                let bounds = perf.solve_bounds(&probe_refs)?;
                out.push_str(&occupancy_bounds_table(&solved, &bounds, &run, opts.abs_width)?);
            }
            if status == CmdStatus::NotConverged {
                let _ = writeln!(
                    out,
                    "error: the CI-width stopping rule was not met within \
                     {trajectories} trajectories; raise --trajectories or \
                     loosen --rel-width"
                );
            }
            Ok(CmdOut::with_status(out, status))
        }
    }
}

/// Renders a numerical-vs-simulated comparison with a per-state CI verdict
/// and a closing agreement line. `slack` widens the interval by a small
/// absolute margin (finite-horizon bias of occupancy estimates).
fn comparison_table(exact: &[f64], run: &multival_ctmc::McRun, slack: f64) -> String {
    let mut t = Table::new(&["state", "numerical", "simulated", "half-width", "inside CI"]);
    let mut agree = 0usize;
    for (s, (&want, e)) in exact.iter().zip(&run.estimates).enumerate() {
        let inside = (e.mean - want).abs() <= e.half_width + slack;
        agree += usize::from(inside);
        if s < 20 {
            t.row_owned(vec![
                s.to_string(),
                format!("{want:.6}"),
                format!("{:.6}", e.mean),
                format!("{:.6}", e.half_width),
                if inside { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    let mut out = t.render();
    if exact.len() > 20 {
        let _ = writeln!(out, "... ({} states total)", exact.len());
    }
    let _ = writeln!(out, "agreement: {agree}/{} estimates inside their CI", exact.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_explore() {
        let cmd = parse_args(&args(&["explore", "m.lot", "--aut", "o.aut"])).expect("parses");
        assert_eq!(
            cmd,
            Command::Explore {
                input: "m.lot".into(),
                aut: Some("o.aut".into()),
                blts: None,
                dot: None,
                budget: Budget::default(),
                threads: 1,
                on_the_fly: false,
                store: None,
                mem_budget: None,
            }
        );
    }

    #[test]
    fn parses_explore_threads() {
        let cmd = parse_args(&args(&["explore", "m.lot", "--threads", "4"])).expect("parses");
        assert_eq!(
            cmd,
            Command::Explore {
                input: "m.lot".into(),
                aut: None,
                blts: None,
                dot: None,
                budget: Budget::default(),
                threads: 4,
                on_the_fly: false,
                store: None,
                mem_budget: None,
            }
        );
        assert!(parse_args(&args(&["explore", "m.lot", "--threads", "four"])).is_err());
    }

    #[test]
    fn parses_fuzz() {
        let cmd = parse_args(&args(&["fuzz"])).expect("parses");
        assert_eq!(
            cmd,
            Command::Fuzz {
                seeds: (0, 16),
                corpus: None,
                threads: 1,
                budget: Budget::default(),
                max_steps: 7,
                max_colors: 2,
                max_cap: 2,
                inject_flip: false,
                store: None,
                mem_budget: None,
            }
        );
        let cmd = parse_args(&args(&[
            "fuzz",
            "--seeds",
            "5..64",
            "--corpus",
            "corp",
            "--threads",
            "0",
            "--max-states",
            "1000",
            "--timeout-secs",
            "30",
            "--max-steps",
            "9",
            "--max-colors",
            "3",
            "--max-cap",
            "1",
            "--inject-flip",
            "--store",
            "arena",
        ]))
        .expect("parses");
        assert_eq!(
            cmd,
            Command::Fuzz {
                seeds: (5, 64),
                corpus: Some("corp".into()),
                threads: 0,
                budget: Budget::default().with_max_states(1000).with_timeout_secs(30),
                max_steps: 9,
                max_colors: 3,
                max_cap: 1,
                inject_flip: true,
                store: Some(multival_lts::StoreKind::Arena),
                mem_budget: None,
            }
        );

        // Seed ranges must be well-formed and non-empty.
        assert!(parse_args(&args(&["fuzz", "--seeds", "7"])).is_err());
        assert!(parse_args(&args(&["fuzz", "--seeds", "9..9"])).is_err());
        assert!(parse_args(&args(&["fuzz", "--seeds", "a..b"])).is_err());
        assert!(parse_args(&args(&["fuzz", "stray"])).is_err());
    }

    #[test]
    fn parses_on_the_fly_flags() {
        let cmd = parse_args(&args(&["explore", "m.lot", "--on-the-fly"])).expect("parses");
        assert!(matches!(cmd, Command::Explore { on_the_fly: true, .. }));
        let cmd =
            parse_args(&args(&["check", "m.lot", "formula", "--on-the-fly"])).expect("parses");
        assert!(matches!(cmd, Command::Check { on_the_fly: true, .. }));
        let cmd =
            parse_args(&args(&["compare", "a.lot", "b.lot", "--eq", "traces", "--on-the-fly"]))
                .expect("parses");
        assert!(matches!(
            cmd,
            Command::Compare { relation: Relation::Traces, on_the_fly: true, .. }
        ));

        // The flag conflicts with output files (nothing is materialized to
        // write) and with the bisimulations (they need explicit LTSs).
        assert!(parse_args(&args(&["explore", "m.lot", "--on-the-fly", "--aut", "o.aut"])).is_err());
        assert!(parse_args(&args(&["explore", "m.lot", "--on-the-fly", "--dot", "o.dot"])).is_err());
        assert!(parse_args(&args(&["compare", "a.lot", "b.lot", "--on-the-fly"])).is_err());
        assert!(parse_args(&args(&[
            "compare",
            "a.lot",
            "b.lot",
            "--eq",
            "strong",
            "--on-the-fly"
        ]))
        .is_err());
    }

    #[test]
    fn on_the_fly_commands_execute() {
        let dir = std::env::temp_dir().join("multival-cli-test5");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let model = dir.join("fly.lot");
        std::fs::write(&model, "behaviour hide m in (a; m; stop |[m]| m; b; stop)").expect("write");
        let model = model.to_string_lossy().into_owned();

        let out = execute(&Command::Explore {
            input: model.clone(),
            aut: None,
            blts: None,
            dot: None,
            budget: Budget::default().with_max_states(1000),
            threads: 1,
            on_the_fly: true,
            store: None,
            mem_budget: None,
        })
        .expect("explore");
        assert!(out.contains("visited states       4"), "{out}");
        assert!(out.contains("materialized states  0"), "{out}");
        assert!(out.contains("deadlock states: 1"), "{out}");

        // In-fragment formula: decided by the search, with a trace.
        let out = execute(&Command::Check {
            input: model.clone(),
            formula: "mu X. <\"b\"> true or <true> X".into(),
            rates: Vec::new(),
            probes: Vec::new(),
            scheduler: Scheduler::Uniform,
            on_the_fly: true,
            budget: Budget::default(),
        })
        .expect("check");
        assert!(out.starts_with("TRUE"), "{out}");
        assert!(out.contains("witness trace:"), "{out}");
        assert!(out.contains("materialized states  0"), "{out}");

        // Out-of-fragment formula: falls back to the eager evaluator.
        let out = execute(&Command::Check {
            input: model.clone(),
            formula: "<\"a\"> true".into(),
            rates: Vec::new(),
            probes: Vec::new(),
            scheduler: Scheduler::Uniform,
            on_the_fly: true,
            budget: Budget::default(),
        })
        .expect("check");
        assert!(out.contains("outside the on-the-fly fragment"), "{out}");
        assert!(out.contains("TRUE"), "{out}");

        // Trace comparison straight from the term graphs.
        let plain = dir.join("plain.lot");
        std::fs::write(&plain, "behaviour a; b; stop").expect("write");
        let plain = plain.to_string_lossy().into_owned();
        let out = execute(&Command::Compare {
            left: model.clone(),
            right: plain.clone(),
            relation: Relation::Traces,
            on_the_fly: true,
        })
        .expect("compare");
        assert!(out.starts_with("EQUIVALENT"), "{out}");

        let other = dir.join("other.lot");
        std::fs::write(&other, "behaviour a; c; stop").expect("write");
        let other = other.to_string_lossy().into_owned();
        let out = execute(&Command::Compare {
            left: plain,
            right: other,
            relation: Relation::Traces,
            on_the_fly: true,
        })
        .expect("compare");
        assert!(out.starts_with("NOT EQUIVALENT"), "{out}");
        assert!(out.contains("distinguishing trace:"), "{out}");
    }

    #[test]
    fn parses_solve_rates() {
        let cmd = parse_args(&args(&[
            "solve", "m.lot", "--rate", "put=2.5", "--rate", "get=1", "--probe", "get",
        ]))
        .expect("parses");
        match cmd {
            Command::Solve { rates, probes, .. } => {
                assert_eq!(rates.len(), 2);
                assert_eq!(rates[0], ("put".to_owned(), 2.5));
                assert_eq!(probes, vec!["get"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_simulate() {
        let cmd = parse_args(&args(&[
            "simulate",
            "m.lot",
            "--rate",
            "put=2.5",
            "--horizon",
            "50",
            "--time",
            "3",
            "--trajectories",
            "1000",
            "--seed",
            "7",
            "--threads",
            "4",
            "--rel-width",
            "0.1",
            "--confidence",
            "0.95",
        ]))
        .expect("parses");
        match cmd {
            Command::Simulate {
                input,
                rates,
                horizon,
                time,
                trajectories,
                seed,
                threads,
                rel_width,
                confidence,
                ..
            } => {
                assert_eq!(input, "m.lot");
                assert_eq!(rates, vec![("put".to_owned(), 2.5)]);
                assert_eq!(horizon, 50.0);
                assert_eq!(time, Some(3.0));
                assert_eq!(trajectories, 1000);
                assert_eq!(seed, 7);
                assert_eq!(threads, 4);
                assert_eq!(rel_width, 0.1);
                assert_eq!(confidence, 0.95);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A rate is required, and confidence must lie strictly inside (0, 1).
        assert!(parse_args(&args(&["simulate", "m.lot"])).is_err());
        assert!(parse_args(&args(&["simulate", "m.lot", "--rate", "a=1", "--confidence", "1.0"]))
            .is_err());
    }

    #[test]
    fn parses_check_performance_flags() {
        let cmd = parse_args(&args(&[
            "check",
            "m.lot",
            "throughput(done) >= 2",
            "--rate",
            "fast=4",
            "--rate",
            "slow=1",
            "--probe",
            "done",
            "--scheduler",
            "bounds",
        ]))
        .expect("parses");
        match cmd {
            Command::Check { formula, rates, probes, scheduler, .. } => {
                assert_eq!(formula, "throughput(done) >= 2");
                assert_eq!(rates.len(), 2);
                assert_eq!(probes, vec!["done"]);
                assert_eq!(scheduler, Scheduler::Bounds);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Scheduler/probe flags imply performance mode, which needs rates.
        assert!(parse_args(&args(&["check", "m.lot", "f", "--scheduler", "min"])).is_err());
        assert!(parse_args(&args(&["check", "m.lot", "f", "--probe", "g"])).is_err());
        // Unknown scheduler values are rejected.
        assert!(parse_args(&args(&[
            "check",
            "m.lot",
            "f",
            "--rate",
            "a=1",
            "--scheduler",
            "median"
        ]))
        .is_err());
        // Performance mode conflicts with --on-the-fly.
        assert!(
            parse_args(&args(&["check", "m.lot", "f", "--rate", "a=1", "--on-the-fly"])).is_err()
        );
        // simulate rejects one-sided schedulers; bounds parses.
        assert!(parse_args(&args(&["simulate", "m.lot", "--rate", "a=1", "--scheduler", "min"]))
            .is_err());
        let cmd =
            parse_args(&args(&["simulate", "m.lot", "--rate", "a=1", "--scheduler", "bounds"]))
                .expect("parses");
        assert!(matches!(cmd, Command::Simulate { scheduler: Scheduler::Bounds, .. }));
    }

    #[test]
    fn parses_perf_predicates() {
        let p = parse_perf_predicate("throughput(push) >= 0.5").expect("parses");
        assert_eq!(p.measure, Measure::Throughput("push".into()));
        assert_eq!(p.cmp, Cmp::Ge);
        assert_eq!(p.threshold, 0.5);
        assert_eq!(p.measure.to_string(), "throughput(push)");

        let p = parse_perf_predicate("occupancy(1, 2) <= 0.8").expect("parses");
        assert_eq!(p.measure, Measure::Occupancy(vec![1, 2]));
        assert_eq!(p.cmp, Cmp::Le);

        let p = parse_perf_predicate("latency(3) <= 2").expect("parses");
        assert_eq!(p.measure, Measure::Latency(vec![3]));

        let p = parse_perf_predicate("transient(3,4 @ 0.5) >= 0.9").expect("parses");
        assert_eq!(p.measure, Measure::Transient(vec![3, 4], 0.5));
        assert_eq!(p.measure.to_string(), "transient(3,4 @ 0.5)");

        assert!(parse_perf_predicate("throughput(push) == 1").is_err());
        assert!(parse_perf_predicate("speed(push) >= 1").is_err());
        assert!(parse_perf_predicate("throughput(a,b) >= 1").is_err());
        assert!(parse_perf_predicate("occupancy() >= 1").is_err());
        assert!(parse_perf_predicate("transient(1) >= 0.5").is_err());
        assert!(parse_perf_predicate("latency(x) <= 2").is_err());
        assert!(parse_perf_predicate("latency(1) <= fast").is_err());
    }

    /// Two τ-guarded service paths: after hiding, the initial state picks
    /// internally between an exp(4) and an exp(1) round, each ending in the
    /// (instantaneous) probe `done`.
    const ARBITER: &str = "process Arb[pa, pb, fast, slow, done] :=
            pa; fast; done; Arb[pa, pb, fast, slow, done]
         [] pb; slow; done; Arb[pa, pb, fast, slow, done]
         endproc
         behaviour Arb[pa, pb, fast, slow, done]";

    #[test]
    fn check_performance_quantifies_schedulers() {
        let dir = std::env::temp_dir().join("multival-cli-test8");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let model = dir.join("arbiter.lot");
        std::fs::write(&model, ARBITER).expect("write");
        let model = model.to_string_lossy().into_owned();

        let check = |formula: &str, scheduler: Scheduler| {
            execute(&Command::Check {
                input: model.clone(),
                formula: formula.into(),
                rates: vec![("fast".to_owned(), 4.0), ("slow".to_owned(), 1.0)],
                probes: vec!["done".to_owned()],
                scheduler,
                on_the_fly: false,
                budget: Budget::default(),
            })
            .expect("check")
        };

        // Uniform resolution: mean round 0.5·(1/4) + 0.5·1 → throughput 1.6.
        let out = check("throughput(done) >= 2", Scheduler::Uniform);
        assert_eq!(out.status, CmdStatus::Ok);
        assert!(out.contains("FALSE"), "{out}");
        assert!(out.contains("1.6000"), "{out}");

        // Worst case 1, best case 4: the interval straddles 2 → exit 2.
        let out = check("throughput(done) >= 2", Scheduler::Bounds);
        assert_eq!(out.status, CmdStatus::NotConverged);
        assert!(out.contains("NO VERDICT"), "{out}");
        assert!(out.contains("1.0000"), "{out}");
        assert!(out.contains("4.0000"), "{out}");
        assert!(out.contains("ctmdp states:"), "{out}");

        // One-sided quantification gives a definite verdict on each side.
        let out = check("throughput(done) >= 2", Scheduler::Min);
        assert_eq!(out.status, CmdStatus::Ok);
        assert!(out.contains("FALSE"), "{out}");
        let out = check("throughput(done) >= 2", Scheduler::Max);
        assert!(out.contains("TRUE"), "{out}");

        // A threshold below the whole interval holds for every scheduler.
        let out = check("throughput(done) >= 0.5", Scheduler::Bounds);
        assert_eq!(out.status, CmdStatus::Ok);
        assert!(out.contains("TRUE"), "{out}");
    }

    #[test]
    fn check_performance_measures_on_a_deterministic_model() {
        let dir = std::env::temp_dir().join("multival-cli-test9");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let model = dir.join("buf.lot");
        std::fs::write(
            &model,
            "process Buf[put, get](full: bool) :=
                 [not full] -> put; Buf[put, get](true)
              [] [full] -> get; Buf[put, get](false)
             endproc
             behaviour Buf[put, get](false)",
        )
        .expect("write");
        let model = model.to_string_lossy().into_owned();

        let check = |formula: &str, scheduler: Scheduler| {
            execute(&Command::Check {
                input: model.clone(),
                formula: formula.into(),
                rates: vec![("put".to_owned(), 2.0), ("get".to_owned(), 1.0)],
                probes: Vec::new(),
                scheduler,
                on_the_fly: false,
                budget: Budget::default(),
            })
            .expect("check")
        };

        // Functional state 1 (full) holds exp(1): occupied 2/3 of the time.
        let out = check("occupancy(1) >= 0.5", Scheduler::Uniform);
        assert!(out.contains("TRUE"), "{out}");
        assert!(out.contains("0.6667"), "{out}");
        // No nondeterminism: the interval is a point with the same verdict.
        let out = check("occupancy(1) >= 0.5", Scheduler::Bounds);
        assert_eq!(out.status, CmdStatus::Ok);
        assert!(out.contains("TRUE"), "{out}");

        // Expected first fill takes 1/put = 0.5.
        let out = check("latency(1) <= 0.6", Scheduler::Bounds);
        assert!(out.contains("TRUE"), "{out}");
        assert!(out.contains("0.5000"), "{out}");

        // P(full by t = 0.3) = 1 − e^{−0.6} ≈ 0.4512.
        let out = check("transient(1 @ 0.3) >= 0.5", Scheduler::Bounds);
        assert!(out.contains("FALSE"), "{out}");
        let out = check("transient(1 @ 0.3) >= 0.4", Scheduler::Uniform);
        assert!(out.contains("TRUE"), "{out}");
    }

    #[test]
    fn simulate_executes_and_is_thread_invariant() {
        let dir = std::env::temp_dir().join("multival-cli-test5");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let model = dir.join("sim.lot");
        std::fs::write(
            &model,
            "process Buf[put, get](full: bool) :=
                 [not full] -> put; Buf[put, get](true)
              [] [full] -> get; Buf[put, get](false)
             endproc
             behaviour Buf[put, get](false)",
        )
        .expect("write");
        let model = model.to_string_lossy().into_owned();

        let run = |threads: usize| {
            execute(&Command::Simulate {
                input: model.clone(),
                rates: vec![("put".to_owned(), 2.0), ("get".to_owned(), 3.0)],
                probes: Vec::new(),
                horizon: 80.0,
                time: Some(1.5),
                trajectories: 2048,
                seed: 11,
                threads,
                rel_width: 0.05,
                confidence: 0.99,
                budget: Budget::default(),
                scheduler: Scheduler::Bounds,
            })
            .expect("simulate")
        };
        let out = run(1);
        assert!(out.contains("ctmc states: 2"), "{out}");
        assert!(out.contains("occupancy vs steady state"), "{out}");
        assert!(out.contains("transient vs uniformization"), "{out}");
        // Every estimate must agree with the numerical answer.
        assert!(out.contains("agreement: 2/2"), "{out}");
        // --scheduler bounds adds the interval cross-check; a deterministic
        // model collapses it onto the steady state, and the sampled
        // estimates must fall inside.
        assert!(out.contains("occupancy scheduler bounds"), "{out}");
        assert!(out.contains("bounds agreement: 2/2"), "{out}");
        assert!(!out.contains("NO"), "{out}");

        // Estimates depend on the seed only: threads=4 gives bit-identical
        // output once the timing lines are stripped.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| {
                    !l.contains("wall-clock")
                        && !l.contains("trajectories/sec")
                        && !l.contains("threads")
                        // Separator width tracks the widest (timed) cell.
                        && !l.chars().all(|c| c == '-')
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&out), strip(&run(4)));
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&args(&["explode"])).is_err());
        assert!(parse_args(&args(&["check", "m.lot"])).is_err());
        assert!(parse_args(&args(&["solve", "m.lot"])).is_err());
        assert!(parse_args(&args(&["compare", "a.aut"])).is_err());
        assert!(parse_args(&args(&["solve", "m.lot", "--rate", "nope"])).is_err());
        assert!(matches!(parse_args(&args(&[])), Ok(Command::Help)));
    }

    #[test]
    fn lint_command_reports_findings() {
        let dir = std::env::temp_dir().join("multival-cli-test3");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let model = dir.join("lint.lot");
        std::fs::write(&model, "behaviour (a; stop) |[a, ghost]| (a; stop)").expect("write");
        let model = model.to_string_lossy().into_owned();
        let cmd = parse_args(&args(&["lint", &model])).expect("parses");
        let out = execute(&cmd).expect("lints");
        assert!(out.contains("ghost"), "{out}");
        assert!(out.contains("blocks forever"), "{out}");
    }

    #[test]
    fn parses_walk_and_refines() {
        let cmd =
            parse_args(&args(&["walk", "m.lot", "--steps", "5", "--seed", "7"])).expect("parses");
        assert_eq!(cmd, Command::Walk { input: "m.lot".into(), steps: 5, seed: 7 });
        let cmd = parse_args(&args(&["refines", "a.aut", "b.aut", "--weak"])).expect("parses");
        assert_eq!(cmd, Command::Refines { imp: "a.aut".into(), spec: "b.aut".into(), weak: true });
        assert!(parse_args(&args(&["refines", "only-one"])).is_err());
    }

    #[test]
    fn walk_and_refines_execute() {
        let dir = std::env::temp_dir().join("multival-cli-test2");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let imp = dir.join("imp.lot");
        let spec = dir.join("spec.lot");
        std::fs::write(&imp, "behaviour a; b; stop").expect("write");
        std::fs::write(&spec, "behaviour a; (b; stop [] c; stop)").expect("write");
        let imp = imp.to_string_lossy().into_owned();
        let spec = spec.to_string_lossy().into_owned();

        let out = execute(&Command::Walk { input: imp.clone(), steps: 10, seed: 1 }).expect("walk");
        assert!(out.contains("--a-->"), "{out}");
        assert!(out.contains("DEADLOCK"), "chain ends: {out}");
        // Reproducibility.
        let again =
            execute(&Command::Walk { input: imp.clone(), steps: 10, seed: 1 }).expect("walk");
        assert_eq!(out, again);

        let ok = execute(&Command::Refines { imp: imp.clone(), spec: spec.clone(), weak: false })
            .expect("refines");
        assert!(ok.starts_with("REFINES"), "{ok}");
        let not =
            execute(&Command::Refines { imp: spec, spec: imp, weak: false }).expect("refines");
        assert!(not.starts_with("DOES NOT"), "{not}");
    }

    #[test]
    fn parses_reduce() {
        use multival_lts::pipeline::Order;
        let cmd = parse_args(&args(&["reduce", "m.lot"])).expect("parses");
        assert_eq!(
            cmd,
            Command::Reduce {
                input: "m.lot".into(),
                eq: Equivalence::Branching,
                order: Order::Smart,
                aut: None,
                blts: None,
                checkpoint: None,
                threads: 1,
                budget: Budget::default(),
                store: None,
                mem_budget: None,
            }
        );
        let cmd = parse_args(&args(&[
            "reduce",
            "m.lot",
            "--eq",
            "strong",
            "--order",
            "seed:42",
            "--aut",
            "out.aut",
            "--checkpoint",
            "ckpt",
            "--threads",
            "4",
            "--max-states",
            "100",
            "--blts",
            "out.blts",
            "--store",
            "spill",
            "--mem-budget",
            "64m",
        ]))
        .expect("parses");
        assert_eq!(
            cmd,
            Command::Reduce {
                input: "m.lot".into(),
                eq: Equivalence::Strong,
                order: Order::Seeded(42),
                aut: Some("out.aut".into()),
                blts: Some("out.blts".into()),
                checkpoint: Some("ckpt".into()),
                threads: 4,
                budget: Budget::default().with_max_states(100),
                store: Some(multival_lts::StoreKind::Spill),
                mem_budget: Some(64 << 20),
            }
        );
        assert!(parse_args(&args(&["reduce", "m.lot", "--order", "bogus"])).is_err());
        assert!(parse_args(&args(&["reduce"])).is_err());
    }

    #[test]
    fn parses_store_flags() {
        use multival_lts::StoreKind;
        let cmd =
            parse_args(&args(&["explore", "m.lot", "--store", "arena", "--mem-budget", "512k"]))
                .expect("parses");
        assert!(matches!(
            cmd,
            Command::Explore { store: Some(StoreKind::Arena), mem_budget: Some(524_288), .. }
        ));
        // Plain bytes and every suffix case parse; garbage does not.
        assert_eq!(parse_mem("123"), Ok(123));
        assert_eq!(parse_mem("2K"), Ok(2048));
        assert_eq!(parse_mem("3g"), Ok(3 << 30));
        assert!(parse_mem("").is_err());
        assert!(parse_mem("12q").is_err());
        assert!(parse_mem("m").is_err());
        assert!(parse_store("hash").is_ok() && parse_store("spill").is_ok());
        assert!(parse_store("disk").is_err());
        // The scan keeps no state table, so --store conflicts with it.
        assert!(
            parse_args(&args(&["explore", "m.lot", "--on-the-fly", "--store", "hash"])).is_err()
        );
        assert!(
            parse_args(&args(&["explore", "m.lot", "--on-the-fly", "--blts", "o.blts"])).is_err()
        );
    }

    /// A three-component buffer chain whose interior gates are hidden.
    const CHAIN_NET: &str = "process Gen[a, m] := a; m; Gen[a, m] endproc
         process Buf[m, n] := m; n; Buf[m, n] endproc
         process Sink[n, b] := n; b; Sink[n, b] endproc
         behaviour hide m, n in ( Gen[a, m] |[m]| ( Buf[m, n] |[n]| Sink[n, b] ) )";

    #[test]
    fn reduce_executes_canonically_and_trips_its_budget() {
        use multival_lts::pipeline::Order;
        let dir = std::env::temp_dir().join("multival-cli-test6");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let model = dir.join("chain.lot");
        std::fs::write(&model, CHAIN_NET).expect("write");
        let model = model.to_string_lossy().into_owned();

        let reduce = |order: Order, threads: usize, aut: &str| Command::Reduce {
            input: model.clone(),
            eq: Equivalence::Branching,
            order,
            aut: Some(dir.join(aut).to_string_lossy().into_owned()),
            blts: None,
            checkpoint: None,
            threads,
            budget: Budget::default(),
            store: None,
            mem_budget: None,
        };
        let out = execute(&reduce(Order::Smart, 1, "smart.aut")).expect("reduce");
        assert_eq!(out.status, CmdStatus::Ok);
        assert!(out.contains("Gen"), "{}", out.text);
        assert!(out.contains("peak intermediate states:"), "{}", out.text);
        assert!(out.contains("reduced:"), "{}", out.text);

        // Every order and worker count must produce byte-identical output.
        execute(&reduce(Order::Given, 4, "given.aut")).expect("reduce");
        execute(&reduce(Order::Seeded(9), 2, "seeded.aut")).expect("reduce");
        let smart = std::fs::read(dir.join("smart.aut")).expect("read");
        assert!(!smart.is_empty());
        assert_eq!(smart, std::fs::read(dir.join("given.aut")).expect("read"));
        assert_eq!(smart, std::fs::read(dir.join("seeded.aut")).expect("read"));

        // A one-state cap trips before any product materializes: partial
        // report, budget exit status.
        let out = execute(&Command::Reduce {
            input: model.clone(),
            eq: Equivalence::Branching,
            order: Order::Smart,
            aut: None,
            blts: None,
            checkpoint: None,
            threads: 1,
            budget: Budget::default().with_max_states(1),
            store: None,
            mem_budget: None,
        })
        .expect("reduce");
        assert_eq!(out.status, CmdStatus::BudgetExceeded);
        assert!(out.contains("Budget exceeded"), "{}", out.text);

        // A .aut input has no component network to reduce.
        let aut_path = dir.join("smart.aut").to_string_lossy().into_owned();
        let err = execute(&Command::Reduce {
            input: aut_path,
            eq: Equivalence::Branching,
            order: Order::Smart,
            aut: None,
            blts: None,
            checkpoint: None,
            threads: 1,
            budget: Budget::default(),
            store: None,
            mem_budget: None,
        })
        .expect_err("rejects .aut input");
        assert!(err.to_string().contains("parallel structure"), "{err}");
    }

    #[test]
    fn reduce_resumes_from_its_checkpoint() {
        use multival_lts::pipeline::Order;
        let dir = std::env::temp_dir().join("multival-cli-test7");
        // A stale checkpoint from a previous test run must not leak in.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let model = dir.join("chain.lot");
        std::fs::write(&model, CHAIN_NET).expect("write");
        let model = model.to_string_lossy().into_owned();
        let ckpt = dir.join("ckpt").to_string_lossy().into_owned();

        let cmd = Command::Reduce {
            input: model,
            eq: Equivalence::Branching,
            order: Order::Smart,
            aut: None,
            blts: None,
            checkpoint: Some(ckpt),
            threads: 1,
            budget: Budget::default(),
            store: None,
            mem_budget: None,
        };
        let first = execute(&cmd).expect("reduce");
        assert!(!first.contains("resumed"), "{}", first.text);
        let second = execute(&cmd).expect("reduce");
        assert!(second.contains("resumed"), "{}", second.text);
        // The resumed run reports the same reduction.
        let tail = |s: &str| s.lines().rfind(|l| l.starts_with("reduced:")).map(str::to_owned);
        assert_eq!(tail(&first), tail(&second));
    }

    #[test]
    fn threaded_explore_reports_stats_and_partial_work() {
        let dir = std::env::temp_dir().join("multival-cli-test4");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let model = dir.join("grid.lot");
        std::fs::write(
            &model,
            "process Count[tick](n: int 0..40) :=
                 [n < 40] -> tick; Count[tick](n + 1)
             endproc
             behaviour Count[tick](0) ||| Count[tick](0)",
        )
        .expect("write");
        let model = model.to_string_lossy().into_owned();

        // A threaded run prints the throughput report with a speedup line.
        let out = execute(&Command::Explore {
            input: model.clone(),
            aut: None,
            blts: None,
            dot: None,
            budget: Budget::default().with_max_states(10_000),
            threads: 4,
            on_the_fly: false,
            store: None,
            mem_budget: None,
        })
        .expect("explore");
        assert!(out.contains("states: 1681"), "{out}");
        assert!(out.contains("speedup vs 1 thread"), "{out}");

        // A cap abort reports the partial state space instead of discarding it.
        let out = execute(&Command::Explore {
            input: model,
            aut: None,
            blts: None,
            dot: None,
            budget: Budget::default().with_max_states(100),
            threads: 1,
            on_the_fly: false,
            store: None,
            mem_budget: None,
        })
        .expect("partial result, not an error");
        assert!(out.contains("warning: exploration aborted"), "{out}");
        assert!(out.contains("states: 100"), "{out}");
    }

    #[test]
    fn end_to_end_on_temp_files() {
        let dir = std::env::temp_dir().join("multival-cli-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let model = dir.join("buf.lot");
        std::fs::write(
            &model,
            "process Buf[put, get](full: bool) :=
                 [not full] -> put; Buf[put, get](true)
              [] [full] -> get; Buf[put, get](false)
             endproc
             behaviour Buf[put, get](false)",
        )
        .expect("write");
        let model = model.to_string_lossy().into_owned();
        let aut = dir.join("buf.aut").to_string_lossy().into_owned();

        // explore → .aut
        let out = execute(&Command::Explore {
            input: model.clone(),
            aut: Some(aut.clone()),
            blts: None,
            dot: None,
            budget: Budget::default().with_max_states(1000),
            threads: 1,
            on_the_fly: false,
            store: None,
            mem_budget: None,
        })
        .expect("explore");
        assert!(out.contains("states: 2"));

        // check on both the model and the exported .aut
        for input in [&model, &aut] {
            let out = execute(&Command::Check {
                input: input.clone(),
                formula: "nu X. <true> true and [true] X".into(),
                rates: Vec::new(),
                probes: Vec::new(),
                scheduler: Scheduler::Uniform,
                on_the_fly: false,
                budget: Budget::default(),
            })
            .expect("check");
            assert!(out.starts_with("TRUE"), "{out}");
        }

        // minimize the aut
        let out =
            execute(&Command::Minimize { input: aut.clone(), eq: Equivalence::Strong, aut: None })
                .expect("minimize");
        assert!(out.contains("2 states"));

        // compare model against its own export
        let out = execute(&Command::Compare {
            left: model.clone(),
            right: aut.clone(),
            relation: Relation::Strong,
            on_the_fly: false,
        })
        .expect("compare");
        assert!(out.starts_with("EQUIVALENT"));

        // solve with throughput probe
        let out = execute(&Command::Solve {
            input: model,
            rates: vec![("put".into(), 2.0), ("get".into(), 1.0)],
            probes: vec!["get".into()],
        })
        .expect("solve");
        assert!(out.contains("0.6667"), "{out}");
    }
}
