//! The `multival` command-line tool (see `multival::cli` for the verbs).

use multival::cli::{execute, parse_args};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match execute(&cmd) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
