//! Per-invocation resource budgets shared by the CLI verbs and the
//! evaluation service: a wall-clock limit plus a state-count cap.
//!
//! Both engines below the facade understand these natively — the explorer
//! takes a deadline ([`multival_pa::ExploreOptions::with_deadline`]) and a
//! state cap, the Monte-Carlo driver a deadline between batches
//! ([`multival_ctmc::McOptions::deadline`]) — so a `Budget` is just the
//! user-facing bundle that turns `--timeout-secs`/`--max-states` flags (or
//! JSON job fields) into those knobs at the moment the work starts.

use std::time::{Duration, Instant};

/// A resource budget for one evaluation: optional wall-clock limit and
/// optional state-count cap. `Default` is unlimited.
///
/// # Examples
///
/// ```
/// use multival::budget::Budget;
///
/// let b = Budget::default().with_timeout_secs(5).with_max_states(10_000);
/// assert_eq!(b.max_states_or(1_000_000), 10_000);
/// assert!(b.deadline().is_some());
/// assert!(Budget::default().deadline().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock limit for the whole evaluation, `None` = unlimited.
    pub timeout: Option<Duration>,
    /// State-count cap for exploration, `None` = the verb's default.
    pub max_states: Option<usize>,
}

impl Budget {
    /// Sets the wall-clock limit in whole seconds.
    #[must_use]
    pub fn with_timeout_secs(mut self, secs: u64) -> Budget {
        self.timeout = Some(Duration::from_secs(secs));
        self
    }

    /// Sets the state-count cap.
    #[must_use]
    pub fn with_max_states(mut self, cap: usize) -> Budget {
        self.max_states = Some(cap);
        self
    }

    /// Resolves the timeout into an absolute deadline counted from *now*
    /// (call this when the work starts, not when the flags are parsed).
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.timeout.map(|t| Instant::now() + t)
    }

    /// The state cap, or `default` when unset.
    #[must_use]
    pub fn max_states_or(&self, default: usize) -> usize {
        self.max_states.unwrap_or(default)
    }

    /// `true` when neither limit is set.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none() && self.max_states.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        let b = Budget::default();
        assert!(b.is_unlimited());
        assert!(b.deadline().is_none());
        assert_eq!(b.max_states_or(7), 7);
    }

    #[test]
    fn builders_set_limits() {
        let b = Budget::default().with_timeout_secs(2).with_max_states(99);
        assert!(!b.is_unlimited());
        assert_eq!(b.timeout, Some(Duration::from_secs(2)));
        assert_eq!(b.max_states_or(7), 99);
        let d = b.deadline().expect("deadline set");
        assert!(d > Instant::now());
        assert!(d <= Instant::now() + Duration::from_secs(3));
    }
}
