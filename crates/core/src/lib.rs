//! # multival — quantitative evaluation in embedded system design
//!
//! A Rust reproduction of the Multival flow (Coste, Garavel, Hermanns,
//! Hersemeule, Thonnart, Zidouni — DATE'08): joint *functional
//! verification* and *performance evaluation* of asynchronous
//! multiprocessor architectures, in the style of the CADP toolbox.
//!
//! This facade crate re-exports the whole stack and adds the integrated
//! [`flow`] API:
//!
//! * [`pa`] — mini-LOTOS process algebra + state-space generation;
//! * [`lts`] — labeled transition systems, composition, bisimulation
//!   minimization, equivalence checking;
//! * [`mcl`] — μ-calculus model checking;
//! * [`imc`] — Interactive Markov Chains, phase-type delays, lumping,
//!   CTMC conversion;
//! * [`ctmc`] — steady-state/transient solvers, hitting times, CTMDPs;
//! * [`models`] — the FAME2, FAUST, and xSTream case studies.
//!
//! # Examples
//!
//! End-to-end: verify a model, then predict its throughput.
//!
//! ```
//! use multival::flow::Flow;
//! use multival::imc::NondetPolicy;
//! use std::collections::HashMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let flow = Flow::from_source(
//!     "process Buf[put, get](full: bool) :=
//!          [not full] -> put; Buf[put, get](true)
//!       [] [full]     -> get; Buf[put, get](false)
//!      endproc
//!      behaviour Buf[put, get](false)",
//! )?;
//! assert!(flow.deadlock().is_none());
//!
//! let mut rates = HashMap::new();
//! rates.insert("put".to_owned(), 2.0);
//! rates.insert("get".to_owned(), 1.0);
//! let solved = flow.with_rates(&rates).solve(NondetPolicy::Reject, &["get"])?;
//! let throughput = solved.throughputs()?[0].1;
//! assert!((throughput - 2.0 / 3.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod budget;
pub mod cli;
pub mod flow;
pub mod fuzz;
pub mod report;

pub use multival_ctmc as ctmc;
pub use multival_imc as imc;
pub use multival_lts as lts;
pub use multival_mcl as mcl;
pub use multival_models as models;
pub use multival_pa as pa;
pub use multival_par as par;

pub use flow::{Flow, FlowError, PerfFlow, Solved};
