//! Plain-text table rendering for the experiment harness.

/// A simple left-padded ASCII table.
///
/// # Examples
///
/// ```
/// use multival::report::Table;
///
/// let mut t = Table::new(&["model", "states"]);
/// t.row(&["queue", "42"]);
/// let text = t.render();
/// assert!(text.contains("model"));
/// assert!(text.contains("42"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.len()..width[i] {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// Formats a float with 4 significant decimals, trimming noise.
pub fn fmt_f(x: f64) -> String {
    if x == f64::INFINITY {
        "inf".to_owned()
    } else if x.abs() >= 1000.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["short", "1"]);
        t.row(&["a-much-longer-name", "2345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.123456), "0.1235");
        assert_eq!(fmt_f(12345.6), "12345.6");
        assert_eq!(fmt_f(f64::INFINITY), "inf");
    }
}
