//! Plain-text table rendering for the experiment harness, plus the
//! parallel-exploration throughput report.

use crate::flow::Interval;
use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

/// A simple left-padded ASCII table.
///
/// # Examples
///
/// ```
/// use multival::report::Table;
///
/// let mut t = Table::new(&["model", "states"]);
/// t.row(&["queue", "42"]);
/// let text = t.render();
/// assert!(text.contains("model"));
/// assert!(text.contains("42"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.len()..width[i] {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// Throughput report for a (possibly parallel) state-space run.
///
/// Rendered by the `multival explore --threads N` path; the speedup line
/// only appears when a one-thread reference run was timed.
#[derive(Debug, Clone)]
#[must_use]
pub struct ParStats {
    /// Worker threads used (already resolved; never 0).
    pub threads: usize,
    /// States generated.
    pub states: usize,
    /// Transitions generated.
    pub transitions: usize,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Wall-clock time of the one-thread reference run, when measured.
    pub baseline_wall: Option<Duration>,
}

impl ParStats {
    /// States generated per second of wall-clock time.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            self.states as f64 / secs
        }
    }

    /// Speedup versus the one-thread reference, when one was timed.
    pub fn speedup(&self) -> Option<f64> {
        let base = self.baseline_wall?.as_secs_f64();
        let wall = self.wall.as_secs_f64();
        Some(if wall <= 0.0 { f64::INFINITY } else { base / wall })
    }

    /// Renders the report as an aligned two-column table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["exploration", "value"]);
        t.row_owned(vec!["threads".into(), self.threads.to_string()]);
        t.row_owned(vec!["states".into(), self.states.to_string()]);
        t.row_owned(vec!["transitions".into(), self.transitions.to_string()]);
        t.row_owned(vec!["wall-clock".into(), format!("{:.1} ms", self.wall.as_secs_f64() * 1e3)]);
        t.row_owned(vec!["states/sec".into(), fmt_f(self.states_per_sec())]);
        if let Some(s) = self.speedup() {
            t.row_owned(vec!["speedup vs 1 thread".into(), format!("{s:.2}x")]);
        }
        t.render()
    }
}

/// Report for an on-the-fly run: how much of the implicit state space the
/// search actually visited versus what was materialized as an explicit LTS.
///
/// Rendered by the `--on-the-fly` paths of `multival explore` and
/// `multival check`.
#[derive(Debug, Clone)]
#[must_use]
pub struct FlyStats {
    /// States the search visited.
    pub visited: usize,
    /// Transitions the search crossed.
    pub transitions: usize,
    /// States held in memory as an explicit LTS (0 when the walk ran
    /// straight over the term graph or lazy product).
    pub materialized: usize,
    /// Whether the state cap truncated the walk.
    pub truncated: bool,
}

impl FlyStats {
    /// Renders the report as an aligned two-column table, with a warning
    /// line when the cap cut the walk short.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["on-the-fly", "value"]);
        t.row_owned(vec!["visited states".into(), self.visited.to_string()]);
        t.row_owned(vec!["transitions".into(), self.transitions.to_string()]);
        t.row_owned(vec!["materialized states".into(), self.materialized.to_string()]);
        let mut out = t.render();
        if self.truncated {
            out.push_str("warning: state cap hit; the walk is incomplete\n");
        }
        out
    }
}

/// Report for the state-store backend of a store-backed exploration or
/// reduction (`--store arena|spill`).
#[derive(Debug, Clone)]
#[must_use]
pub struct StoreReport {
    /// Backend used.
    pub kind: multival_lts::StoreKind,
    /// Counter snapshot at the end of the run.
    pub stats: multival_lts::StoreStats,
}

impl StoreReport {
    /// Renders the one-line store summary.
    pub fn render(&self) -> String {
        let mib = |b: usize| (b as f64) / (1024.0 * 1024.0);
        let mut line = format!(
            "store {}: {} states, {:.1} MiB keys, {:.1} MiB resident",
            self.kind,
            self.stats.states,
            mib(self.stats.key_bytes),
            mib(self.stats.mem_bytes),
        );
        if self.stats.spilled_segments > 0 {
            line.push_str(&format!(
                ", {:.1} MiB spilled across {} segments",
                mib(self.stats.spilled_bytes),
                self.stats.spilled_segments
            ));
        }
        line.push('\n');
        line
    }
}

/// Report for a Monte-Carlo simulation run.
///
/// Rendered by the `multival simulate` path and the `Flow` simulation entry
/// points.
#[derive(Debug, Clone)]
#[must_use]
pub struct SimStats {
    /// Trajectories sampled.
    pub trajectories: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Confidence level of the intervals (e.g. `0.99`).
    pub confidence: f64,
    /// Largest confidence-interval half-width over all estimates.
    pub max_half_width: f64,
    /// Whether the width stopping rule was met before the trajectory cap.
    pub converged: bool,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

impl From<&multival_ctmc::McRun> for SimStats {
    fn from(run: &multival_ctmc::McRun) -> SimStats {
        SimStats {
            trajectories: run.trajectories,
            threads: run.threads,
            confidence: run.confidence,
            max_half_width: run.max_half_width(),
            converged: run.converged,
            wall: run.wall,
        }
    }
}

impl SimStats {
    /// Trajectories sampled per second of wall-clock time.
    pub fn trajectories_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            self.trajectories as f64 / secs
        }
    }

    /// Renders the report as an aligned two-column table, with a warning
    /// line when the trajectory cap stopped the run before convergence.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["simulation", "value"]);
        t.row_owned(vec!["trajectories".into(), self.trajectories.to_string()]);
        t.row_owned(vec!["threads".into(), self.threads.to_string()]);
        t.row_owned(vec!["confidence".into(), format!("{:.1}%", self.confidence * 100.0)]);
        t.row_owned(vec!["max CI half-width".into(), format!("{:.6}", self.max_half_width)]);
        t.row_owned(vec!["wall-clock".into(), format!("{:.1} ms", self.wall.as_secs_f64() * 1e3)]);
        t.row_owned(vec!["trajectories/sec".into(), fmt_f(self.trajectories_per_sec())]);
        let mut out = t.render();
        if !self.converged {
            out.push_str("warning: trajectory cap hit before the requested CI width\n");
        }
        out
    }
}

/// Report for one evaluation-service run, rendered when `multival serve`
/// shuts down (and mirrored by the `/v1/metrics` endpoint as JSON).
#[derive(Debug, Clone, Default)]
#[must_use]
pub struct ServeStats {
    /// Jobs accepted into the queue.
    pub accepted: usize,
    /// Jobs finished successfully.
    pub done: usize,
    /// Jobs that failed (bad model, solver error, …).
    pub failed: usize,
    /// Jobs rejected because the submission queue was full.
    pub rejected: usize,
    /// Jobs cancelled before a worker picked them up.
    pub cancelled: usize,
    /// Jobs coalesced behind an identical in-flight evaluation.
    pub coalesced: usize,
    /// Jobs replayed from the journal on startup.
    pub recovered: usize,
    /// Result-cache hits (answers served without touching the engines).
    pub cache_hits: usize,
    /// Result-cache misses.
    pub cache_misses: usize,
    /// Wall-clock time the service was up.
    pub uptime: Duration,
}

impl ServeStats {
    /// Cache hit rate in `[0, 1]`; `0` when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Renders the report as an aligned two-column table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["service", "value"]);
        t.row_owned(vec!["jobs accepted".into(), self.accepted.to_string()]);
        t.row_owned(vec!["jobs done".into(), self.done.to_string()]);
        t.row_owned(vec!["jobs failed".into(), self.failed.to_string()]);
        t.row_owned(vec!["jobs rejected".into(), self.rejected.to_string()]);
        t.row_owned(vec!["jobs cancelled".into(), self.cancelled.to_string()]);
        t.row_owned(vec!["jobs coalesced".into(), self.coalesced.to_string()]);
        t.row_owned(vec!["jobs recovered".into(), self.recovered.to_string()]);
        t.row_owned(vec!["cache hits".into(), self.cache_hits.to_string()]);
        t.row_owned(vec!["cache misses".into(), self.cache_misses.to_string()]);
        t.row_owned(vec!["cache hit rate".into(), format!("{:.1}%", self.hit_rate() * 100.0)]);
        t.row_owned(vec!["uptime".into(), format!("{:.1} s", self.uptime.as_secs_f64())]);
        t.render()
    }
}

/// One stage of a compositional reduction run, as rendered by
/// `multival reduce` (a de-coupled mirror of the pipeline's stage stats so
/// the report layer stays engine-agnostic).
#[derive(Debug, Clone)]
pub struct ReduceStageRow {
    /// Stage index (0-based).
    pub stage: usize,
    /// Component folded in at this stage.
    pub component: String,
    /// Product states before hiding/minimization.
    pub states_before: usize,
    /// Product transitions before hiding/minimization.
    pub transitions_before: usize,
    /// States after hiding + minimization.
    pub states_after: usize,
    /// Transitions after hiding + minimization.
    pub transitions_after: usize,
    /// Gates whose possessor sets completed at this stage (now hidden).
    pub hidden: Vec<String>,
}

/// Report for a `multival reduce` run: the per-stage fold table plus the
/// peak/final summary.
#[derive(Debug, Clone)]
#[must_use]
pub struct ReduceStats {
    /// Completed stages, in execution order.
    pub stages: Vec<ReduceStageRow>,
    /// Largest intermediate state count (inclusive of pre-minimization
    /// products).
    pub peak_states: usize,
    /// States of the final (or last completed) reduced LTS.
    pub final_states: usize,
    /// Transitions of the final reduced LTS.
    pub final_transitions: usize,
    /// Leading stages restored from a checkpoint instead of recomputed.
    pub resumed_stages: usize,
}

impl ReduceStats {
    /// Renders the stage table plus the summary lines.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["stage", "component", "product", "reduced", "hides"]);
        for s in &self.stages {
            t.row_owned(vec![
                s.stage.to_string(),
                s.component.clone(),
                format!("{}/{}", s.states_before, s.transitions_before),
                format!("{}/{}", s.states_after, s.transitions_after),
                if s.hidden.is_empty() { "-".to_owned() } else { s.hidden.join(",") },
            ]);
        }
        let mut out = t.render();
        if self.resumed_stages > 0 {
            let _ = writeln!(out, "resumed {} stage(s) from checkpoint", self.resumed_stages);
        }
        let _ = writeln!(out, "peak intermediate states: {}", self.peak_states);
        let _ = writeln!(
            out,
            "reduced: {} states / {} transitions",
            self.final_states, self.final_transitions
        );
        out
    }
}

/// Three-valued verdict of a scheduler interval against a threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundsVerdict {
    /// The predicate holds under every scheduler.
    True,
    /// The predicate fails under every scheduler.
    False,
    /// The interval straddles the threshold: the answer is
    /// scheduler-dependent.
    NoVerdict,
}

impl fmt::Display for BoundsVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BoundsVerdict::True => "TRUE",
            BoundsVerdict::False => "FALSE",
            BoundsVerdict::NoVerdict => "NO VERDICT",
        })
    }
}

/// One row of a [`BoundsReport`]: a measure with its scheduler interval and
/// an optional threshold verdict.
#[derive(Debug, Clone)]
pub struct BoundsRow {
    /// Measure label, e.g. `throughput(push)`.
    pub measure: String,
    /// `[min, max]` over all schedulers (equal endpoints for a single
    /// resolved value).
    pub interval: Interval,
    /// Rendered threshold (e.g. `>= 0.5`) and its verdict, in check mode.
    pub verdict: Option<(String, BoundsVerdict)>,
}

/// Report for a scheduler-quantified evaluation (`--scheduler`): one row
/// per measure.
///
/// Rendered by `multival check` in performance mode and by the bounds
/// sections of `simulate` and the experiment harness.
#[derive(Debug, Clone)]
#[must_use]
pub struct BoundsReport {
    /// Measures, in evaluation order.
    pub rows: Vec<BoundsRow>,
    /// Render a single `value` column instead of `min`/`max`/`width`
    /// (uniform/min/max schedulers resolve to one number per measure).
    pub point: bool,
}

impl BoundsReport {
    /// Renders the measure table; threshold/verdict columns appear only
    /// when at least one row carries a verdict.
    pub fn render(&self) -> String {
        let with_verdict = self.rows.iter().any(|r| r.verdict.is_some());
        let mut header: Vec<&str> = if self.point {
            vec!["measure", "value"]
        } else {
            vec!["measure", "min", "max", "width"]
        };
        if with_verdict {
            header.push("threshold");
            header.push("verdict");
        }
        let mut t = Table::new(&header);
        for r in &self.rows {
            let mut cells = vec![r.measure.clone(), fmt_f(r.interval.min)];
            if !self.point {
                cells.push(fmt_f(r.interval.max));
                cells.push(fmt_f(r.interval.width()));
            }
            if with_verdict {
                match &r.verdict {
                    Some((threshold, v)) => {
                        cells.push(threshold.clone());
                        cells.push(v.to_string());
                    }
                    None => {
                        cells.push("-".to_owned());
                        cells.push("-".to_owned());
                    }
                }
            }
            t.row_owned(cells);
        }
        t.render()
    }
}

/// Terminal state of one sweep point in a [`SweepReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepRowStatus {
    /// Evaluated to a full result.
    Ok,
    /// A budget cap tripped on this point; the rest of the sweep still
    /// reports (overall exit 3).
    Partial(String),
    /// Evaluation failed for a non-budget reason (overall exit 2).
    Failed(String),
}

/// One evaluated point of an `explore-space` sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Axis assignments, e.g. `delay=erlang:4 push_capacity=2`.
    pub label: String,
    /// Resolved transfer-delay style (`exponential`, `erlang:K`, `det:TOL`).
    pub delay: String,
    /// Fitted/assigned Erlang order of the transfer delay.
    pub fit_k: Option<usize>,
    /// Sup-CDF error of the transfer delay vs the ideal deterministic
    /// transfer (outside the jump band) — the *accuracy* objective.
    pub accuracy_error: Option<f64>,
    /// CTMC size of the point — the *peak states* objective.
    pub ctmc_states: Option<usize>,
    /// Steady-state `pop` throughput.
    pub throughput: Option<f64>,
    /// Mean items / throughput (Little's law).
    pub latency: Option<f64>,
    /// Whether the stated fit tolerance was met (false: order cap reached).
    pub tolerance_met: bool,
    /// Membership in the accuracy-vs-peak-states Pareto front.
    pub on_front: bool,
    /// Terminal state.
    pub status: SweepRowStatus,
}

/// Report for one `explore-space` run: every point in deterministic
/// expansion order plus the Pareto front. Rendering carries no timings or
/// wall-clock readings — it is byte-identical across worker counts,
/// transports, and cache states (the driver prints timing separately).
#[derive(Debug, Clone)]
#[must_use]
pub struct SweepReport {
    /// Spec name.
    pub name: String,
    /// Points in expansion order.
    pub rows: Vec<SweepRow>,
}

impl SweepReport {
    /// Renders the per-point table, the Pareto front, and any partial or
    /// failed points.
    pub fn render(&self) -> String {
        let ok = self.rows.iter().filter(|r| r.status == SweepRowStatus::Ok).count();
        let partial =
            self.rows.iter().filter(|r| matches!(r.status, SweepRowStatus::Partial(_))).count();
        let failed =
            self.rows.iter().filter(|r| matches!(r.status, SweepRowStatus::Failed(_))).count();
        let mut out = format!(
            "sweep {}: {} points ({ok} ok, {partial} partial, {failed} failed)\n\n",
            self.name,
            self.rows.len()
        );
        let dash = || "-".to_owned();
        let mut t = Table::new(&[
            "point",
            "delay",
            "k",
            "error",
            "states",
            "throughput",
            "latency",
            "fit",
            "front",
        ]);
        for r in &self.rows {
            t.row_owned(vec![
                r.label.clone(),
                r.delay.clone(),
                r.fit_k.map_or_else(dash, |k| k.to_string()),
                r.accuracy_error.map_or_else(dash, |e| format!("{e:.3e}")),
                r.ctmc_states.map_or_else(dash, |s| s.to_string()),
                r.throughput.map_or_else(dash, fmt_f),
                r.latency.map_or_else(dash, fmt_f),
                match r.status {
                    SweepRowStatus::Ok if r.tolerance_met => "met".to_owned(),
                    SweepRowStatus::Ok => "UNMET".to_owned(),
                    SweepRowStatus::Partial(_) => "partial".to_owned(),
                    SweepRowStatus::Failed(_) => "failed".to_owned(),
                },
                if r.on_front { "*".to_owned() } else { String::new() },
            ]);
        }
        out.push_str(&t.render());
        let front: Vec<&SweepRow> = self.rows.iter().filter(|r| r.on_front).collect();
        let _ = writeln!(out, "\nPareto front (accuracy vs peak states): {} points", front.len());
        for r in front {
            let _ = writeln!(out, "  {}", r.label);
        }
        for r in &self.rows {
            match &r.status {
                SweepRowStatus::Partial(reason) => {
                    let _ = writeln!(out, "partial {}: {reason}", r.label);
                }
                SweepRowStatus::Failed(reason) => {
                    let _ = writeln!(out, "failed {}: {reason}", r.label);
                }
                SweepRowStatus::Ok => {}
            }
        }
        out
    }
}

/// Formats a float with 4 significant decimals, trimming noise.
pub fn fmt_f(x: f64) -> String {
    if x == f64::INFINITY {
        "inf".to_owned()
    } else if x.abs() >= 1000.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["short", "1"]);
        t.row(&["a-much-longer-name", "2345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn par_stats_report() {
        let stats = ParStats {
            threads: 4,
            states: 10_000,
            transitions: 40_000,
            wall: Duration::from_millis(100),
            baseline_wall: Some(Duration::from_millis(300)),
        };
        assert!((stats.states_per_sec() - 100_000.0).abs() < 1e-6);
        assert!((stats.speedup().expect("baseline") - 3.0).abs() < 1e-9);
        let text = stats.render();
        assert!(text.contains("speedup vs 1 thread"), "{text}");
        assert!(text.contains("3.00x"), "{text}");

        let solo = ParStats { baseline_wall: None, ..stats };
        assert!(solo.speedup().is_none());
        assert!(!solo.render().contains("speedup"), "{}", solo.render());
    }

    #[test]
    fn fly_stats_report() {
        let stats = FlyStats { visited: 12, transitions: 30, materialized: 0, truncated: false };
        let text = stats.render();
        assert!(text.contains("visited states"), "{text}");
        assert!(text.contains("materialized states  0"), "{text}");
        assert!(!text.contains("warning"), "{text}");
        let cut = FlyStats { truncated: true, ..stats };
        assert!(cut.render().contains("state cap hit"), "{}", cut.render());
    }

    #[test]
    fn sim_stats_report() {
        let stats = SimStats {
            trajectories: 4096,
            threads: 4,
            confidence: 0.99,
            max_half_width: 0.0123,
            converged: true,
            wall: Duration::from_millis(12),
        };
        let text = stats.render();
        assert!(text.contains("4096"), "{text}");
        assert!(text.contains("99.0%"), "{text}");
        assert!(text.contains("0.012300"), "{text}");
        assert!(!text.contains("warning"), "{text}");
        let capped = SimStats { converged: false, ..stats };
        assert!(capped.render().contains("trajectory cap hit"), "{}", capped.render());
    }

    #[test]
    fn serve_stats_report() {
        let stats = ServeStats {
            accepted: 10,
            done: 8,
            failed: 1,
            rejected: 2,
            cancelled: 1,
            coalesced: 4,
            recovered: 2,
            cache_hits: 3,
            cache_misses: 9,
            uptime: Duration::from_millis(2500),
        };
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
        let text = stats.render();
        assert!(text.contains("jobs accepted"), "{text}");
        assert!(text.contains("jobs coalesced  4"), "{text}");
        assert!(text.contains("jobs recovered  2"), "{text}");
        assert!(text.contains("cache hit rate  25.0%"), "{text}");
        assert!(text.contains("2.5 s"), "{text}");
        assert_eq!(ServeStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn reduce_stats_report() {
        let stats = ReduceStats {
            stages: vec![
                ReduceStageRow {
                    stage: 0,
                    component: "Window".into(),
                    states_before: 3,
                    transitions_before: 4,
                    states_after: 3,
                    transitions_after: 4,
                    hidden: vec![],
                },
                ReduceStageRow {
                    stage: 1,
                    component: "Hop".into(),
                    states_before: 6,
                    transitions_before: 11,
                    states_after: 4,
                    transitions_after: 6,
                    hidden: vec!["f1".into(), "f2".into()],
                },
            ],
            peak_states: 6,
            final_states: 4,
            final_transitions: 6,
            resumed_stages: 1,
        };
        let text = stats.render();
        assert!(text.contains("6/11"), "{text}");
        assert!(text.contains("f1,f2"), "{text}");
        assert!(text.contains("resumed 1 stage(s)"), "{text}");
        assert!(text.contains("peak intermediate states: 6"), "{text}");
        let fresh = ReduceStats { resumed_stages: 0, ..stats };
        assert!(!fresh.render().contains("resumed"), "{}", fresh.render());
    }

    #[test]
    fn bounds_report_renders_intervals_and_points() {
        let report = BoundsReport {
            rows: vec![BoundsRow {
                measure: "throughput(push)".into(),
                interval: Interval { min: 1.0, max: 4.0 },
                verdict: Some((">= 2".into(), BoundsVerdict::NoVerdict)),
            }],
            point: false,
        };
        let text = report.render();
        assert!(text.contains("min"), "{text}");
        assert!(text.contains("width"), "{text}");
        assert!(text.contains("3.0000"), "{text}");
        assert!(text.contains("NO VERDICT"), "{text}");

        let point = BoundsReport {
            rows: vec![BoundsRow {
                measure: "latency(2)".into(),
                interval: Interval { min: 0.5, max: 0.5 },
                verdict: None,
            }],
            point: true,
        };
        let text = point.render();
        assert!(text.contains("value"), "{text}");
        assert!(!text.contains("width"), "{text}");
        assert!(!text.contains("verdict"), "{text}");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.123456), "0.1235");
        assert_eq!(fmt_f(12345.6), "12345.6");
        assert_eq!(fmt_f(f64::INFINITY), "inf");
    }
}
