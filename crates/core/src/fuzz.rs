//! Differential fuzzing over generated xMAS fabrics (`multival fuzz`).
//!
//! Each seed becomes a well-typed fabric
//! ([`multival_models::xmas::generate`]) and is swept through the full
//! flow with four independent oracles:
//!
//! 1. **Pipeline vs monolithic** — the smart compositional reduction and
//!    the one-shot product must canonicalize to byte-identical LTSs.
//! 2. **Builder vs `.lot`** — the directly-built component network and
//!    the rendered mini-LOTOS frontend path (parse → extract → reduce)
//!    must canonicalize identically. `inject_flip` plants a switch-
//!    polarity bug in the renderer to prove the harness catches
//!    miscompilation.
//! 3. **Deadlock oracle** — on-the-fly search over the rendered spec
//!    must agree with deadlock detection on the divergence-preserving
//!    reduction of the built network.
//! 4. **Throughput bounds** — when the fabric carries rate annotations,
//!    the `[min, max]` scheduler bounds must form a non-empty interval.
//!
//! Any disagreement is minimized by [`multival_models::xmas::shrink()`]
//! (same oracle as the predicate) and written to the corpus directory as
//! a standalone `.lot` reproducer. Budget trips (shared [`Budget`] —
//! `--max-states` / `--timeout-secs`) abort the sweep, *skip the corpus
//! write*, and surface as exit code 3.

use crate::budget::Budget;
use multival_lts::analysis::deadlock_witness;
use multival_lts::io::write_aut;
use multival_lts::minimize::Equivalence;
use multival_lts::pipeline::{canonicalize, monolithic, run_pipeline, PipelineOptions};
use multival_lts::reach::deadlock_search;
use multival_lts::{ReachOptions, StoreConfig, Workers};
use multival_models::xmas::{generate, render_lot, shrink, Fabric, GenConfig, RenderOptions};
use multival_pa::{extract_network, parse_spec, ExploreOptions, PaTs};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Monolithic products larger than this (estimated as the product of the
/// component state counts) are skipped — the pipeline-vs-mono oracle then
/// reports the seed in [`FuzzReport::mono_skipped`] instead of silently
/// covering it.
const MONO_PRODUCT_CAP: u128 = 1 << 20;

/// Default per-seed state cap when the budget sets none.
const DEFAULT_MAX_STATES: usize = 1 << 22;

/// Which differential oracle disagreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// Smart pipeline vs monolithic composition (canonical LTS bytes).
    PipelineVsMono,
    /// Direct builder network vs rendered `.lot` frontend path.
    BuilderVsLot,
    /// On-the-fly deadlock search vs reduced-model deadlock detection.
    DeadlockOracle,
    /// Scheduler throughput bounds (`min <= max`).
    Bounds,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CheckKind::PipelineVsMono => "pipeline-vs-mono",
            CheckKind::BuilderVsLot => "builder-vs-lot",
            CheckKind::DeadlockOracle => "deadlock-oracle",
            CheckKind::Bounds => "bounds",
        })
    }
}

/// Options for [`run_fuzz`].
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// First seed (inclusive).
    pub seed_start: u64,
    /// Last seed (exclusive).
    pub seed_end: u64,
    /// Directory for minimized reproducers (created on demand); `None`
    /// disables the corpus write.
    pub corpus_dir: Option<PathBuf>,
    /// Shared wall-clock / state budget for the whole sweep.
    pub budget: Budget,
    /// Worker threads for composition and minimization.
    pub workers: Workers,
    /// Topology budget for the generator.
    pub gen: GenConfig,
    /// Plant the switch-polarity bug in the `.lot` renderer (harness
    /// self-test: the sweep must then *find* mismatches).
    pub inject_flip: bool,
    /// Maximum accepted shrink steps per mismatch.
    pub max_shrink_rounds: usize,
    /// State-store backend for pipeline stage products.
    pub store: StoreConfig,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed_start: 0,
            seed_end: 16,
            corpus_dir: None,
            budget: Budget::default(),
            workers: Workers::default(),
            gen: GenConfig::default(),
            inject_flip: false,
            max_shrink_rounds: 64,
            store: StoreConfig::default(),
        }
    }
}

/// One confirmed oracle disagreement, already minimized.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Seed of the generated fabric.
    pub seed: u64,
    /// Which oracle disagreed.
    pub kind: CheckKind,
    /// Human-readable detail of the disagreement.
    pub detail: String,
    /// The minimized reproducer.
    pub shrunk: Fabric,
    /// Where the reproducer was written (when the corpus is enabled and
    /// the budget did not trip).
    pub corpus_path: Option<PathBuf>,
}

/// Aggregated result of a fuzz sweep.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Seeds fully checked.
    pub seeds_run: usize,
    /// Confirmed, minimized disagreements.
    pub mismatches: Vec<Mismatch>,
    /// The shared budget cut the sweep short.
    pub budget_tripped: bool,
    /// Total product states explored across all oracles.
    pub states_explored: usize,
    /// Seeds whose reduced fabric contains a reachable deadlock.
    pub deadlocks_found: usize,
    /// Seeds where the throughput-bounds oracle ran.
    pub bounds_checked: usize,
    /// Seeds where the bounds solver declined (no rates, solver error).
    pub bounds_skipped: usize,
    /// Seeds whose monolithic product exceeded the size cap.
    pub mono_skipped: usize,
    /// Seeds where the planted flip does not type-check (the flipped
    /// model validates to an error instead of a wrong LTS).
    pub flip_skipped: usize,
}

impl FuzzReport {
    /// Renders the sweep summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz: {} seeds, {} mismatches, {} states explored",
            self.seeds_run,
            self.mismatches.len(),
            self.states_explored
        );
        let _ = writeln!(
            out,
            "oracles: bounds {} checked / {} skipped, mono {} skipped, \
             {} deadlocking fabrics, flip {} skipped",
            self.bounds_checked,
            self.bounds_skipped,
            self.mono_skipped,
            self.deadlocks_found,
            self.flip_skipped
        );
        for m in &self.mismatches {
            let _ = writeln!(
                out,
                "MISMATCH seed {} [{}]: {} (reproducer: {} primitives{})",
                m.seed,
                m.kind,
                m.detail,
                m.shrunk.num_prims(),
                match &m.corpus_path {
                    Some(p) => format!(", {}", p.display()),
                    None => String::new(),
                }
            );
        }
        if self.budget_tripped {
            let _ = writeln!(out, "Budget exceeded; partial sweep, corpus write skipped");
        }
        out
    }
}

/// Outcome of checking one fabric.
enum SeedOutcome {
    Clean(SeedStats),
    Mismatch(CheckKind, String),
    Budget,
}

#[derive(Default)]
struct SeedStats {
    states: usize,
    deadlocks: bool,
    bounds_checked: bool,
    bounds_skipped: bool,
    mono_skipped: bool,
    flip_skipped: bool,
}

/// Runs the differential sweep.
#[must_use]
pub fn run_fuzz(options: &FuzzOptions) -> FuzzReport {
    let deadline = options.budget.deadline();
    let max_states = options.budget.max_states_or(DEFAULT_MAX_STATES);
    let mut report = FuzzReport::default();

    for seed in options.seed_start..options.seed_end {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            report.budget_tripped = true;
            break;
        }
        let fabric = generate(seed, &options.gen);
        match check_fabric(&fabric, options, max_states, deadline) {
            SeedOutcome::Clean(stats) => {
                report.seeds_run += 1;
                report.states_explored += stats.states;
                report.deadlocks_found += usize::from(stats.deadlocks);
                report.bounds_checked += usize::from(stats.bounds_checked);
                report.bounds_skipped += usize::from(stats.bounds_skipped);
                report.mono_skipped += usize::from(stats.mono_skipped);
                report.flip_skipped += usize::from(stats.flip_skipped);
            }
            SeedOutcome::Mismatch(kind, detail) => {
                report.seeds_run += 1;
                let shrunk = shrink(
                    &fabric,
                    |cand| {
                        matches!(
                            check_fabric(cand, options, max_states, deadline),
                            SeedOutcome::Mismatch(k, _) if k == kind
                        )
                    },
                    options.max_shrink_rounds,
                );
                report.mismatches.push(Mismatch { seed, kind, detail, shrunk, corpus_path: None });
            }
            SeedOutcome::Budget => {
                report.budget_tripped = true;
                break;
            }
        }
    }

    // The corpus write is skipped wholesale on a budget trip: a partial
    // sweep must not publish reproducers it could not finish minimizing.
    if !report.budget_tripped {
        if let Some(dir) = &options.corpus_dir {
            if !report.mismatches.is_empty() {
                let _ = std::fs::create_dir_all(dir);
                for m in &mut report.mismatches {
                    let path = dir.join(format!("xmas_seed{}.lot", m.seed));
                    let body = render_lot(&m.shrunk, &RenderOptions::default())
                        .unwrap_or_else(|e| format!("-- unrenderable reproducer: {e}\n"));
                    let text = format!(
                        "-- multival fuzz reproducer\n-- seed: {}  check: {}\n-- {}\n{}",
                        m.seed, m.kind, m.detail, body
                    );
                    if std::fs::write(&path, text).is_ok() {
                        m.corpus_path = Some(path);
                    }
                }
            }
        }
    }
    report
}

/// Sweeps one fabric through all four oracles.
fn check_fabric(
    fabric: &Fabric,
    options: &FuzzOptions,
    max_states: usize,
    deadline: Option<Instant>,
) -> SeedOutcome {
    let mut stats = SeedStats::default();
    let analysis = match fabric.validate() {
        Ok(a) => a,
        Err(e) => {
            return SeedOutcome::Mismatch(
                CheckKind::BuilderVsLot,
                format!("generated fabric fails to validate: {e}"),
            )
        }
    };
    let net = multival_models::xmas::compile::network_from_analysis(&analysis);
    let pipe_opts = PipelineOptions {
        equivalence: Equivalence::Branching,
        workers: options.workers,
        max_states: Some(max_states),
        deadline,
        store: options.store,
        ..PipelineOptions::default()
    };

    // Oracle 1: smart pipeline vs monolithic composition.
    let run = run_pipeline(&net, &pipe_opts);
    if !run.complete() {
        return SeedOutcome::Budget;
    }
    stats.states += run.stages.iter().map(|s| s.states_before).sum::<usize>();
    let reduced = canonicalize(&run.lts);
    let reduced_aut = write_aut(&reduced);
    let product_bound: u128 = net
        .components()
        .iter()
        .map(|(_, lts)| lts.num_states() as u128)
        .try_fold(1u128, |acc, n| acc.checked_mul(n))
        .unwrap_or(u128::MAX);
    if product_bound <= MONO_PRODUCT_CAP {
        let mono = monolithic(&net, Equivalence::Branching, options.workers);
        stats.states += mono.product_states;
        if write_aut(&canonicalize(&mono.lts)) != reduced_aut {
            return SeedOutcome::Mismatch(
                CheckKind::PipelineVsMono,
                format!(
                    "pipeline result ({} states) differs from monolithic ({} states)",
                    reduced.num_states(),
                    mono.lts.num_states()
                ),
            );
        }
    } else {
        stats.mono_skipped = true;
    }

    // Oracle 2: rendered `.lot` through the pa frontend.
    let render_opts = RenderOptions { flip_switch: options.inject_flip };
    let rendered = match render_lot(fabric, &render_opts) {
        Ok(src) => Some(src),
        Err(_) if options.inject_flip => {
            // The flipped fabric no longer type-checks (e.g. a dead
            // branch): fall back to the honest render for this seed.
            stats.flip_skipped = true;
            render_lot(fabric, &RenderOptions::default()).ok()
        }
        Err(e) => {
            return SeedOutcome::Mismatch(
                CheckKind::BuilderVsLot,
                format!("validated fabric fails to render: {e}"),
            )
        }
    };
    let Some(rendered) = rendered else {
        return SeedOutcome::Mismatch(
            CheckKind::BuilderVsLot,
            "validated fabric fails to render".to_owned(),
        );
    };
    let spec = match parse_spec(&rendered) {
        Ok(s) => s,
        Err(e) => {
            return SeedOutcome::Mismatch(
                CheckKind::BuilderVsLot,
                format!("rendered model does not parse: {e}"),
            )
        }
    };
    let lot_net = match extract_network(&spec, &ExploreOptions::with_max_states(max_states)) {
        Ok(n) => n,
        Err(e) => {
            return SeedOutcome::Mismatch(
                CheckKind::BuilderVsLot,
                format!("rendered model does not extract: {e}"),
            )
        }
    };
    let lot_run = run_pipeline(&lot_net, &pipe_opts);
    if !lot_run.complete() {
        return SeedOutcome::Budget;
    }
    stats.states += lot_run.stages.iter().map(|s| s.states_before).sum::<usize>();
    if write_aut(&canonicalize(&lot_run.lts)) != reduced_aut {
        return SeedOutcome::Mismatch(
            CheckKind::BuilderVsLot,
            format!(
                "frontend path ({} states) differs from builder path ({} states)",
                lot_run.lts.num_states(),
                reduced.num_states()
            ),
        );
    }

    // Oracle 3: on-the-fly deadlock search vs the divergence-preserving
    // reduction (plain branching may merge a tau-loop with a deadlock, so
    // the reduced side must stay divergence-sensitive).
    let ts = PaTs::new(&spec);
    let search = deadlock_search(&ts, &ReachOptions::with_max_states(max_states));
    if search.stats.truncated {
        return SeedOutcome::Budget;
    }
    stats.states += search.stats.visited;
    let div_opts =
        PipelineOptions { equivalence: Equivalence::BranchingDivergence, ..pipe_opts.clone() };
    let div_run = run_pipeline(&net, &div_opts);
    if !div_run.complete() {
        return SeedOutcome::Budget;
    }
    let reduced_deadlock = deadlock_witness(&div_run.lts).is_some();
    let onthefly_deadlock = search.witness.is_some();
    if reduced_deadlock != onthefly_deadlock {
        return SeedOutcome::Mismatch(
            CheckKind::DeadlockOracle,
            format!(
                "on-the-fly search says deadlock={onthefly_deadlock}, \
                 divergence-preserving reduction says deadlock={reduced_deadlock}"
            ),
        );
    }
    stats.deadlocks = onthefly_deadlock;

    // Oracle 4: scheduler throughput bounds on the reduced model.
    let rates: HashMap<String, f64> = fabric.rates().iter().map(|(k, v)| (k.clone(), *v)).collect();
    let visible = analysis.visible_gates();
    let probes: Vec<&str> =
        visible.iter().map(String::as_str).filter(|g| rates.contains_key(*g)).collect();
    if probes.is_empty() || onthefly_deadlock {
        stats.bounds_skipped = true;
    } else {
        let flow = crate::flow::Flow::from_lts(reduced.clone());
        match flow.with_rates(&rates).solve_bounds(&probes) {
            Ok(solved) => match solved.throughput_bounds() {
                Ok(bounds) => {
                    stats.bounds_checked = true;
                    for (gate, interval) in bounds {
                        if interval.min > interval.max + 1e-9 {
                            return SeedOutcome::Mismatch(
                                CheckKind::Bounds,
                                format!(
                                    "throughput bounds for `{gate}` are inverted: \
                                     [{}, {}]",
                                    interval.min, interval.max
                                ),
                            );
                        }
                    }
                }
                Err(_) => stats.bounds_skipped = true,
            },
            Err(_) => stats.bounds_skipped = true,
        }
    }

    SeedOutcome::Clean(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sweep_over_default_seeds() {
        let options = FuzzOptions { seed_start: 0, seed_end: 12, ..FuzzOptions::default() };
        let report = run_fuzz(&options);
        assert_eq!(report.seeds_run, 12);
        assert!(report.mismatches.is_empty(), "{}", report.render());
        assert!(!report.budget_tripped);
        assert!(report.states_explored > 0);
    }

    #[test]
    fn budget_trip_skips_corpus_write() {
        let dir = std::env::temp_dir().join("multival_fuzz_budget_test");
        let _ = std::fs::remove_dir_all(&dir);
        let options = FuzzOptions {
            seed_start: 0,
            seed_end: 8,
            corpus_dir: Some(dir.clone()),
            budget: Budget::default().with_max_states(8),
            inject_flip: true,
            ..FuzzOptions::default()
        };
        let report = run_fuzz(&options);
        assert!(report.budget_tripped);
        assert!(!dir.exists(), "budget trip must skip the corpus write");
    }

    #[test]
    fn injected_flip_is_caught_and_shrunk() {
        let options = FuzzOptions {
            seed_start: 0,
            seed_end: 64,
            inject_flip: true,
            ..FuzzOptions::default()
        };
        let report = run_fuzz(&options);
        assert!(
            !report.mismatches.is_empty(),
            "the planted switch-polarity bug must be caught:\n{}",
            report.render()
        );
        let smallest =
            report.mismatches.iter().map(|m| m.shrunk.num_prims()).min().expect("nonempty");
        assert!(
            smallest <= 6,
            "expected a reproducer of <= 6 primitives, got {smallest}:\n{}",
            report.render()
        );
        for m in &report.mismatches {
            assert_eq!(m.kind, CheckKind::BuilderVsLot);
            assert!(m.shrunk.validate().is_ok(), "reproducers stay well-typed");
        }
    }
}
