//! Phase-type delay distributions.
//!
//! The Multival flow instantiates delays *compositionally*: a delay is an
//! auxiliary process synchronized with the functional model on the gates
//! marking the start and end of the delay. This module provides the standard
//! phase-type family and, crucially, the Erlang approximation of
//! *fixed-time* delays — the paper's §5 names the resulting space/accuracy
//! trade-off as an open issue, which experiment E7 quantifies.

use crate::imc::{Imc, ImcBuilder};
use multival_ctmc::phfit::{self, FitOptions, PhaseFit};
use multival_ctmc::{Ctmc, CtmcBuilder};
use std::fmt;

/// A phase-type delay distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum Delay {
    /// Exponential with the given rate (mean `1/rate`).
    Exponential {
        /// Rate λ.
        rate: f64,
    },
    /// Erlang: `phases` sequential exponential phases of rate `rate` each
    /// (mean `phases/rate`, squared coefficient of variation `1/phases`).
    Erlang {
        /// Number of phases k ≥ 1.
        phases: u32,
        /// Per-phase rate λ.
        rate: f64,
    },
    /// Hypo-exponential: sequential phases with individual rates.
    HypoExponential {
        /// Per-phase rates, in order.
        rates: Vec<f64>,
    },
    /// Hyper-exponential: probabilistic mixture of exponentials.
    HyperExponential {
        /// `(probability, rate)` branches; probabilities must sum to 1.
        branches: Vec<(f64, f64)>,
    },
    /// A *deterministic* delay of duration `mean`, auto-fitted to an Erlang
    /// chain by [`multival_ctmc::phfit::fit_deterministic`]: the smallest
    /// order k whose sup-CDF error against the unit step (outside the
    /// ±10 %·mean band around the jump) is ≤ `tol`, capped at
    /// [`phfit::DEFAULT_MAX_K`]. Users state the delay and the accuracy they
    /// need instead of hand-picking k — use [`Delay::fit_report`] to see
    /// what the fitter chose and whether the tolerance was met.
    Deterministic {
        /// Duration d of the fixed delay (d > 0).
        mean: f64,
        /// Sup-CDF tolerance the automatic fit must meet (0 < tol < 1).
        tol: f64,
    },
}

impl Delay {
    /// Exponential delay with mean `m`.
    pub fn exponential_with_mean(m: f64) -> Delay {
        Delay::Exponential { rate: 1.0 / m }
    }

    /// The canonical Erlang-k approximation of a *deterministic* delay of
    /// duration `d`: k phases of rate `k/d` (mean d, CV² = 1/k). Larger `k`
    /// is more accurate and costs more states — the space/accuracy
    /// trade-off of the paper's §5.
    ///
    /// # Panics
    ///
    /// Panics if `d <= 0` or `phases == 0`.
    pub fn fixed(d: f64, phases: u32) -> Delay {
        assert!(d > 0.0, "fixed delay must be positive");
        assert!(phases > 0, "need at least one phase");
        Delay::Erlang { phases, rate: phases as f64 / d }
    }

    /// A deterministic delay of duration `d` that auto-fits its Erlang order
    /// to the stated sup-CDF tolerance (see [`Delay::Deterministic`]).
    ///
    /// # Panics
    ///
    /// Panics if `d <= 0` or `tol` is not in `(0, 1)`.
    pub fn deterministic(d: f64, tol: f64) -> Delay {
        assert!(d > 0.0, "fixed delay must be positive");
        assert!(tol > 0.0 && tol < 1.0, "tolerance must be in (0, 1)");
        Delay::Deterministic { mean: d, tol }
    }

    /// Resolves [`Delay::Deterministic`] to the concrete fitted
    /// [`Delay::Erlang`]; every other variant is returned as-is. All
    /// structural operations (`to_ctmc`, `to_imc_process`, decoration)
    /// instantiate the resolved chain.
    ///
    /// # Panics
    ///
    /// Panics if a `Deterministic` delay carries an invalid mean/tolerance
    /// (constructing through [`Delay::deterministic`] rules this out).
    pub fn resolved(&self) -> Delay {
        match self.fit_report() {
            Some(fit) => Delay::Erlang { phases: fit.k as u32, rate: fit.rate },
            None => self.clone(),
        }
    }

    /// The fitter's report for a [`Delay::Deterministic`] delay — chosen
    /// order, per-phase rate, achieved sup-CDF error, and whether the stated
    /// tolerance was met (`false` means the order cap was reached; the cap
    /// fit is still returned and used). `None` for concrete variants.
    pub fn fit_report(&self) -> Option<PhaseFit> {
        match self {
            Delay::Deterministic { mean, tol } => Some(
                phfit::fit_deterministic(*mean, *tol, &FitOptions::default())
                    .expect("deterministic delay carries a valid mean and tolerance"),
            ),
            _ => None,
        }
    }

    /// Fits a phase-type distribution to a target mean and coefficient of
    /// variation by standard moment matching:
    ///
    /// * `cv == 1` → exponential;
    /// * `cv < 1`  → [`phfit::fit_moments`]: pure Erlang-k when `1/cv²` is
    ///   an integer, otherwise a k-phase hypo-exponential matching *both*
    ///   moments exactly;
    /// * `cv > 1`  → two-branch balanced hyper-exponential.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `cv <= 0`.
    pub fn fit_moments(mean: f64, cv: f64) -> Delay {
        assert!(mean > 0.0, "mean must be positive");
        assert!(cv > 0.0, "cv must be positive");
        if (cv - 1.0).abs() < 1e-12 {
            return Delay::Exponential { rate: 1.0 / mean };
        }
        if cv < 1.0 {
            let fit = phfit::fit_moments(mean, cv).expect("validated mean and cv");
            if fit.is_erlang() {
                let k = fit.k();
                return Delay::Erlang { phases: k as u32, rate: k as f64 / mean };
            }
            return Delay::HypoExponential { rates: fit.rates };
        }
        // Balanced two-phase hyper-exponential (p, λ1) / (1-p, λ2) matching
        // the first two moments, with the "balanced means" convention
        // p/λ1 = (1-p)/λ2.
        let cv2 = cv * cv;
        let p = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt());
        let l1 = 2.0 * p / mean;
        let l2 = 2.0 * (1.0 - p) / mean;
        Delay::HyperExponential { branches: vec![(p, l1), (1.0 - p, l2)] }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        match self {
            Delay::Exponential { rate } => 1.0 / rate,
            Delay::Erlang { phases, rate } => *phases as f64 / rate,
            Delay::HypoExponential { rates } => rates.iter().map(|r| 1.0 / r).sum(),
            Delay::HyperExponential { branches } => branches.iter().map(|(p, r)| p / r).sum(),
            // Erlang fits of rate k/mean preserve the mean exactly.
            Delay::Deterministic { mean, .. } => *mean,
        }
    }

    /// Variance of the distribution.
    pub fn variance(&self) -> f64 {
        match self {
            Delay::Exponential { rate } => 1.0 / (rate * rate),
            Delay::Erlang { phases, rate } => *phases as f64 / (rate * rate),
            Delay::HypoExponential { rates } => rates.iter().map(|r| 1.0 / (r * r)).sum(),
            Delay::HyperExponential { branches } => {
                let m = self.mean();
                let second: f64 = branches.iter().map(|(p, r)| 2.0 * p / (r * r)).sum();
                second - m * m
            }
            // The variance of the *instantiated* chain (mean²/k), not the
            // zero variance of the ideal: it is the fitted chain that enters
            // the state space, and honesty about its dispersion is the point.
            Delay::Deterministic { .. } => self.resolved().variance(),
        }
    }

    /// Coefficient of variation (σ/μ). Zero is a deterministic delay; the
    /// Erlang-k approximation achieves `1/√k`.
    pub fn cv(&self) -> f64 {
        self.variance().sqrt() / self.mean()
    }

    /// Number of CTMC phases (states) the delay occupies — the *space* side
    /// of the space/accuracy trade-off.
    pub fn num_phases(&self) -> usize {
        match self {
            Delay::Exponential { .. } => 1,
            Delay::Erlang { phases, .. } => *phases as usize,
            Delay::HypoExponential { rates } => rates.len(),
            Delay::HyperExponential { branches } => branches.len(),
            Delay::Deterministic { .. } => self.fit_report().expect("deterministic variant").k,
        }
    }

    /// The absorbing CTMC of the delay (phases → absorbing state last).
    /// Used to evaluate the CDF numerically via uniformization.
    pub fn to_ctmc(&self) -> Ctmc {
        match self {
            Delay::Exponential { rate } => {
                let mut b = CtmcBuilder::new(2);
                b.rate(0, 1, *rate).expect("validated");
                b.build().expect("nonempty")
            }
            Delay::Erlang { phases, rate } => {
                let k = *phases as usize;
                let mut b = CtmcBuilder::new(k + 1);
                for i in 0..k {
                    b.rate(i, i + 1, *rate).expect("validated");
                }
                b.build().expect("nonempty")
            }
            Delay::HypoExponential { rates } => {
                let k = rates.len();
                let mut b = CtmcBuilder::new(k + 1);
                for (i, &r) in rates.iter().enumerate() {
                    b.rate(i, i + 1, r).expect("validated");
                }
                b.build().expect("nonempty")
            }
            Delay::HyperExponential { branches } => {
                let k = branches.len();
                let mut b = CtmcBuilder::new(k + 1);
                let dist: Vec<(usize, f64)> =
                    branches.iter().enumerate().map(|(i, &(p, _))| (i, p)).collect();
                b.set_initial(dist).expect("probabilities sum to 1");
                for (i, &(_, r)) in branches.iter().enumerate() {
                    b.rate(i, k, r).expect("validated");
                }
                b.build().expect("nonempty")
            }
            Delay::Deterministic { .. } => self.resolved().to_ctmc(),
        }
    }

    /// CDF `P(T ≤ t)`, evaluated by uniformization on [`Delay::to_ctmc`].
    pub fn cdf(&self, t: f64) -> f64 {
        let c = self.to_ctmc();
        let absorbing = c.num_states() - 1;
        multival_ctmc::transient::transient_probability(
            &c,
            &[absorbing],
            t,
            &multival_ctmc::TransientOptions::default(),
        )
        .unwrap_or(0.0)
    }

    /// Supremum distance between this delay's CDF and the step CDF of a
    /// deterministic delay `d` (evaluated on a grid of `samples` points over
    /// `[0, 3d]`) — the *accuracy* side of the space/accuracy trade-off.
    pub fn sup_error_vs_fixed(&self, d: f64, samples: usize) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..=samples {
            let t = 3.0 * d * i as f64 / samples as f64;
            let step = if t >= d { 1.0 } else { 0.0 };
            worst = worst.max((self.cdf(t) - step).abs());
        }
        worst
    }

    /// Like [`Delay::sup_error_vs_fixed`], but excluding a ±`window`·d band
    /// around the jump at `t = d`. The raw sup-distance saturates at 0.5
    /// (any continuous CDF is ~0.5 at the step), so the *far-from-the-jump*
    /// error is the meaningful accuracy figure for the space/accuracy
    /// trade-off table (experiment E7).
    pub fn sup_error_vs_fixed_excluding(&self, d: f64, window: f64, samples: usize) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..=samples {
            let t = 3.0 * d * i as f64 / samples as f64;
            if (t - d).abs() <= window * d {
                continue;
            }
            let step = if t >= d { 1.0 } else { 0.0 };
            worst = worst.max((self.cdf(t) - step).abs());
        }
        worst
    }

    /// The delay as an IMC *delay process*: it waits for `start`, runs its
    /// phases, emits `end`, and loops. Synchronizing this process with a
    /// functional model on `start`/`end` is the paper's compositional delay
    /// instantiation (§4, steps 1–3).
    pub fn to_imc_process(&self, start: &str, end: &str) -> Imc {
        if let Delay::Deterministic { .. } = self {
            return self.resolved().to_imc_process(start, end);
        }
        let mut b = ImcBuilder::new();
        let idle = b.add_state();
        match self {
            Delay::Exponential { rate } => {
                let busy = b.add_state();
                let done = b.add_state();
                b.interactive(idle, start, busy);
                b.markovian(busy, done, *rate).expect("validated");
                b.interactive(done, end, idle);
            }
            Delay::Erlang { phases, rate } => {
                let mut prev = b.add_state();
                b.interactive(idle, start, prev);
                for _ in 0..*phases {
                    let next = b.add_state();
                    b.markovian(prev, next, *rate).expect("validated");
                    prev = next;
                }
                b.interactive(prev, end, idle);
            }
            Delay::HypoExponential { rates } => {
                let mut prev = b.add_state();
                b.interactive(idle, start, prev);
                for &r in rates {
                    let next = b.add_state();
                    b.markovian(prev, next, r).expect("validated");
                    prev = next;
                }
                b.interactive(prev, end, idle);
            }
            Delay::HyperExponential { branches } => {
                // Branch selection is a probabilistic choice; encode it as a
                // race of scaled rates from a single dispatch state, which
                // yields the same mixture: from dispatch, branch i is taken
                // with probability p_i if its dispatch rate is proportional
                // to p_i. We use a two-stage encoding: dispatch rates p_i·Λ
                // (Λ large relative to branch rates would skew the total
                // delay, so instead we fold the dispatch into the branch:
                // exp(p_i·…) is NOT the mixture). The faithful encoding uses
                // an instantaneous probabilistic choice, which IMCs express
                // as a race of τ? τ is nondeterministic, not probabilistic.
                // The standard trick: start gate leads to a dispatch state
                // whose outgoing *Markovian* race with rates r_i' = p_i·R
                // followed by an Erlang correction is involved; for the
                // library we instead expose the mixture exactly through
                // multiple start transitions — the *caller* of a
                // HyperExponential delay should use `to_ctmc` semantics.
                // Here we approximate the mixture by a fast dispatch race:
                // rates p_i·FAST with FAST = 10⁶ × max branch rate, adding
                // a negligible 1/FAST to the mean.
                let fast = 1e6 * branches.iter().map(|&(_, r)| r).fold(1.0, f64::max);
                let dispatch = b.add_state();
                b.interactive(idle, start, dispatch);
                for &(p, r) in branches {
                    let phase = b.add_state();
                    let done = b.add_state();
                    b.markovian(dispatch, phase, p * fast).expect("validated");
                    b.markovian(phase, done, r).expect("validated");
                    b.interactive(done, end, idle);
                }
            }
            Delay::Deterministic { .. } => unreachable!("resolved above"),
        }
        b.build(idle)
    }
}

impl fmt::Display for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Delay::Exponential { rate } => write!(f, "exp({rate})"),
            Delay::Erlang { phases, rate } => write!(f, "erlang({phases}, {rate})"),
            Delay::HypoExponential { rates } => write!(f, "hypo({rates:?})"),
            Delay::HyperExponential { branches } => write!(f, "hyper({branches:?})"),
            Delay::Deterministic { mean, tol } => write!(f, "det({mean}, tol {tol})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_moments() {
        let d = Delay::Erlang { phases: 4, rate: 8.0 };
        assert!((d.mean() - 0.5).abs() < 1e-12);
        assert!((d.variance() - 4.0 / 64.0).abs() < 1e-12);
        assert!((d.cv() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fixed_fit_preserves_mean() {
        for k in [1, 2, 5, 10, 50] {
            let d = Delay::fixed(2.5, k);
            assert!((d.mean() - 2.5).abs() < 1e-12, "k={k}");
            assert!((d.cv() - 1.0 / (k as f64).sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn cv_decreases_with_phases() {
        let mut prev = f64::INFINITY;
        for k in [1, 2, 4, 8, 16] {
            let cv = Delay::fixed(1.0, k).cv();
            assert!(cv < prev);
            prev = cv;
        }
    }

    #[test]
    fn sup_error_decreases_with_phases() {
        let e1 = Delay::fixed(1.0, 1).sup_error_vs_fixed(1.0, 200);
        let e10 = Delay::fixed(1.0, 10).sup_error_vs_fixed(1.0, 200);
        let e50 = Delay::fixed(1.0, 50).sup_error_vs_fixed(1.0, 200);
        assert!(e10 < e1, "{e10} !< {e1}");
        assert!(e50 < e10, "{e50} !< {e10}");
    }

    #[test]
    fn exponential_cdf_analytic() {
        let d = Delay::Exponential { rate: 2.0 };
        for t in [0.1f64, 0.5, 1.0] {
            let want = 1.0 - (-2.0 * t).exp();
            assert!((d.cdf(t) - want).abs() < 1e-8);
        }
    }

    #[test]
    fn hypoexponential_mean_adds() {
        let d = Delay::HypoExponential { rates: vec![1.0, 2.0, 4.0] };
        assert!((d.mean() - 1.75).abs() < 1e-12);
        assert_eq!(d.num_phases(), 3);
    }

    #[test]
    fn hyperexponential_moments() {
        let d = Delay::HyperExponential { branches: vec![(0.5, 1.0), (0.5, 2.0)] };
        assert!((d.mean() - 0.75).abs() < 1e-12);
        // Second moment = 2(0.5/1 + 0.5/4) = 1.25; var = 1.25 - 0.5625.
        assert!((d.variance() - 0.6875).abs() < 1e-12);
        assert!(d.cv() > 1.0, "hyper-exponential is over-dispersed");
    }

    #[test]
    fn delay_process_shape() {
        let imc = Delay::fixed(1.0, 3).to_imc_process("S", "E");
        // idle + entry + 3 phase targets = 5 states; S, E interactive; 3 rates.
        assert_eq!(imc.num_states(), 5);
        assert_eq!(imc.num_interactive(), 2);
        assert_eq!(imc.num_markovian(), 3);
    }

    #[test]
    fn hyper_process_mixture_mean_close() {
        let d = Delay::HyperExponential { branches: vec![(0.3, 1.0), (0.7, 5.0)] };
        let imc = d.to_imc_process("S", "E");
        // Rough check on structure: dispatch + 2 branches (phase+done) + idle.
        assert_eq!(imc.num_states(), 6);
    }

    #[test]
    #[should_panic(expected = "fixed delay must be positive")]
    fn fixed_rejects_nonpositive() {
        let _ = Delay::fixed(0.0, 3);
    }

    #[test]
    fn moment_matching_exact_for_exponential() {
        let d = Delay::fit_moments(2.0, 1.0);
        assert!(matches!(d, Delay::Exponential { .. }));
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert!((d.cv() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moment_matching_low_variability() {
        // cv = 0.5 → Erlang-4 exactly (1/cv² = 4).
        let d = Delay::fit_moments(3.0, 0.5);
        assert!((d.mean() - 3.0).abs() < 1e-12);
        assert!((d.cv() - 0.5).abs() < 1e-12);
        assert_eq!(d.num_phases(), 4);
        // Non-integer 1/cv²: mean still exact, cv approximated from below.
        let d = Delay::fit_moments(1.0, 0.6);
        assert!((d.mean() - 1.0).abs() < 1e-12);
        assert!(d.cv() <= 0.6 + 1e-12);
    }

    #[test]
    fn moment_matching_low_variability_is_exact_hypo() {
        // Non-integer 1/cv² now matches *both* moments via hypo-exponential.
        let d = Delay::fit_moments(1.0, 0.6);
        assert!(matches!(d, Delay::HypoExponential { .. }));
        assert!((d.mean() - 1.0).abs() < 1e-9);
        assert!((d.cv() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn deterministic_resolves_to_erlang_meeting_tolerance() {
        let d = Delay::deterministic(2.0, 0.1);
        let fit = d.fit_report().expect("deterministic delay has a fit");
        assert!(fit.tolerance_met);
        assert!(fit.achieved_error <= 0.1);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        let r = d.resolved();
        assert!(matches!(r, Delay::Erlang { .. }));
        assert_eq!(r.num_phases(), d.num_phases());
        assert!((r.mean() - 2.0).abs() < 1e-9);
        // Variance reports the instantiated chain, not the ideal zero.
        assert!((d.variance() - r.variance()).abs() < 1e-12);
    }

    #[test]
    fn deterministic_tighter_tolerance_needs_more_phases() {
        let loose = Delay::deterministic(1.0, 0.2).num_phases();
        let tight = Delay::deterministic(1.0, 0.05).num_phases();
        assert!(tight > loose, "{tight} !> {loose}");
    }

    #[test]
    fn deterministic_process_matches_resolved_erlang() {
        let d = Delay::deterministic(1.0, 0.15);
        let imc = d.to_imc_process("S", "E");
        assert_eq!(imc.num_markovian(), d.num_phases());
        let c = d.to_ctmc();
        assert_eq!(c.num_states(), d.num_phases() + 1);
    }

    #[test]
    #[should_panic(expected = "tolerance must be in (0, 1)")]
    fn deterministic_rejects_bad_tolerance() {
        let _ = Delay::deterministic(1.0, 1.5);
    }

    #[test]
    fn moment_matching_high_variability_is_exact() {
        for cv in [1.5, 2.0, 4.0] {
            let d = Delay::fit_moments(0.7, cv);
            assert!((d.mean() - 0.7).abs() < 1e-9, "cv={cv}: mean {}", d.mean());
            assert!((d.cv() - cv).abs() < 1e-9, "cv={cv}: got {}", d.cv());
        }
    }
}
