//! Compositional operators on IMCs: parallel composition, hiding, and the
//! maximal-progress cut.
//!
//! Semantics (Hermanns, LNCS 2428):
//! * interactive transitions compose exactly like LTS transitions
//!   (synchronize on the gate set, τ free, δ joint);
//! * Markovian transitions always *interleave* — the exponential
//!   distribution is memoryless, so racing delays need no synchronization;
//! * *maximal progress*: internal τ transitions take priority over Markovian
//!   delays, so a state with an outgoing τ never lets time pass.

use crate::imc::{Imc, ImcBuilder, State};
use multival_lts::label::gate_of;
use multival_lts::ops::Sync;
use std::collections::{HashMap, HashSet, VecDeque};

/// Parallel composition of two IMCs over a synchronization discipline
/// (reachable product only).
///
/// # Examples
///
/// ```
/// use multival_imc::{ImcBuilder, ops::compose};
/// use multival_lts::ops::Sync;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A delay process gating an action of a functional process.
/// let mut f = ImcBuilder::new();
/// let (f0, f1) = (f.add_state(), f.add_state());
/// f.interactive(f0, "WORK", f1);
/// let f = f.build(f0);
///
/// let mut d = ImcBuilder::new();
/// let (d0, d1) = (d.add_state(), d.add_state());
/// d.markovian(d0, d1, 3.0)?;
/// d.interactive(d1, "WORK", d0);
/// let d = d.build(d0);
///
/// let sys = compose(&f, &d, &Sync::on(["WORK"]));
/// assert_eq!(sys.num_states(), 4);
/// assert_eq!(sys.num_interactive(), 1); // WORK fires jointly once
/// assert_eq!(sys.num_markovian(), 2);   // the delay ticks independently
/// # Ok(())
/// # }
/// ```
pub fn compose(left: &Imc, right: &Imc, sync: &Sync) -> Imc {
    let mut b = ImcBuilder::new();
    let mut index: HashMap<(State, State), State> = HashMap::new();
    let mut queue: VecDeque<(State, State)> = VecDeque::new();

    let init = (left.initial(), right.initial());
    let init_id = b.add_state();
    index.insert(init, init_id);
    queue.push_back(init);

    let left_sync: Vec<bool> = left
        .labels()
        .iter()
        .map(|(id, name)| {
            !id.is_tau() && (gate_of(name) == "exit" || sync_matches(sync, gate_of(name)))
        })
        .collect();
    let right_sync: Vec<bool> = right
        .labels()
        .iter()
        .map(|(id, name)| {
            !id.is_tau() && (gate_of(name) == "exit" || sync_matches(sync, gate_of(name)))
        })
        .collect();

    while let Some((ls, rs)) = queue.pop_front() {
        let src = index[&(ls, rs)];
        macro_rules! state_of {
            ($target:expr) => {{
                let target = $target;
                match index.get(&target) {
                    Some(&d) => d,
                    None => {
                        let d = b.add_state();
                        index.insert(target, d);
                        queue.push_back(target);
                        d
                    }
                }
            }};
        }
        // Markovian transitions interleave unconditionally.
        for m in left.markovian_from(ls) {
            let dst = state_of!((m.target, rs));
            b.markovian(src, dst, m.rate).expect("validated rate");
        }
        for m in right.markovian_from(rs) {
            let dst = state_of!((ls, m.target));
            b.markovian(src, dst, m.rate).expect("validated rate");
        }
        // Independent interactive moves.
        for t in left.interactive_from(ls) {
            if !left_sync[t.label.index()] {
                let dst = state_of!((t.target, rs));
                let name = left.labels().name(t.label).to_owned();
                b.interactive(src, &name, dst);
            }
        }
        for t in right.interactive_from(rs) {
            if !right_sync[t.label.index()] {
                let dst = state_of!((ls, t.target));
                let name = right.labels().name(t.label).to_owned();
                b.interactive(src, &name, dst);
            }
        }
        // Synchronized interactive moves (identical full labels).
        for lt in left.interactive_from(ls) {
            if !left_sync[lt.label.index()] {
                continue;
            }
            let lname = left.labels().name(lt.label);
            for rt in right.interactive_from(rs) {
                if right_sync[rt.label.index()] && right.labels().name(rt.label) == lname {
                    let dst = state_of!((lt.target, rt.target));
                    let name = lname.to_owned();
                    b.interactive(src, &name, dst);
                }
            }
        }
    }
    b.build(init_id)
}

fn sync_matches(sync: &Sync, gate: &str) -> bool {
    match sync {
        Sync::Interleave => false,
        Sync::Gates(set) => set.contains(gate),
        Sync::Full => true,
    }
}

/// N-ary fold of [`compose`].
///
/// # Panics
///
/// Panics if `parts` is empty.
pub fn compose_all(parts: &[&Imc], sync: &Sync) -> Imc {
    assert!(!parts.is_empty(), "compose_all needs at least one IMC");
    let mut acc = parts[0].clone();
    for p in &parts[1..] {
        acc = compose(&acc, p, sync);
    }
    acc
}

/// Hides all labels whose gate is in `gates` (they become τ).
pub fn hide<I, S>(imc: &Imc, gates: I) -> Imc
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let set: HashSet<String> = gates.into_iter().map(Into::into).collect();
    relabel(imc, |name| if set.contains(gate_of(name)) { None } else { Some(name.to_owned()) })
}

/// Hides *every* visible label (the final step before CTMC conversion).
pub fn hide_all(imc: &Imc) -> Imc {
    relabel(imc, |_| None)
}

/// Applies `f` to every interactive label name; `None` hides (τ).
pub fn relabel(imc: &Imc, mut f: impl FnMut(&str) -> Option<String>) -> Imc {
    let mut b = ImcBuilder::new();
    for _ in 0..imc.num_states() {
        b.add_state();
    }
    for s in 0..imc.num_states() as State {
        for t in imc.interactive_from(s) {
            let name = if t.label.is_tau() { None } else { f(imc.labels().name(t.label)) };
            match name {
                Some(n) => b.interactive(s, &n, t.target),
                None => b.interactive(s, "i", t.target),
            }
        }
        for m in imc.markovian_from(s) {
            b.markovian(s, m.target, m.rate).expect("validated rate");
        }
    }
    b.build(imc.initial())
}

/// Applies the *maximal progress* cut: states with an outgoing τ lose their
/// Markovian transitions (internal actions are instantaneous, so the
/// exponential race can never be won in such states).
pub fn maximal_progress(imc: &Imc) -> Imc {
    let mut b = ImcBuilder::new();
    for _ in 0..imc.num_states() {
        b.add_state();
    }
    for s in 0..imc.num_states() as State {
        let unstable = imc.has_tau(s);
        for t in imc.interactive_from(s) {
            let name = imc.labels().name(t.label).to_owned();
            b.interactive(s, &name, t.target);
        }
        if !unstable {
            for m in imc.markovian_from(s) {
                b.markovian(s, m.target, m.rate).expect("validated rate");
            }
        }
    }
    b.build(imc.initial()).reachable()
}

/// Compresses *deterministic* τ chains: a state whose entire behaviour is a
/// single τ transition (no Markovian, no other interactive) is semantically
/// transparent — every transition into it is redirected to its successor.
/// A cheap, always-sound pre-reduction before composition or lumping (it
/// implements the trivial cases of weak IMC equivalence; cycles of
/// deterministic τs are left untouched and surface later as timelocks).
pub fn compress_deterministic_tau(imc: &Imc) -> Imc {
    let n = imc.num_states();
    let is_transparent = |s: State| -> bool {
        let inter = imc.interactive_from(s);
        inter.len() == 1
            && inter[0].label.is_tau()
            && inter[0].target != s
            && imc.markovian_from(s).is_empty()
    };
    // Follow chains with cycle protection.
    let mut forward: Vec<State> = (0..n as State).collect();
    for s in 0..n as State {
        let mut seen = vec![s];
        let mut cur = s;
        while is_transparent(cur) {
            let next = imc.interactive_from(cur)[0].target;
            if seen.contains(&next) {
                break; // τ-cycle: leave as-is (timelock diagnosis later)
            }
            seen.push(next);
            cur = next;
        }
        forward[s as usize] = cur;
    }
    let mut b = ImcBuilder::new();
    for _ in 0..n {
        b.add_state();
    }
    for s in 0..n as State {
        if forward[s as usize] != s && is_transparent(s) {
            continue; // dropped: everything is redirected past it
        }
        for t in imc.interactive_from(s) {
            let name = imc.labels().name(t.label).to_owned();
            b.interactive(s, &name, forward[t.target as usize]);
        }
        for m in imc.markovian_from(s) {
            b.markovian(s, forward[m.target as usize], m.rate).expect("validated rate");
        }
    }
    b.build(forward[imc.initial() as usize]).reachable()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delay_then_act(rate: f64, act: &str) -> Imc {
        let mut b = ImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.markovian(s0, s1, rate).unwrap();
        b.interactive(s1, act, s0);
        b.build(s0)
    }

    #[test]
    fn markovian_interleaving_races() {
        // Two independent delays race: product has 4 states, 4 rate
        // transitions from corners (2 from initial).
        let a = delay_then_act(1.0, "A");
        let b = delay_then_act(2.0, "B");
        let c = compose(&a, &b, &Sync::Interleave);
        assert_eq!(c.num_states(), 4);
        assert_eq!(c.markovian_from(c.initial()).len(), 2);
    }

    #[test]
    fn interactive_sync_on_shared_gate() {
        let a = delay_then_act(1.0, "GO");
        let b = delay_then_act(2.0, "GO");
        let c = compose(&a, &b, &Sync::on(["GO"]));
        // GO fires only when both are ready: states (00,10,01,11) = 4,
        // GO joint from (1,1) back to (0,0).
        assert_eq!(c.num_states(), 4);
        assert_eq!(c.num_interactive(), 1);
    }

    #[test]
    fn hide_turns_labels_tau() {
        let a = delay_then_act(1.0, "GO");
        let h = hide(&a, ["GO"]);
        assert!(!h.has_visible());
        assert_eq!(h.num_interactive(), 1);
    }

    #[test]
    fn hide_all_clears_everything() {
        let mut b = ImcBuilder::new();
        let s = b.add_state();
        b.interactive(s, "X !1", s);
        b.interactive(s, "Y", s);
        let h = hide_all(&b.build(s));
        assert!(!h.has_visible());
    }

    #[test]
    fn maximal_progress_cuts_rates_under_tau() {
        let mut b = ImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.interactive(s0, "i", s1);
        b.markovian(s0, s2, 5.0).unwrap(); // must be cut: τ available
        b.markovian(s1, s2, 1.0).unwrap(); // survives: s1 stable
        let m = maximal_progress(&b.build(s0));
        assert_eq!(m.markovian_from(0).len(), 0);
        assert_eq!(m.num_markovian(), 1);
    }

    #[test]
    fn maximal_progress_keeps_rates_under_visible_actions() {
        // Visible actions do NOT trigger maximal progress (the environment
        // may refuse them), only internal τ does.
        let mut b = ImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.interactive(s0, "VISIBLE", s1);
        b.markovian(s0, s1, 5.0).unwrap();
        let m = maximal_progress(&b.build(s0));
        assert_eq!(m.num_markovian(), 1);
    }

    #[test]
    fn tau_compression_drops_transparent_states() {
        // 0 -λ-> 1 -τ-> 2 -τ-> 3 -A-> 0: states 1 and 2 are transparent.
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 1.0).unwrap();
        b.interactive(s[1], "i", s[2]);
        b.interactive(s[2], "i", s[3]);
        b.interactive(s[3], "A", s[0]);
        let c = compress_deterministic_tau(&b.build(s[0]));
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.num_interactive(), 1);
        assert_eq!(c.num_markovian(), 1);
    }

    #[test]
    fn tau_compression_keeps_nondeterminism_and_cycles() {
        // Branching τ (nondeterministic) and τ-cycles must survive.
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..5).map(|_| b.add_state()).collect();
        b.interactive(s[0], "i", s[1]);
        b.interactive(s[0], "i", s[2]); // 0 is NOT transparent (2 choices)
        b.interactive(s[1], "A", s[0]);
        b.interactive(s[2], "B", s[0]);
        b.interactive(s[3], "i", s[4]); // unreachable τ-cycle
        b.interactive(s[4], "i", s[3]);
        let c = compress_deterministic_tau(&b.build(s[0]));
        assert_eq!(c.num_states(), 3, "branching τ kept, cycle unreachable");
        assert_eq!(c.num_interactive(), 4);
    }

    #[test]
    fn tau_compression_moves_initial_forward() {
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.interactive(s[0], "i", s[1]);
        b.markovian(s[1], s[2], 2.0).unwrap();
        let c = compress_deterministic_tau(&b.build(s[0]));
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.markovian_from(c.initial()).len(), 1);
    }

    #[test]
    fn tau_compression_preserves_ctmc_measures() {
        use crate::to_ctmc::{to_ctmc, NondetPolicy};
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 2.0).unwrap();
        b.interactive(s[1], "i", s[2]);
        b.markovian(s[2], s[3], 1.0).unwrap();
        b.interactive(s[3], "i", s[0]);
        let imc = b.build(s[0]);
        let direct = to_ctmc(&imc, NondetPolicy::Reject, &[]).expect("direct");
        let compressed = to_ctmc(&compress_deterministic_tau(&imc), NondetPolicy::Reject, &[])
            .expect("compressed");
        let pi_a = multival_ctmc::steady::steady_state(
            &direct.ctmc,
            &multival_ctmc::SolveOptions::default(),
        )
        .expect("solves");
        let pi_b = multival_ctmc::steady::steady_state(
            &compressed.ctmc,
            &multival_ctmc::SolveOptions::default(),
        )
        .expect("solves");
        assert_eq!(pi_a.len(), pi_b.len());
        for (a, b) in pi_a.iter().zip(&pi_b) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn compose_all_folds() {
        let parts: Vec<Imc> = (1..=3).map(|i| delay_then_act(i as f64, "GO")).collect();
        let refs: Vec<&Imc> = parts.iter().collect();
        let c = compose_all(&refs, &Sync::on(["GO"]));
        assert_eq!(c.num_states(), 8);
        assert_eq!(c.num_interactive(), 1);
    }
}
