//! Compositional IMC generation: alternate parallel composition and
//! stochastic minimization (the paper's §4 flow), keeping intermediate
//! state spaces small.
//!
//! Experiment E9 uses [`compose_minimize`] with lumping on and off to
//! quantify how much the intermediate minimization buys.

use crate::imc::Imc;
use crate::lump::{lump, LumpOptions, LumpStats};
use crate::ops::{compose, hide};
use multival_lts::ops::Sync;

/// One component of a compositional build, with the synchronization
/// discipline used when it is composed onto the accumulated product —
/// mirroring how LOTOS writes `A |[g1]| B |[g2]| C` with per-operator gate
/// sets. (A single global gate set would block gates whose partner has not
/// been folded in yet.)
#[derive(Debug, Clone)]
pub struct Component {
    /// Display name (for stage statistics).
    pub name: String,
    /// The component IMC.
    pub imc: Imc,
    /// Gates to synchronize with the product built so far (ignored for the
    /// first component).
    pub sync: Sync,
}

impl Component {
    /// Creates a named component synchronized on the given gates.
    pub fn new<I, S>(name: &str, imc: Imc, sync_gates: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Component { name: name.to_owned(), imc, sync: Sync::on(sync_gates) }
    }

    /// Creates a named component with an explicit discipline.
    pub fn with_sync(name: &str, imc: Imc, sync: Sync) -> Self {
        Component { name: name.to_owned(), imc, sync }
    }
}

/// Statistics of one composition stage.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// Human-readable description (`"A || B"`).
    pub stage: String,
    /// Product size before minimization.
    pub states_before: usize,
    /// Size after minimization (equals `states_before` when lumping is off).
    pub states_after: usize,
    /// Lumping details, when performed.
    pub lump: Option<LumpStats>,
}

/// Options for the compositional pipeline.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Hide these gates after each composition (internalized interfaces),
    /// enabling further reduction.
    pub hide_after: Vec<String>,
    /// Minimize after every composition step.
    pub minimize: bool,
    /// Lumping tolerances.
    pub lump: LumpOptions,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions { hide_after: Vec::new(), minimize: true, lump: LumpOptions::default() }
    }
}

/// Left-fold composition of `components` (each with its own sync set) with
/// optional per-stage lumping. Returns the final IMC and per-stage
/// statistics.
///
/// # Panics
///
/// Panics if `components` is empty.
///
/// # Examples
///
/// ```
/// use multival_imc::{ImcBuilder, compositional::{compose_minimize, Component, PipelineOptions}};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mk = |rate: f64| {
///     let mut b = ImcBuilder::new();
///     let (s0, s1) = (b.add_state(), b.add_state());
///     b.markovian(s0, s1, rate).unwrap();
///     b.interactive(s1, "SYNC", s0);
///     b.build(s0)
/// };
/// let comps = vec![
///     Component::new("a", mk(1.0), ["SYNC"]),
///     Component::new("b", mk(1.0), ["SYNC"]),
/// ];
/// let (imc, stages) = compose_minimize(&comps, &PipelineOptions::default());
/// assert_eq!(stages.len(), 2); // initial lump + one composition stage
/// assert!(imc.num_states() <= 4);
/// # Ok(())
/// # }
/// ```
pub fn compose_minimize(
    components: &[Component],
    options: &PipelineOptions,
) -> (Imc, Vec<StageStats>) {
    assert!(!components.is_empty(), "compose_minimize needs at least one component");
    let mut stats = Vec::new();
    let mut acc = components[0].imc.clone();
    let mut acc_name = components[0].name.clone();
    // The initial stage is recorded whether or not minimization is on:
    // `peak_states` uses an *inclusive* peak, and with minimization off the
    // first component can be the largest intermediate of the whole run.
    if options.minimize {
        let (m, ls) = lump(&acc, &options.lump);
        stats.push(StageStats {
            stage: acc_name.clone(),
            states_before: ls.states_before,
            states_after: ls.states_after,
            lump: Some(ls),
        });
        acc = m;
    } else {
        stats.push(StageStats {
            stage: acc_name.clone(),
            states_before: acc.num_states(),
            states_after: acc.num_states(),
            lump: None,
        });
    }
    for c in &components[1..] {
        let product = compose(&acc, &c.imc, &c.sync);
        let product = if options.hide_after.is_empty() {
            product
        } else {
            hide(&product, options.hide_after.iter().cloned())
        };
        let before = product.num_states();
        let stage_name = format!("{acc_name} || {}", c.name);
        if options.minimize {
            let (m, ls) = lump(&product, &options.lump);
            stats.push(StageStats {
                stage: stage_name.clone(),
                states_before: before,
                states_after: m.num_states(),
                lump: Some(ls),
            });
            acc = m;
        } else {
            stats.push(StageStats {
                stage: stage_name.clone(),
                states_before: before,
                states_after: before,
                lump: None,
            });
            acc = product;
        }
        acc_name = stage_name;
    }
    (acc, stats)
}

/// Peak intermediate state count of a pipeline run — the quantity that
/// compositional minimization is designed to keep small.
///
/// The peak is *inclusive*: it counts the pre-minimization product of
/// every stage (matching the inclusive-cap convention of the exploration
/// budgets) as well as each stage's result, so a run whose largest state
/// space was an un-minimized intermediate reports that intermediate.
pub fn peak_states(stages: &[StageStats]) -> usize {
    stages.iter().map(|s| s.states_before.max(s.states_after)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imc::ImcBuilder;

    fn server(rate: f64) -> Imc {
        let mut b = ImcBuilder::new();
        let (s0, s1) = (b.add_state(), b.add_state());
        b.markovian(s0, s1, rate).unwrap();
        b.interactive(s1, "SYNC", s0);
        b.build(s0)
    }

    #[test]
    fn pipeline_with_lumping_is_smaller_or_equal() {
        let comps: Vec<Component> =
            (0..4).map(|i| Component::new(&format!("c{i}"), server(1.0), ["SYNC"])).collect();
        let opts_on = PipelineOptions::default();
        let opts_off = PipelineOptions { minimize: false, ..Default::default() };
        let (on, stages_on) = compose_minimize(&comps, &opts_on);
        let (off, stages_off) = compose_minimize(&comps, &opts_off);
        assert!(peak_states(&stages_on) <= peak_states(&stages_off));
        assert!(on.num_states() <= off.num_states());
        // Symmetric servers lump aggressively: the composed behaviour only
        // tracks how many are ready, not which.
        assert!(on.num_states() < off.num_states());
    }

    #[test]
    fn stage_stats_report_every_step() {
        let comps: Vec<Component> =
            (0..3).map(|i| Component::new(&format!("c{i}"), server(2.0), ["SYNC"])).collect();
        let (_, stages) = compose_minimize(&comps, &PipelineOptions::default());
        // Initial minimize + 2 composition stages.
        assert_eq!(stages.len(), 3);
        assert!(stages[1].stage.contains("||"));
    }

    #[test]
    fn hide_after_enables_tau_elimination_later() {
        let comps: Vec<Component> =
            (0..2).map(|i| Component::new(&format!("c{i}"), server(1.0), ["SYNC"])).collect();
        let opts = PipelineOptions { hide_after: vec!["SYNC".to_owned()], ..Default::default() };
        let (imc, _) = compose_minimize(&comps, &opts);
        assert!(!imc.has_visible());
    }

    #[test]
    fn peak_is_inclusive_of_the_initial_component() {
        // Regression: with minimization off, the first component used to be
        // absent from the stage stats, so a pipeline whose *largest* state
        // space was component 0 under-reported its peak. Craft a network
        // where the big component sits first and every later product is
        // smaller than it.
        let big = {
            let mut b = ImcBuilder::new();
            let states: Vec<_> = (0..12).map(|_| b.add_state()).collect();
            for w in states.windows(2) {
                b.interactive(w[0], "step", w[1]);
            }
            b.interactive(states[11], "SYNC", states[0]);
            b.build(states[0])
        };
        // `small` blocks SYNC forever, so the product collapses onto the
        // big component's chain: 12 · 1 = 12 states, never larger.
        let small = {
            let mut b = ImcBuilder::new();
            let s0 = b.add_state();
            b.build(s0)
        };
        let comps = vec![
            Component::new("big", big, [] as [&str; 0]),
            Component::new("s1", small.clone(), ["SYNC"]),
            Component::new("s2", small, ["SYNC"]),
        ];
        let (_, stages) =
            compose_minimize(&comps, &PipelineOptions { minimize: false, ..Default::default() });
        assert_eq!(stages.len(), 3, "the initial component must be a recorded stage");
        assert_eq!(stages[0].stage, "big");
        assert_eq!(
            peak_states(&stages),
            12,
            "the inclusive peak must count the un-minimized first component"
        );
    }

    #[test]
    fn per_stage_sync_lets_late_partners_join() {
        // Tandem a --h1--> b --h2--> c: h2 must not be blocked while only
        // a||b exist. With per-stage sync this works out of the box.
        let mk_fwd = |inp: &str, outp: &str| {
            let mut b = ImcBuilder::new();
            let s0 = b.add_state();
            let s1 = b.add_state();
            b.interactive(s0, inp, s1);
            b.interactive(s1, outp, s0);
            b.build(s0)
        };
        let src = {
            let mut b = ImcBuilder::new();
            let s0 = b.add_state();
            let s1 = b.add_state();
            b.markovian(s0, s1, 1.0).unwrap();
            b.interactive(s1, "h1", s0);
            b.build(s0)
        };
        let comps = vec![
            Component::new("src", src, [] as [&str; 0]),
            Component::new("fwd1", mk_fwd("h1", "h2"), ["h1"]),
            Component::new("fwd2", mk_fwd("h2", "h3"), ["h2"]),
        ];
        let (imc, _) =
            compose_minimize(&comps, &PipelineOptions { minimize: false, ..Default::default() });
        // h3 must be reachable.
        let lts = imc.to_lts();
        let h3 = multival_lts::analysis::find_action(&lts, |l| l == "h3");
        assert!(h3.is_some(), "late-joined partner must not be blocked");
    }
}
