//! IMC → CTMC transformation ("the decorated model … is then transformed
//! into a Markov chain", §4 of the paper).
//!
//! After hiding all visible actions and applying maximal progress, internal
//! (τ or *probe*) transitions are instantaneous: states offering them are
//! *vanishing* and are eliminated by computing their absorption
//! distributions into *tangible* states — exactly like vanishing-marking
//! elimination in GSPNs.
//!
//! Nondeterministic internal choice (the paper's §5 open issue) is handled
//! by an explicit [`NondetPolicy`]:
//! * [`NondetPolicy::Reject`] mirrors CADP's solvers, which "currently do
//!   not accept" nondeterminism — conversion fails with a diagnostic;
//! * [`NondetPolicy::Uniform`] resolves internal choices uniformly (a
//!   specific randomized scheduler);
//! * for *bounds over all schedulers*, use [`to_ctmdp`] and the
//!   `multival-ctmc` value-iteration solvers.
//!
//! *Probes* are visible labels that should survive into the chain for
//! throughput measurement: they are treated exactly like τ for timing
//! purposes, but every traversal is counted, yielding per-state label flow
//! rates for [`probe_throughputs`].

use crate::imc::{Imc, State};
use multival_ctmc::{ActionChoice, Ctmc, CtmcBuilder, Ctmdp};
use std::collections::HashMap;
use std::fmt;

/// How to treat internal nondeterminism during conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NondetPolicy {
    /// Fail on any state with more than one internal successor (the
    /// behaviour of CADP's Markov solvers at the time of the paper).
    Reject,
    /// Resolve internal choices uniformly at random.
    Uniform,
}

/// Error during IMC → CTMC conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum ToCtmcError {
    /// Visible labels remain: hide them (or list them as probes) first.
    VisibleLabels(Vec<String>),
    /// Internal nondeterminism under [`NondetPolicy::Reject`].
    Nondeterministic {
        /// The offending state.
        state: State,
        /// Number of distinct internal successors.
        choices: usize,
    },
    /// A τ-cycle with no Markovian escape: time cannot progress (the
    /// probabilistic counterpart of a livelock).
    Timelock {
        /// A state on the divergent τ-cycle.
        state: State,
    },
    /// A numeric stage failed.
    Numeric(String),
}

impl fmt::Display for ToCtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToCtmcError::VisibleLabels(ls) => {
                write!(f, "IMC still has visible labels: {}", ls.join(", "))
            }
            ToCtmcError::Nondeterministic { state, choices } => write!(
                f,
                "internal nondeterminism at state {state} ({choices} choices); \
                 CADP-style solvers reject this — use NondetPolicy::Uniform or to_ctmdp"
            ),
            ToCtmcError::Timelock { state } => {
                write!(f, "τ-cycle without Markovian escape at state {state} (timelock)")
            }
            ToCtmcError::Numeric(m) => write!(f, "numeric failure: {m}"),
        }
    }
}

impl std::error::Error for ToCtmcError {}

/// The result of a successful conversion.
#[derive(Debug, Clone)]
pub struct CtmcConversion {
    /// The resulting chain over tangible states.
    pub ctmc: Ctmc,
    /// For each IMC state, its CTMC state (tangible states only).
    pub state_map: Vec<Option<usize>>,
    /// `probe_flow[p][c]` = expected number of probe-`p` crossings per unit
    /// time contributed while the chain resides in CTMC state `c`, *per unit
    /// rate already weighted* — multiply by the steady-state distribution and
    /// sum to get throughputs (see [`probe_throughputs`]).
    pub probe_flow: Vec<(String, Vec<f64>)>,
}

/// Converts a closed IMC (all interactive transitions τ or listed in
/// `probes`) into a CTMC.
///
/// # Errors
///
/// See [`ToCtmcError`].
///
/// # Examples
///
/// ```
/// use multival_imc::{ImcBuilder, to_ctmc::{to_ctmc, NondetPolicy}};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ImcBuilder::new();
/// let s0 = b.add_state();
/// let s1 = b.add_state();
/// let s2 = b.add_state();
/// b.markovian(s0, s1, 2.0)?;
/// b.interactive(s1, "i", s2);   // vanishing state
/// b.markovian(s2, s0, 1.0)?;
/// let conv = to_ctmc(&b.build(s0), NondetPolicy::Reject, &[])?;
/// assert_eq!(conv.ctmc.num_states(), 2); // s1 eliminated
/// # Ok(())
/// # }
/// ```
pub fn to_ctmc(
    imc: &Imc,
    policy: NondetPolicy,
    probes: &[&str],
) -> Result<CtmcConversion, ToCtmcError> {
    let n = imc.num_states();
    let is_probe = |name: &str| probes.contains(&name);

    // Check that every interactive label is internal (τ or probe).
    {
        let mut offending: Vec<String> =
            imc.visible_labels().into_iter().filter(|l| !is_probe(l)).collect();
        offending.dedup();
        if !offending.is_empty() {
            return Err(ToCtmcError::VisibleLabels(offending));
        }
    }

    // Internal successor sets (dedup'd), per state; probe crossings noted.
    // internal[s] = list of (probe index or none, target).
    let probe_index: HashMap<String, usize> =
        probes.iter().enumerate().map(|(i, p)| (p.to_string(), i)).collect();
    let mut internal: Vec<Vec<(Option<usize>, State)>> = vec![Vec::new(); n];
    for s in 0..n as State {
        let mut seen = std::collections::HashSet::new();
        for t in imc.interactive_from(s) {
            let p =
                if t.label.is_tau() { None } else { Some(probe_index[imc.labels().name(t.label)]) };
            if seen.insert((p, t.target)) {
                internal[s as usize].push((p, t.target));
            }
        }
    }

    let vanishing: Vec<bool> = (0..n).map(|s| !internal[s].is_empty()).collect();
    if policy == NondetPolicy::Reject {
        for (s, succ) in internal.iter().enumerate() {
            if succ.len() > 1 {
                return Err(ToCtmcError::Nondeterministic {
                    state: s as State,
                    choices: succ.len(),
                });
            }
        }
    }

    // Absorption of vanishing states into tangible states + expected probe
    // crossings, by Gauss–Seidel over sparse maps.
    // A[v]: map tangible -> probability; C[v]: crossings per probe.
    let mut absorb: Vec<HashMap<State, f64>> = vec![HashMap::new(); n];
    let mut crossings: Vec<Vec<f64>> = vec![vec![0.0; probes.len()]; n];
    {
        let vanishing_states: Vec<usize> = (0..n).filter(|&s| vanishing[s]).collect();
        let max_iter = 100_000;
        let tol = 1e-12;
        let mut iter = 0;
        loop {
            iter += 1;
            let mut delta: f64 = 0.0;
            for &v in &vanishing_states {
                let k = internal[v].len() as f64;
                let mut new_a: HashMap<State, f64> = HashMap::new();
                let mut new_c = vec![0.0; probes.len()];
                for &(p, w) in &internal[v] {
                    let weight = 1.0 / k;
                    if let Some(pi) = p {
                        new_c[pi] += weight;
                    }
                    if vanishing[w as usize] {
                        for (&u, &q) in &absorb[w as usize] {
                            *new_a.entry(u).or_insert(0.0) += weight * q;
                        }
                        for (pi, &c) in crossings[w as usize].iter().enumerate() {
                            new_c[pi] += weight * c;
                        }
                    } else {
                        *new_a.entry(w).or_insert(0.0) += weight;
                    }
                }
                // Convergence tracking on total absorbed mass and crossings.
                let old_mass: f64 = absorb[v].values().sum();
                let new_mass: f64 = new_a.values().sum();
                delta = delta.max((new_mass - old_mass).abs());
                for (o, nw) in crossings[v].iter().zip(&new_c) {
                    delta = delta.max((nw - o).abs());
                }
                absorb[v] = new_a;
                crossings[v] = new_c;
            }
            if delta < tol {
                break;
            }
            if iter > max_iter {
                return Err(ToCtmcError::Numeric(format!(
                    "vanishing-state elimination did not converge (residual {delta:.3e})"
                )));
            }
        }
        // Timelock check: every vanishing state must absorb with mass ~1.
        for &v in &vanishing_states {
            let mass: f64 = absorb[v].values().sum();
            if mass < 1.0 - 1e-6 {
                return Err(ToCtmcError::Timelock { state: v as State });
            }
        }
    }

    // Enumerate tangible states.
    let mut state_map: Vec<Option<usize>> = vec![None; n];
    let mut tangible: Vec<State> = Vec::new();
    for s in 0..n {
        if !vanishing[s] {
            state_map[s] = Some(tangible.len());
            tangible.push(s as State);
        }
    }
    if tangible.is_empty() {
        return Err(ToCtmcError::Timelock { state: imc.initial() });
    }

    let mut builder = CtmcBuilder::new(tangible.len());
    let mut probe_flow: Vec<Vec<f64>> = vec![vec![0.0; tangible.len()]; probes.len()];
    for (ci, &s) in tangible.iter().enumerate() {
        for m in imc.markovian_from(s) {
            let t = m.target;
            if !vanishing[t as usize] {
                builder
                    .rate(ci, state_map[t as usize].expect("tangible"), m.rate)
                    .map_err(|e| ToCtmcError::Numeric(e.to_string()))?;
            } else {
                for (&u, &q) in &absorb[t as usize] {
                    let r = m.rate * q;
                    if r > 0.0 {
                        builder
                            .rate(ci, state_map[u as usize].expect("tangible"), r)
                            .map_err(|e| ToCtmcError::Numeric(e.to_string()))?;
                    }
                }
                for (pi, &c) in crossings[t as usize].iter().enumerate() {
                    probe_flow[pi][ci] += m.rate * c;
                }
            }
        }
    }

    // Initial distribution: the IMC initial state, redistributed if
    // vanishing.
    let init = imc.initial();
    let dist: Vec<(usize, f64)> = if vanishing[init as usize] {
        absorb[init as usize]
            .iter()
            .map(|(&u, &q)| (state_map[u as usize].expect("tangible"), q))
            .collect()
    } else {
        vec![(state_map[init as usize].expect("tangible"), 1.0)]
    };
    builder.set_initial(dist).map_err(|e| ToCtmcError::Numeric(e.to_string()))?;

    Ok(CtmcConversion {
        ctmc: builder.build().map_err(|e| ToCtmcError::Numeric(e.to_string()))?,
        state_map,
        probe_flow: probes.iter().map(|p| p.to_string()).zip(probe_flow).collect(),
    })
}

/// Steady-state throughput of each probe label: Σ_c π(c) · flow(c).
///
/// # Errors
///
/// Propagates solver errors from the steady-state computation.
pub fn probe_throughputs(
    conv: &CtmcConversion,
    options: &multival_ctmc::SolveOptions,
) -> Result<Vec<(String, f64)>, multival_ctmc::CtmcError> {
    let pi = multival_ctmc::steady::steady_state(&conv.ctmc, options)?;
    Ok(conv
        .probe_flow
        .iter()
        .map(|(name, flow)| {
            let tp: f64 = pi.iter().zip(flow).map(|(&p, &f)| p * f).sum();
            (name.clone(), tp)
        })
        .collect())
}

/// Pseudo-rate standing in for "instantaneous" in the CTMDP approximation
/// of vanishing states: each internal step adds `1/INSTANT_RATE` of
/// spurious expected time (documented error bound).
pub const INSTANT_RATE: f64 = 1e9;

/// Converts a closed IMC (τ-only interactive transitions) into a CTMDP,
/// keeping the internal nondeterminism as scheduler choices. Vanishing
/// states become CTMDP states whose choices fire at [`INSTANT_RATE`];
/// expected-time results carry an error of at most
/// `#internal-steps / INSTANT_RATE`.
///
/// # Errors
///
/// Returns [`ToCtmcError::VisibleLabels`] if visible labels remain.
pub fn to_ctmdp(imc: &Imc) -> Result<Ctmdp, ToCtmcError> {
    if imc.has_visible() {
        return Err(ToCtmcError::VisibleLabels(imc.visible_labels()));
    }
    let n = imc.num_states();
    let mut mdp = Ctmdp::new(n);
    for s in 0..n as State {
        let internal: Vec<State> = {
            let mut v: Vec<State> = imc.interactive_from(s).iter().map(|t| t.target).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        if !internal.is_empty() {
            // Maximal progress: Markovian transitions are preempted.
            for t in internal {
                mdp.add_choice(
                    s as usize,
                    ActionChoice { name: None, transitions: vec![(t as usize, INSTANT_RATE)] },
                );
            }
        } else if !imc.markovian_from(s).is_empty() {
            let transitions: Vec<(usize, f64)> =
                imc.markovian_from(s).iter().map(|m| (m.target as usize, m.rate)).collect();
            mdp.add_choice(s as usize, ActionChoice { name: None, transitions });
        }
    }
    Ok(mdp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imc::ImcBuilder;
    use multival_ctmc::steady::SolveOptions;
    use multival_ctmc::Opt;

    #[test]
    fn deterministic_tau_chain_eliminated() {
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 2.0).unwrap();
        b.interactive(s[1], "i", s[2]);
        b.interactive(s[2], "i", s[3]);
        b.markovian(s[3], s[0], 1.0).unwrap();
        let conv = to_ctmc(&b.build(s[0]), NondetPolicy::Reject, &[]).expect("converts");
        assert_eq!(conv.ctmc.num_states(), 2);
        // Rate structure: 0 →2.0→ {3}, {3} →1.0→ 0.
        let pi = multival_ctmc::steady::steady_state(&conv.ctmc, &SolveOptions::default())
            .expect("solves");
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn visible_labels_rejected() {
        let mut b = ImcBuilder::new();
        let s0 = b.add_state();
        b.interactive(s0, "OOPS", s0);
        let err = to_ctmc(&b.build(s0), NondetPolicy::Reject, &[]).expect_err("visible");
        assert!(matches!(err, ToCtmcError::VisibleLabels(ref v) if v == &vec!["OOPS".to_owned()]));
    }

    #[test]
    fn nondeterminism_rejected_then_uniform() {
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 1.0).unwrap();
        b.interactive(s[1], "i", s[2]);
        b.interactive(s[1], "i", s[3]);
        b.markovian(s[2], s[0], 10.0).unwrap();
        b.markovian(s[3], s[0], 1.0).unwrap();
        let imc = b.build(s[0]);
        assert!(matches!(
            to_ctmc(&imc, NondetPolicy::Reject, &[]),
            Err(ToCtmcError::Nondeterministic { state: 1, choices: 2 })
        ));
        let conv = to_ctmc(&imc, NondetPolicy::Uniform, &[]).expect("uniform resolves");
        // 0 → (0.5 to fast 2, 0.5 to slow 3).
        let from0: f64 =
            conv.ctmc.transitions_from(conv.state_map[0].unwrap()).iter().map(|t| t.rate).sum();
        assert!((from0 - 1.0).abs() < 1e-9);
        assert_eq!(conv.ctmc.transitions_from(conv.state_map[0].unwrap()).len(), 2);
    }

    #[test]
    fn timelock_detected() {
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 1.0).unwrap();
        b.interactive(s[1], "i", s[2]);
        b.interactive(s[2], "i", s[1]); // τ-cycle, no escape
        let err = to_ctmc(&b.build(s[0]), NondetPolicy::Uniform, &[]).expect_err("timelock");
        assert!(matches!(err, ToCtmcError::Timelock { .. }));
    }

    #[test]
    fn tau_cycle_with_escape_converges() {
        // v1 → v2 → v1 with v2 also escaping to tangible u: absorption is
        // still total (geometric escape).
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 1.0).unwrap();
        b.interactive(s[1], "i", s[2]);
        b.interactive(s[2], "i", s[1]);
        b.interactive(s[2], "i", s[3]);
        b.markovian(s[3], s[0], 1.0).unwrap();
        let conv = to_ctmc(&b.build(s[0]), NondetPolicy::Uniform, &[]).expect("converges");
        assert_eq!(conv.ctmc.num_states(), 2);
    }

    #[test]
    fn probes_counted_in_throughput() {
        // 0 -λ-> v --PROBE--> 0' : every Markovian firing crosses PROBE once.
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 2.0).unwrap();
        b.interactive(s[1], "PROBE", s[2]);
        b.markovian(s[2], s[0], 2.0).unwrap();
        let conv = to_ctmc(&b.build(s[0]), NondetPolicy::Reject, &["PROBE"]).expect("converts");
        let tp = probe_throughputs(&conv, &SolveOptions::default()).expect("solves");
        // Steady state: two states each with exit rate 2 → π = (1/2, 1/2);
        // PROBE crossed at rate 2 from state 0 → throughput 1.0.
        assert!((tp[0].1 - 1.0).abs() < 1e-9, "throughput {}", tp[0].1);
    }

    #[test]
    fn ctmdp_gives_scheduler_bounds() {
        // Nondeterministic τ: fast route (rate 10) vs slow route (rate 1).
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.interactive(s[0], "i", s[1]);
        b.interactive(s[0], "i", s[2]);
        b.markovian(s[1], s[3], 10.0).unwrap();
        b.markovian(s[2], s[3], 1.0).unwrap();
        let mdp = to_ctmdp(&b.build(s[0])).expect("builds");
        let lo = mdp.expected_time_to_reach(&[3], Opt::Min, 1e-12, 100_000).expect("vi");
        let hi = mdp.expected_time_to_reach(&[3], Opt::Max, 1e-12, 100_000).expect("vi");
        assert!((lo[0] - 0.1).abs() < 1e-6, "min bound {}", lo[0]);
        assert!((hi[0] - 1.0).abs() < 1e-6, "max bound {}", hi[0]);
    }

    #[test]
    fn initial_vanishing_state_redistributed() {
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.interactive(s[0], "i", s[1]);
        b.interactive(s[0], "i", s[2]);
        b.markovian(s[1], s[2], 1.0).unwrap();
        b.markovian(s[2], s[1], 1.0).unwrap();
        let conv = to_ctmc(&b.build(s[0]), NondetPolicy::Uniform, &[]).expect("converts");
        let init = conv.ctmc.initial_dense();
        assert!((init.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((init[0] - 0.5).abs() < 1e-9);
    }
}
