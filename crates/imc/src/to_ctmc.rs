//! IMC → CTMC transformation ("the decorated model … is then transformed
//! into a Markov chain", §4 of the paper).
//!
//! After hiding all visible actions and applying maximal progress, internal
//! (τ or *probe*) transitions are instantaneous: states offering them are
//! *vanishing* and are eliminated by computing their absorption
//! distributions into *tangible* states — exactly like vanishing-marking
//! elimination in GSPNs.
//!
//! Nondeterministic internal choice (the paper's §5 open issue) is handled
//! by an explicit [`NondetPolicy`]:
//! * [`NondetPolicy::Reject`] mirrors CADP's solvers, which "currently do
//!   not accept" nondeterminism — conversion fails with a diagnostic;
//! * [`NondetPolicy::Uniform`] resolves internal choices uniformly (a
//!   specific randomized scheduler);
//! * for *bounds over all schedulers*, use [`to_ctmdp`] and the
//!   `multival-ctmc` value-iteration solvers.
//!
//! *Probes* are visible labels that should survive into the chain for
//! throughput measurement: they are treated exactly like τ for timing
//! purposes, but every traversal is counted, yielding per-state label flow
//! rates for [`probe_throughputs`].

use crate::imc::{Imc, State};
use multival_ctmc::{ActionChoice, Ctmc, CtmcBuilder, Ctmdp};
use std::collections::HashMap;
use std::fmt;

/// How to treat internal nondeterminism during conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NondetPolicy {
    /// Fail on any state with more than one internal successor (the
    /// behaviour of CADP's Markov solvers at the time of the paper).
    Reject,
    /// Resolve internal choices uniformly at random.
    Uniform,
}

/// Error during IMC → CTMC conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum ToCtmcError {
    /// Visible labels remain: hide them (or list them as probes) first.
    VisibleLabels(Vec<String>),
    /// Internal nondeterminism under [`NondetPolicy::Reject`].
    Nondeterministic {
        /// The offending state.
        state: State,
        /// Number of distinct internal successors.
        choices: usize,
    },
    /// A τ-cycle with no Markovian escape: time cannot progress (the
    /// probabilistic counterpart of a livelock).
    Timelock {
        /// A state on the divergent τ-cycle.
        state: State,
    },
    /// A numeric stage failed.
    Numeric(String),
}

impl fmt::Display for ToCtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToCtmcError::VisibleLabels(ls) => {
                write!(f, "IMC still has visible labels: {}", ls.join(", "))
            }
            ToCtmcError::Nondeterministic { state, choices } => write!(
                f,
                "internal nondeterminism at state {state} ({choices} choices); \
                 CADP-style solvers reject this — use NondetPolicy::Uniform or to_ctmdp"
            ),
            ToCtmcError::Timelock { state } => {
                write!(f, "τ-cycle without Markovian escape at state {state} (timelock)")
            }
            ToCtmcError::Numeric(m) => write!(f, "numeric failure: {m}"),
        }
    }
}

impl std::error::Error for ToCtmcError {}

/// The result of a successful conversion.
#[derive(Debug, Clone)]
pub struct CtmcConversion {
    /// The resulting chain over tangible states.
    pub ctmc: Ctmc,
    /// For each IMC state, its CTMC state (tangible states only).
    pub state_map: Vec<Option<usize>>,
    /// `probe_flow[p][c]` = expected number of probe-`p` crossings per unit
    /// time contributed while the chain resides in CTMC state `c`, *per unit
    /// rate already weighted* — multiply by the steady-state distribution and
    /// sum to get throughputs (see [`probe_throughputs`]).
    pub probe_flow: Vec<(String, Vec<f64>)>,
}

/// The distinct `(probe index or none, target)` internal options of one
/// state.
type InternalOptions = Vec<(Option<usize>, State)>;

/// Checks that every interactive label is internal (τ or a probe) and
/// returns the dedup'd internal successor lists: `internal[s]` holds the
/// distinct `(probe index or none, target)` options of state `s`.
fn internal_successors(imc: &Imc, probes: &[&str]) -> Result<Vec<InternalOptions>, ToCtmcError> {
    let n = imc.num_states();
    let is_probe = |name: &str| probes.contains(&name);
    {
        let mut offending: Vec<String> =
            imc.visible_labels().into_iter().filter(|l| !is_probe(l)).collect();
        offending.dedup();
        if !offending.is_empty() {
            return Err(ToCtmcError::VisibleLabels(offending));
        }
    }
    let probe_index: HashMap<String, usize> =
        probes.iter().enumerate().map(|(i, p)| (p.to_string(), i)).collect();
    let mut internal: Vec<Vec<(Option<usize>, State)>> = vec![Vec::new(); n];
    for s in 0..n as State {
        let mut seen = std::collections::HashSet::new();
        for t in imc.interactive_from(s) {
            let p =
                if t.label.is_tau() { None } else { Some(probe_index[imc.labels().name(t.label)]) };
            if seen.insert((p, t.target)) {
                internal[s as usize].push((p, t.target));
            }
        }
    }
    Ok(internal)
}

/// Converts a closed IMC (all interactive transitions τ or listed in
/// `probes`) into a CTMC.
///
/// # Errors
///
/// See [`ToCtmcError`].
///
/// # Examples
///
/// ```
/// use multival_imc::{ImcBuilder, to_ctmc::{to_ctmc, NondetPolicy}};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ImcBuilder::new();
/// let s0 = b.add_state();
/// let s1 = b.add_state();
/// let s2 = b.add_state();
/// b.markovian(s0, s1, 2.0)?;
/// b.interactive(s1, "i", s2);   // vanishing state
/// b.markovian(s2, s0, 1.0)?;
/// let conv = to_ctmc(&b.build(s0), NondetPolicy::Reject, &[])?;
/// assert_eq!(conv.ctmc.num_states(), 2); // s1 eliminated
/// # Ok(())
/// # }
/// ```
pub fn to_ctmc(
    imc: &Imc,
    policy: NondetPolicy,
    probes: &[&str],
) -> Result<CtmcConversion, ToCtmcError> {
    let n = imc.num_states();
    let internal = internal_successors(imc, probes)?;
    let vanishing: Vec<bool> = (0..n).map(|s| !internal[s].is_empty()).collect();
    if policy == NondetPolicy::Reject {
        for (s, succ) in internal.iter().enumerate() {
            if succ.len() > 1 {
                return Err(ToCtmcError::Nondeterministic {
                    state: s as State,
                    choices: succ.len(),
                });
            }
        }
    }

    // Absorption of vanishing states into tangible states + expected probe
    // crossings, by Gauss–Seidel over sparse maps.
    // A[v]: map tangible -> probability; C[v]: crossings per probe.
    let mut absorb: Vec<HashMap<State, f64>> = vec![HashMap::new(); n];
    let mut crossings: Vec<Vec<f64>> = vec![vec![0.0; probes.len()]; n];
    {
        let vanishing_states: Vec<usize> = (0..n).filter(|&s| vanishing[s]).collect();
        let max_iter = 100_000;
        let tol = 1e-12;
        let mut iter = 0;
        loop {
            iter += 1;
            let mut delta: f64 = 0.0;
            for &v in &vanishing_states {
                let k = internal[v].len() as f64;
                let mut new_a: HashMap<State, f64> = HashMap::new();
                let mut new_c = vec![0.0; probes.len()];
                for &(p, w) in &internal[v] {
                    let weight = 1.0 / k;
                    if let Some(pi) = p {
                        new_c[pi] += weight;
                    }
                    if vanishing[w as usize] {
                        for (&u, &q) in &absorb[w as usize] {
                            *new_a.entry(u).or_insert(0.0) += weight * q;
                        }
                        for (pi, &c) in crossings[w as usize].iter().enumerate() {
                            new_c[pi] += weight * c;
                        }
                    } else {
                        *new_a.entry(w).or_insert(0.0) += weight;
                    }
                }
                // Convergence tracking on total absorbed mass and crossings.
                let old_mass: f64 = absorb[v].values().sum();
                let new_mass: f64 = new_a.values().sum();
                delta = delta.max((new_mass - old_mass).abs());
                for (o, nw) in crossings[v].iter().zip(&new_c) {
                    delta = delta.max((nw - o).abs());
                }
                absorb[v] = new_a;
                crossings[v] = new_c;
            }
            if delta < tol {
                break;
            }
            if iter > max_iter {
                return Err(ToCtmcError::Numeric(format!(
                    "vanishing-state elimination did not converge (residual {delta:.3e})"
                )));
            }
        }
        // Timelock check: every vanishing state must absorb with mass ~1.
        for &v in &vanishing_states {
            let mass: f64 = absorb[v].values().sum();
            if mass < 1.0 - 1e-6 {
                return Err(ToCtmcError::Timelock { state: v as State });
            }
        }
    }

    // Enumerate tangible states.
    let mut state_map: Vec<Option<usize>> = vec![None; n];
    let mut tangible: Vec<State> = Vec::new();
    for s in 0..n {
        if !vanishing[s] {
            state_map[s] = Some(tangible.len());
            tangible.push(s as State);
        }
    }
    if tangible.is_empty() {
        return Err(ToCtmcError::Timelock { state: imc.initial() });
    }

    let mut builder = CtmcBuilder::new(tangible.len());
    let mut probe_flow: Vec<Vec<f64>> = vec![vec![0.0; tangible.len()]; probes.len()];
    for (ci, &s) in tangible.iter().enumerate() {
        for m in imc.markovian_from(s) {
            let t = m.target;
            if !vanishing[t as usize] {
                builder
                    .rate(ci, state_map[t as usize].expect("tangible"), m.rate)
                    .map_err(|e| ToCtmcError::Numeric(e.to_string()))?;
            } else {
                for (&u, &q) in &absorb[t as usize] {
                    let r = m.rate * q;
                    if r > 0.0 {
                        builder
                            .rate(ci, state_map[u as usize].expect("tangible"), r)
                            .map_err(|e| ToCtmcError::Numeric(e.to_string()))?;
                    }
                }
                for (pi, &c) in crossings[t as usize].iter().enumerate() {
                    probe_flow[pi][ci] += m.rate * c;
                }
            }
        }
    }

    // Initial distribution: the IMC initial state, redistributed if
    // vanishing.
    let init = imc.initial();
    let dist: Vec<(usize, f64)> = if vanishing[init as usize] {
        absorb[init as usize]
            .iter()
            .map(|(&u, &q)| (state_map[u as usize].expect("tangible"), q))
            .collect()
    } else {
        vec![(state_map[init as usize].expect("tangible"), 1.0)]
    };
    builder.set_initial(dist).map_err(|e| ToCtmcError::Numeric(e.to_string()))?;

    Ok(CtmcConversion {
        ctmc: builder.build().map_err(|e| ToCtmcError::Numeric(e.to_string()))?,
        state_map,
        probe_flow: probes.iter().map(|p| p.to_string()).zip(probe_flow).collect(),
    })
}

/// Steady-state throughput of each probe label: Σ_c π(c) · flow(c).
///
/// # Errors
///
/// Propagates solver errors from the steady-state computation.
pub fn probe_throughputs(
    conv: &CtmcConversion,
    options: &multival_ctmc::SolveOptions,
) -> Result<Vec<(String, f64)>, multival_ctmc::CtmcError> {
    let pi = multival_ctmc::steady::steady_state(&conv.ctmc, options)?;
    Ok(conv
        .probe_flow
        .iter()
        .map(|(name, flow)| {
            let tp: f64 = pi.iter().zip(flow).map(|(&p, &f)| p * f).sum();
            (name.clone(), tp)
        })
        .collect())
}

/// Pseudo-rate standing in for "instantaneous" in the CTMDP approximation
/// of vanishing states: each internal step adds `1/INSTANT_RATE` of
/// spurious expected time (documented error bound).
pub const INSTANT_RATE: f64 = 1e9;

/// Converts a closed IMC (τ-only interactive transitions) into a CTMDP,
/// keeping the internal nondeterminism as scheduler choices. Vanishing
/// states become CTMDP states whose choices fire at [`INSTANT_RATE`];
/// expected-time results carry an error of at most
/// `#internal-steps / INSTANT_RATE`.
///
/// # Errors
///
/// Returns [`ToCtmcError::VisibleLabels`] if visible labels remain.
pub fn to_ctmdp(imc: &Imc) -> Result<Ctmdp, ToCtmcError> {
    if imc.has_visible() {
        return Err(ToCtmcError::VisibleLabels(imc.visible_labels()));
    }
    let n = imc.num_states();
    let mut mdp = Ctmdp::new(n);
    for s in 0..n as State {
        let internal: Vec<State> = {
            let mut v: Vec<State> = imc.interactive_from(s).iter().map(|t| t.target).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        if !internal.is_empty() {
            // Maximal progress: Markovian transitions are preempted.
            for t in internal {
                mdp.add_choice(
                    s as usize,
                    ActionChoice { name: None, transitions: vec![(t as usize, INSTANT_RATE)] },
                );
            }
        } else if !imc.markovian_from(s).is_empty() {
            let transitions: Vec<(usize, f64)> =
                imc.markovian_from(s).iter().map(|m| (m.target as usize, m.rate)).collect();
            mdp.add_choice(s as usize, ActionChoice { name: None, transitions });
        }
    }
    Ok(mdp)
}

/// The result of a choice-preserving IMC → CTMDP lifting
/// ([`to_ctmdp_lifted`]).
#[derive(Debug, Clone)]
pub struct CtmdpConversion {
    /// The lifted process: tangible states with one combined Markovian
    /// choice, nondeterministic vanishing states as *instant* states with
    /// one probability-1 choice per internal option.
    pub mdp: Ctmdp,
    /// For each IMC state, its CTMDP state — `None` for *deterministic*
    /// vanishing states, which are eliminated exactly as in [`to_ctmc`].
    pub state_map: Vec<Option<usize>>,
    /// For each IMC state, the CTMDP state standing in for it: itself if
    /// kept, the endpoint of its τ-chain if eliminated. Use this to map
    /// target sets of reachability measures.
    pub resolved: Vec<usize>,
    /// Per probe: `impulse[s][a]` = expected crossings of the probe per
    /// transition taken from CTMDP state `s` under choice `a` (shaped for
    /// [`Ctmdp::long_run_average`]).
    pub probe_impulse: Vec<(String, Vec<Vec<f64>>)>,
    /// The CTMDP initial state (the IMC initial, resolved through any
    /// eliminated τ-chain).
    pub initial: usize,
}

/// Converts a closed IMC (all interactive transitions τ or listed in
/// `probes`) into a CTMDP, *preserving* internal nondeterminism as
/// scheduler choices instead of rejecting or uniformizing it.
///
/// Deterministic vanishing states — exactly one internal option — are
/// eliminated by following their τ-chain and accumulating probe crossings,
/// as in [`to_ctmc`]; by Bellman optimality a scheduler gains nothing from
/// them, so no choice structure is lost. Nondeterministic vanishing states
/// become *instant* CTMDP states ([`Ctmdp::set_instant`]) with one
/// probability-1 choice per internal option: zero sojourn time, true
/// zero-cost preemption — unlike the [`INSTANT_RATE`] approximation of the
/// plain [`to_ctmdp`]. Tangible states keep their Markovian race as a
/// single combined choice (the race is resolved by the exponential clocks,
/// not by the scheduler).
///
/// A vanishing state *between* two nondeterministic choices (reachable in
/// the FAME2 coherence model) is handled: its chain simply ends at the next
/// kept state.
///
/// # Errors
///
/// [`ToCtmcError::VisibleLabels`] if unhidden non-probe labels remain,
/// [`ToCtmcError::Timelock`] on a deterministic τ-cycle or when no tangible
/// state exists at all.
///
/// # Examples
///
/// ```
/// use multival_imc::{ImcBuilder, to_ctmc::to_ctmdp_lifted};
/// use multival_ctmc::Opt;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A scheduler routes each job to a fast (rate 10) or slow (rate 1)
/// // server; the choice state is vanishing and nondeterministic.
/// let mut b = ImcBuilder::new();
/// let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
/// b.interactive(s[0], "i", s[1]);
/// b.interactive(s[0], "i", s[2]);
/// b.markovian(s[1], s[3], 10.0)?;
/// b.markovian(s[2], s[3], 1.0)?;
/// let conv = to_ctmdp_lifted(&b.build(s[0]), &[])?;
/// let target = conv.resolved[s[3] as usize];
/// let lo = conv.mdp.expected_time_to_reach(&[target], Opt::Min, 1e-12, 100_000)?;
/// assert!((lo[conv.initial] - 0.1).abs() < 1e-9); // exactly 1/10, no 1e-9 skew
/// # Ok(())
/// # }
/// ```
pub fn to_ctmdp_lifted(imc: &Imc, probes: &[&str]) -> Result<CtmdpConversion, ToCtmcError> {
    let n = imc.num_states();
    let internal = internal_successors(imc, probes)?;
    let det: Vec<bool> = internal.iter().map(|opts| opts.len() == 1).collect();

    // Resolve each deterministic vanishing state to the endpoint of its
    // τ-chain plus the probe crossings collected along it (memoized walks).
    let mut chain: Vec<Option<(State, Vec<f64>)>> = vec![None; n];
    for s0 in 0..n {
        if !det[s0] || chain[s0].is_some() {
            continue;
        }
        let mut path: Vec<State> = Vec::new();
        let mut on_path = std::collections::HashSet::new();
        let mut cur = s0 as State;
        while det[cur as usize] && chain[cur as usize].is_none() {
            if !on_path.insert(cur) {
                return Err(ToCtmcError::Timelock { state: cur });
            }
            path.push(cur);
            cur = internal[cur as usize][0].1;
        }
        let (endpoint, mut acc) = match &chain[cur as usize] {
            Some((e, c)) => (*e, c.clone()),
            None => (cur, vec![0.0; probes.len()]),
        };
        for &v in path.iter().rev() {
            if let Some(pi) = internal[v as usize][0].0 {
                acc[pi] += 1.0;
            }
            chain[v as usize] = Some((endpoint, acc.clone()));
        }
    }
    // Resolves an IMC state to (kept state, crossings along the way).
    let resolve = |s: State| -> (State, Option<&Vec<f64>>) {
        match &chain[s as usize] {
            Some((e, c)) => (*e, Some(c)),
            None => (s, None),
        }
    };

    // Kept states: tangible ones and nondeterministic vanishing ones.
    let mut state_map: Vec<Option<usize>> = vec![None; n];
    let mut kept: Vec<State> = Vec::new();
    let mut any_tangible = false;
    for s in 0..n {
        if !det[s] {
            state_map[s] = Some(kept.len());
            kept.push(s as State);
            if internal[s].is_empty() {
                any_tangible = true;
            }
        }
    }
    if !any_tangible {
        return Err(ToCtmcError::Timelock { state: imc.initial() });
    }

    let mut mdp = Ctmdp::new(kept.len());
    let mut impulse: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); kept.len()]; probes.len()];
    for (idx, &s) in kept.iter().enumerate() {
        if !internal[s as usize].is_empty() {
            // Nondeterministic vanishing state → instant choices.
            mdp.set_instant(idx);
            for &(p, w) in &internal[s as usize] {
                let (endpoint, crossed) = resolve(w);
                let target = state_map[endpoint as usize].expect("chain ends at a kept state");
                mdp.add_choice(idx, ActionChoice { name: None, transitions: vec![(target, 1.0)] });
                for (pi, rows) in impulse.iter_mut().enumerate() {
                    let mut c = crossed.map_or(0.0, |cs| cs[pi]);
                    if p == Some(pi) {
                        c += 1.0;
                    }
                    rows[idx].push(c);
                }
            }
        } else if !imc.markovian_from(s).is_empty() {
            // Tangible state → one combined Markovian choice; targets are
            // resolved through eliminated chains, rates aggregated per
            // endpoint in state order for deterministic output.
            let mut agg: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
            let exit: f64 = imc.markovian_from(s).iter().map(|m| m.rate).sum();
            let mut per_jump = vec![0.0; probes.len()];
            for m in imc.markovian_from(s) {
                let (endpoint, crossed) = resolve(m.target);
                let target = state_map[endpoint as usize].expect("chain ends at a kept state");
                *agg.entry(target).or_insert(0.0) += m.rate;
                if let Some(cs) = crossed {
                    for (pi, &c) in cs.iter().enumerate() {
                        per_jump[pi] += (m.rate / exit) * c;
                    }
                }
            }
            mdp.add_choice(
                idx,
                ActionChoice { name: None, transitions: agg.into_iter().collect() },
            );
            for (pi, rows) in impulse.iter_mut().enumerate() {
                rows[idx].push(per_jump[pi]);
            }
        }
        // Absorbing tangible states keep zero choices (and empty impulse
        // rows, matching the choice arity).
    }

    let resolved: Vec<usize> = (0..n as State)
        .map(|s| state_map[resolve(s).0 as usize].expect("resolution ends at a kept state"))
        .collect();
    let initial = resolved[imc.initial() as usize];
    Ok(CtmdpConversion {
        mdp,
        state_map,
        resolved,
        probe_impulse: probes.iter().map(|p| p.to_string()).zip(impulse).collect(),
        initial,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imc::ImcBuilder;
    use multival_ctmc::steady::SolveOptions;
    use multival_ctmc::Opt;

    #[test]
    fn deterministic_tau_chain_eliminated() {
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 2.0).unwrap();
        b.interactive(s[1], "i", s[2]);
        b.interactive(s[2], "i", s[3]);
        b.markovian(s[3], s[0], 1.0).unwrap();
        let conv = to_ctmc(&b.build(s[0]), NondetPolicy::Reject, &[]).expect("converts");
        assert_eq!(conv.ctmc.num_states(), 2);
        // Rate structure: 0 →2.0→ {3}, {3} →1.0→ 0.
        let pi = multival_ctmc::steady::steady_state(&conv.ctmc, &SolveOptions::default())
            .expect("solves");
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn visible_labels_rejected() {
        let mut b = ImcBuilder::new();
        let s0 = b.add_state();
        b.interactive(s0, "OOPS", s0);
        let err = to_ctmc(&b.build(s0), NondetPolicy::Reject, &[]).expect_err("visible");
        assert!(matches!(err, ToCtmcError::VisibleLabels(ref v) if v == &vec!["OOPS".to_owned()]));
    }

    #[test]
    fn nondeterminism_rejected_then_uniform() {
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 1.0).unwrap();
        b.interactive(s[1], "i", s[2]);
        b.interactive(s[1], "i", s[3]);
        b.markovian(s[2], s[0], 10.0).unwrap();
        b.markovian(s[3], s[0], 1.0).unwrap();
        let imc = b.build(s[0]);
        assert!(matches!(
            to_ctmc(&imc, NondetPolicy::Reject, &[]),
            Err(ToCtmcError::Nondeterministic { state: 1, choices: 2 })
        ));
        let conv = to_ctmc(&imc, NondetPolicy::Uniform, &[]).expect("uniform resolves");
        // 0 → (0.5 to fast 2, 0.5 to slow 3).
        let from0: f64 =
            conv.ctmc.transitions_from(conv.state_map[0].unwrap()).iter().map(|t| t.rate).sum();
        assert!((from0 - 1.0).abs() < 1e-9);
        assert_eq!(conv.ctmc.transitions_from(conv.state_map[0].unwrap()).len(), 2);
    }

    #[test]
    fn timelock_detected() {
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 1.0).unwrap();
        b.interactive(s[1], "i", s[2]);
        b.interactive(s[2], "i", s[1]); // τ-cycle, no escape
        let err = to_ctmc(&b.build(s[0]), NondetPolicy::Uniform, &[]).expect_err("timelock");
        assert!(matches!(err, ToCtmcError::Timelock { .. }));
    }

    #[test]
    fn tau_cycle_with_escape_converges() {
        // v1 → v2 → v1 with v2 also escaping to tangible u: absorption is
        // still total (geometric escape).
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 1.0).unwrap();
        b.interactive(s[1], "i", s[2]);
        b.interactive(s[2], "i", s[1]);
        b.interactive(s[2], "i", s[3]);
        b.markovian(s[3], s[0], 1.0).unwrap();
        let conv = to_ctmc(&b.build(s[0]), NondetPolicy::Uniform, &[]).expect("converges");
        assert_eq!(conv.ctmc.num_states(), 2);
    }

    #[test]
    fn probes_counted_in_throughput() {
        // 0 -λ-> v --PROBE--> 0' : every Markovian firing crosses PROBE once.
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 2.0).unwrap();
        b.interactive(s[1], "PROBE", s[2]);
        b.markovian(s[2], s[0], 2.0).unwrap();
        let conv = to_ctmc(&b.build(s[0]), NondetPolicy::Reject, &["PROBE"]).expect("converts");
        let tp = probe_throughputs(&conv, &SolveOptions::default()).expect("solves");
        // Steady state: two states each with exit rate 2 → π = (1/2, 1/2);
        // PROBE crossed at rate 2 from state 0 → throughput 1.0.
        assert!((tp[0].1 - 1.0).abs() < 1e-9, "throughput {}", tp[0].1);
    }

    #[test]
    fn ctmdp_gives_scheduler_bounds() {
        // Nondeterministic τ: fast route (rate 10) vs slow route (rate 1).
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.interactive(s[0], "i", s[1]);
        b.interactive(s[0], "i", s[2]);
        b.markovian(s[1], s[3], 10.0).unwrap();
        b.markovian(s[2], s[3], 1.0).unwrap();
        let mdp = to_ctmdp(&b.build(s[0])).expect("builds");
        let lo = mdp.expected_time_to_reach(&[3], Opt::Min, 1e-12, 100_000).expect("vi");
        let hi = mdp.expected_time_to_reach(&[3], Opt::Max, 1e-12, 100_000).expect("vi");
        assert!((lo[0] - 0.1).abs() < 1e-6, "min bound {}", lo[0]);
        assert!((hi[0] - 1.0).abs() < 1e-6, "max bound {}", hi[0]);
    }

    #[test]
    fn lifted_preserves_choice_bounds_exactly() {
        // Same model as ctmdp_gives_scheduler_bounds, but the lifted form
        // must give *exact* bounds (no 1/INSTANT_RATE skew) and eliminate
        // nothing nondeterministic.
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.interactive(s[0], "i", s[1]);
        b.interactive(s[0], "i", s[2]);
        b.markovian(s[1], s[3], 10.0).unwrap();
        b.markovian(s[2], s[3], 1.0).unwrap();
        let conv = to_ctmdp_lifted(&b.build(s[0]), &[]).expect("lifts");
        assert!(conv.mdp.is_instant(conv.initial));
        let t = conv.resolved[3];
        let lo = conv.mdp.expected_time_to_reach(&[t], Opt::Min, 1e-12, 100_000).unwrap();
        let hi = conv.mdp.expected_time_to_reach(&[t], Opt::Max, 1e-12, 100_000).unwrap();
        assert!((lo[conv.initial] - 0.1).abs() < 1e-12, "min {}", lo[conv.initial]);
        assert!((hi[conv.initial] - 1.0).abs() < 1e-12, "max {}", hi[conv.initial]);
    }

    #[test]
    fn vanishing_state_between_nondet_choices_is_preserved() {
        // Regression (FAME2 coherence shape): nondet v0 → det v1 → nondet
        // v2; the deterministic middle state must be eliminated while BOTH
        // surrounding choice points survive as instant states. The middle
        // hop crosses a probe that must not be lost.
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..7).map(|_| b.add_state()).collect();
        // nondet choice #1 at s0: straight to tangible s5, or into the chain.
        b.interactive(s[0], "i", s[1]);
        b.interactive(s[0], "i", s[5]);
        // deterministic vanishing middle: s1 --MARK--> s2.
        b.interactive(s[1], "MARK", s[2]);
        // nondet choice #2 at s2: fast or slow server.
        b.interactive(s[2], "i", s[3]);
        b.interactive(s[2], "i", s[4]);
        b.markovian(s[3], s[6], 10.0).unwrap();
        b.markovian(s[4], s[6], 1.0).unwrap();
        b.markovian(s[5], s[6], 2.0).unwrap();
        b.markovian(s[6], s[0], 1.0).unwrap();
        let imc = b.build(s[0]);
        // The seed path rejects this outright…
        assert!(matches!(
            to_ctmc(&imc, NondetPolicy::Reject, &["MARK"]),
            Err(ToCtmcError::Nondeterministic { .. })
        ));
        // …the lifted path keeps both choice points.
        let conv = to_ctmdp_lifted(&imc, &["MARK"]).expect("lifts");
        assert_eq!(conv.state_map[1], None, "deterministic middle state is eliminated");
        assert!(conv.mdp.is_instant(conv.state_map[0].unwrap()));
        assert!(conv.mdp.is_instant(conv.state_map[2].unwrap()));
        assert_eq!(conv.mdp.choices(conv.state_map[0].unwrap()).len(), 2);
        assert_eq!(conv.mdp.choices(conv.state_map[2].unwrap()).len(), 2);
        // The s0 choice into the chain carries the MARK crossing.
        let s0_idx = conv.state_map[0].unwrap();
        let (name, imp) = &conv.probe_impulse[0];
        assert_eq!(name, "MARK");
        let crossings: Vec<f64> = imp[s0_idx].clone();
        assert!(crossings.contains(&1.0) && crossings.contains(&0.0), "{crossings:?}");
        // Latency bounds: min routes via the rate-10 server (0.1 + 1.0
        // return is not needed: target is s6), max waits on rate 1.
        let t = conv.resolved[6];
        let lo = conv.mdp.expected_time_to_reach(&[t], Opt::Min, 1e-12, 100_000).unwrap();
        let hi = conv.mdp.expected_time_to_reach(&[t], Opt::Max, 1e-12, 100_000).unwrap();
        assert!((lo[conv.initial] - 0.1).abs() < 1e-9, "min {}", lo[conv.initial]);
        assert!((hi[conv.initial] - 1.0).abs() < 1e-9, "max {}", hi[conv.initial]);
        // Throughput bounds on MARK: a scheduler can avoid it entirely
        // (min 0) or take the chain every cycle through the fast server:
        // cycle time 0.1 + 1.0 → max rate 1/1.1.
        let zeros = vec![0.0; conv.mdp.num_states()];
        let lo_tp = conv.mdp.long_run_average(&zeros, Some(imp), Opt::Min, 1e-12, 100_000).unwrap();
        let hi_tp = conv.mdp.long_run_average(&zeros, Some(imp), Opt::Max, 1e-12, 100_000).unwrap();
        assert!(lo_tp.abs() < 1e-9, "min throughput {lo_tp}");
        assert!((hi_tp - 1.0 / 1.1).abs() < 1e-9, "max throughput {hi_tp}");
    }

    #[test]
    fn lifted_deterministic_model_matches_to_ctmc() {
        // No nondeterminism: the lifted CTMDP must collapse to the CTMC for
        // steady-state throughput on both optimization sides.
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 2.0).unwrap();
        b.interactive(s[1], "PROBE", s[2]);
        b.markovian(s[2], s[0], 2.0).unwrap();
        let imc = b.build(s[0]);
        let conv = to_ctmc(&imc, NondetPolicy::Reject, &["PROBE"]).expect("converts");
        let want = probe_throughputs(&conv, &SolveOptions::default()).expect("solves")[0].1;
        let lifted = to_ctmdp_lifted(&imc, &["PROBE"]).expect("lifts");
        let zeros = vec![0.0; lifted.mdp.num_states()];
        for opt in [Opt::Min, Opt::Max] {
            let g = lifted
                .mdp
                .long_run_average(&zeros, Some(&lifted.probe_impulse[0].1), opt, 1e-12, 100_000)
                .unwrap();
            assert!((g - want).abs() < 1e-9, "{opt:?}: {g} vs {want}");
        }
    }

    #[test]
    fn initial_vanishing_state_redistributed() {
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.interactive(s[0], "i", s[1]);
        b.interactive(s[0], "i", s[2]);
        b.markovian(s[1], s[2], 1.0).unwrap();
        b.markovian(s[2], s[1], 1.0).unwrap();
        let conv = to_ctmc(&b.build(s[0]), NondetPolicy::Uniform, &[]).expect("converts");
        let init = conv.ctmc.initial_dense();
        assert!((init.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((init[0] - 0.5).abs() < 1e-9);
    }
}
