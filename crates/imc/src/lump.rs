//! Stochastic bisimulation (lumping) minimization for IMCs — the engine of
//! *compositional* IMC generation (the paper's §4: "alternates state space
//! generation and stochastic state space minimization").
//!
//! Two states are lumpably equivalent iff they offer the same interactive
//! actions into the same classes and the same *cumulative Markovian rate*
//! into each class. The algorithm is signature-based partition refinement;
//! rate sums are quantized by a relative tolerance to make them hashable.

use crate::imc::{Imc, ImcBuilder, State};
use multival_par::{par_map, Workers};
use std::collections::HashMap;

/// Options for lumping.
#[derive(Debug, Clone, Copy)]
pub struct LumpOptions {
    /// Rates whose ratio differs by less than this are considered equal.
    pub rate_tolerance: f64,
}

impl Default for LumpOptions {
    fn default() -> Self {
        LumpOptions { rate_tolerance: 1e-9 }
    }
}

/// Statistics of a lumping run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LumpStats {
    /// States before.
    pub states_before: usize,
    /// States after.
    pub states_after: usize,
    /// Refinement sweeps performed.
    pub iterations: usize,
}

fn quantize(rate: f64, tol: f64) -> i64 {
    (rate / tol).round() as i64
}

/// Signature key: (current block, interactive pairs, quantized rate pairs).
type LumpSignature = (u32, Vec<(u32, u32)>, Vec<(u32, i64)>);

/// Computes the coarsest lumping partition: returns (block id per state,
/// #blocks, refinement sweeps).
pub fn lump_partition(imc: &Imc, options: &LumpOptions) -> (Vec<u32>, u32, usize) {
    lump_partition_with(imc, options, Workers::sequential())
}

/// [`lump_partition`] with an explicit worker count for the per-sweep
/// rate-signature computation. Signature→block interning stays sequential
/// in state order, so the partition is identical at any worker count.
pub fn lump_partition_with(
    imc: &Imc,
    options: &LumpOptions,
    workers: Workers,
) -> (Vec<u32>, u32, usize) {
    let n = imc.num_states();
    let state_ids: Vec<State> = (0..n as State).collect();
    let mut block = vec![0u32; n];
    let mut num_blocks = 1u32.min(n as u32);
    let mut sweeps = 0usize;
    loop {
        sweeps += 1;
        // Parallel stage: per-state signatures — interactive pairs plus
        // cumulative quantized Markovian rates per target block (pure
        // reads of the frozen partition, with f64 sums accumulated in a
        // fixed per-state order so rounding is scheduling-independent).
        type StateSig = (Vec<(u32, u32)>, Vec<(u32, i64)>);
        let sigs: Vec<StateSig> = par_map(workers, &state_ids, |_, &s| {
            // Interactive signature: sorted (label, target block) pairs.
            let mut isig: Vec<(u32, u32)> = imc
                .interactive_from(s)
                .iter()
                .map(|t| (t.label.0, block[t.target as usize]))
                .collect();
            isig.sort_unstable();
            isig.dedup();
            // Markovian signature: cumulative rate per target block.
            let mut rates: HashMap<u32, f64> = HashMap::new();
            for m in imc.markovian_from(s) {
                *rates.entry(block[m.target as usize]).or_insert(0.0) += m.rate;
            }
            let mut msig: Vec<(u32, i64)> =
                rates.into_iter().map(|(b, r)| (b, quantize(r, options.rate_tolerance))).collect();
            msig.sort_unstable();
            (isig, msig)
        });
        // Sequential stage: intern signatures in state order.
        let mut sig_index: HashMap<LumpSignature, u32> = HashMap::new();
        let mut next = vec![0u32; n];
        for (s, (isig, msig)) in sigs.into_iter().enumerate() {
            let key = (block[s], isig, msig);
            let fresh = sig_index.len() as u32;
            next[s] = *sig_index.entry(key).or_insert(fresh);
        }
        let nb = sig_index.len() as u32;
        if nb == num_blocks {
            return (block, num_blocks, sweeps);
        }
        block = next;
        num_blocks = nb;
    }
}

/// Minimizes an IMC modulo stochastic (lumping) bisimulation.
///
/// # Examples
///
/// ```
/// use multival_imc::{ImcBuilder, lump::{lump, LumpOptions}};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two parallel rate-λ branches into symmetric states lump together:
/// // 0 -λ-> 1 -μ-> 3, 0 -λ-> 2 -μ-> 3 becomes 0 -2λ-> {1,2} -μ-> 3.
/// let mut b = ImcBuilder::new();
/// let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
/// b.markovian(s[0], s[1], 1.0)?;
/// b.markovian(s[0], s[2], 1.0)?;
/// b.markovian(s[1], s[3], 5.0)?;
/// b.markovian(s[2], s[3], 5.0)?;
/// let (min, stats) = lump(&b.build(s[0]), &LumpOptions::default());
/// assert_eq!(min.num_states(), 3);
/// assert_eq!(stats.states_before, 4);
/// // The lumped rate into the merged block is the *sum* 1 + 1 = 2.
/// assert!((min.exit_rate(min.initial()) - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn lump(imc: &Imc, options: &LumpOptions) -> (Imc, LumpStats) {
    lump_with(imc, options, Workers::sequential())
}

/// [`lump`] with an explicit worker count; the lumped IMC is identical at
/// any worker count.
pub fn lump_with(imc: &Imc, options: &LumpOptions, workers: Workers) -> (Imc, LumpStats) {
    let n = imc.num_states();
    let (block, num_blocks, sweeps) = lump_partition_with(imc, options, workers);
    // Representative member per block (signatures agree, so any member
    // works); aggregate its rates per target block.
    let mut rep: Vec<Option<State>> = vec![None; num_blocks as usize];
    for (s, &b) in block.iter().enumerate() {
        if rep[b as usize].is_none() {
            rep[b as usize] = Some(s as State);
        }
    }
    let mut builder = ImcBuilder::new();
    for _ in 0..num_blocks {
        builder.add_state();
    }
    for (b, member) in rep.iter().enumerate() {
        let s = member.expect("every block has a member");
        // Interactive transitions: dedup per (label, block).
        let mut seen = std::collections::HashSet::new();
        for t in imc.interactive_from(s) {
            let key = (t.label, block[t.target as usize]);
            if seen.insert(key) {
                let name = imc.labels().name(t.label).to_owned();
                builder.interactive(b as State, &name, block[t.target as usize]);
            }
        }
        // Markovian: cumulative rate per target block.
        let mut rates: HashMap<u32, f64> = HashMap::new();
        for m in imc.markovian_from(s) {
            *rates.entry(block[m.target as usize]).or_insert(0.0) += m.rate;
        }
        let mut sorted: Vec<(u32, f64)> = rates.into_iter().collect();
        sorted.sort_by_key(|&(b, _)| b);
        for (tb, rate) in sorted {
            builder.markovian(b as State, tb, rate).expect("positive aggregate rate");
        }
    }
    let initial = block[imc.initial() as usize];
    let min = builder.build(initial).reachable();
    let stats = LumpStats { states_before: n, states_after: min.num_states(), iterations: sweeps };
    (min, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_rates_not_lumped() {
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 1.0).unwrap();
        b.markovian(s[0], s[2], 1.0).unwrap();
        b.markovian(s[1], s[3], 5.0).unwrap();
        b.markovian(s[2], s[3], 7.0).unwrap(); // different downstream rate
        let (min, _) = lump(&b.build(s[0]), &LumpOptions::default());
        assert_eq!(min.num_states(), 4);
    }

    #[test]
    fn interactive_labels_block_lumping() {
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..3).map(|_| b.add_state()).collect();
        b.interactive(s[0], "A", s[1]);
        b.interactive(s[0], "B", s[2]);
        // 1 and 2 both deadlock but are reached by different labels —
        // they still lump together (same empty signature).
        let (min, _) = lump(&b.build(s[0]), &LumpOptions::default());
        assert_eq!(min.num_states(), 2);
        assert_eq!(min.num_interactive(), 2, "both labels must survive");
    }

    #[test]
    fn erlang_phases_do_not_lump() {
        // A 3-phase Erlang chain must stay 4 states: each phase is a
        // different distance from absorption.
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..4).map(|_| b.add_state()).collect();
        for i in 0..3 {
            b.markovian(s[i], s[i + 1], 2.0).unwrap();
        }
        let (min, _) = lump(&b.build(s[0]), &LumpOptions::default());
        assert_eq!(min.num_states(), 4);
    }

    #[test]
    fn symmetric_fork_lumps_with_rate_addition() {
        // Classic lumping: fork into k symmetric branches of rate λ each
        // merges into a single transition of rate kλ.
        let k = 5;
        let mut b = ImcBuilder::new();
        let root = b.add_state();
        let end = b.add_state();
        let mids: Vec<_> = (0..k).map(|_| b.add_state()).collect();
        for &m in &mids {
            b.markovian(root, m, 1.0).unwrap();
            b.markovian(m, end, 3.0).unwrap();
        }
        let (min, stats) = lump(&b.build(root), &LumpOptions::default());
        assert_eq!(min.num_states(), 3);
        assert_eq!(stats.states_before, 2 + k);
        assert!((min.exit_rate(min.initial()) - k as f64).abs() < 1e-9);
    }

    #[test]
    fn lump_is_idempotent() {
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..6).map(|_| b.add_state()).collect();
        b.markovian(s[0], s[1], 1.0).unwrap();
        b.markovian(s[0], s[2], 1.0).unwrap();
        b.interactive(s[1], "GO", s[3]);
        b.interactive(s[2], "GO", s[4]);
        b.markovian(s[3], s[5], 2.0).unwrap();
        b.markovian(s[4], s[5], 2.0).unwrap();
        let (m1, _) = lump(&b.build(s[0]), &LumpOptions::default());
        let (m2, _) = lump(&m1, &LumpOptions::default());
        assert_eq!(m1.num_states(), m2.num_states());
        assert_eq!(m1.num_markovian(), m2.num_markovian());
    }

    #[test]
    fn parallel_lumping_matches_sequential_exactly() {
        // A 500-state layered IMC: alternating interactive/Markovian moves
        // with enough symmetry to lump and enough states to parallelize.
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..500).map(|_| b.add_state()).collect();
        for i in 0..500usize {
            let t1 = (i * 7 + 3) % 500;
            let t2 = (i * 13 + 11) % 500;
            match i % 3 {
                0 => {
                    b.markovian(s[i], s[t1], 1.0 + (i % 4) as f64).unwrap();
                    b.markovian(s[i], s[t2], 2.5).unwrap();
                }
                1 => b.interactive(s[i], "GO", s[t1]),
                _ => {
                    b.interactive(s[i], "i", s[t2]);
                    b.markovian(s[i], s[t1], 0.5).unwrap();
                }
            }
        }
        let imc = b.build(s[0]);
        let (seq_block, seq_nb, seq_sweeps) = lump_partition(&imc, &LumpOptions::default());
        for threads in [2, 4] {
            let (par_block, par_nb, par_sweeps) =
                lump_partition_with(&imc, &LumpOptions::default(), Workers::new(threads));
            assert_eq!(seq_nb, par_nb, "@{threads}");
            assert_eq!(seq_sweeps, par_sweeps, "@{threads}");
            assert_eq!(seq_block, par_block, "@{threads}");
        }
        let (m_seq, st_seq) = lump(&imc, &LumpOptions::default());
        let (m_par, st_par) = lump_with(&imc, &LumpOptions::default(), Workers::new(4));
        assert_eq!(st_seq, st_par);
        assert_eq!(m_seq.num_states(), m_par.num_states());
        assert_eq!(m_seq.num_markovian(), m_par.num_markovian());
        assert_eq!(m_seq.num_interactive(), m_par.num_interactive());
    }

    #[test]
    fn tau_distinction_preserved() {
        // τ to a "fast" continuation vs τ to a "slow" one must not lump.
        let mut b = ImcBuilder::new();
        let s: Vec<_> = (0..5).map(|_| b.add_state()).collect();
        b.interactive(s[0], "i", s[1]);
        b.interactive(s[0], "i", s[2]);
        b.markovian(s[1], s[3], 1.0).unwrap();
        b.markovian(s[2], s[4], 100.0).unwrap();
        b.interactive(s[3], "DONE", s[3]);
        let (min, _) = lump(&b.build(s[0]), &LumpOptions::default());
        assert!(min.num_states() >= 4, "fast/slow τ branches must stay distinct");
    }
}
