//! # multival-imc — Interactive Markov Chains
//!
//! The performance-evaluation core of the Multival reproduction (DATE'08):
//! IMCs combine LOTOS-style interactive transitions with exponentially
//! timed Markovian transitions (Hermanns, LNCS 2428), supported in CADP by
//! the `bcg_min` stochastic minimizer and the determinator — re-implemented
//! here as:
//!
//! * [`Imc`] / [`ImcBuilder`] — the chain structure;
//! * [`ops`] — parallel composition (Markovian interleaving), hiding, and
//!   the maximal-progress cut;
//! * [`mod@lump`] — stochastic bisimulation minimization;
//! * [`compositional`] — the compose-then-minimize pipeline of §4;
//! * [`phase_type`] — exponential / Erlang / hypo- / hyper-exponential
//!   delays, including the Erlang approximation of fixed delays (§5's
//!   space/accuracy trade-off);
//! * [`decorate`] — attaching delays to the gates of a functional LTS;
//! * [`mod@to_ctmc`] — elimination of instantaneous states and conversion to a
//!   CTMC (with explicit nondeterminism policies) or a CTMDP.
//!
//! # Examples
//!
//! The full §4 flow on a toy model — decorate, hide, convert, solve:
//!
//! ```
//! use multival_imc::{decorate::decorate_rates, ops::hide_all,
//!                    to_ctmc::{to_ctmc, NondetPolicy}};
//! use multival_lts::equiv::lts_from_triples;
//! use multival_ctmc::steady::{steady_state, SolveOptions};
//! use std::collections::HashMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lts = lts_from_triples(&[(0, "WORK", 1), (1, "REST", 0)]);
//! let mut rates = HashMap::new();
//! rates.insert("WORK".to_owned(), 2.0);
//! rates.insert("REST".to_owned(), 1.0);
//! let imc = hide_all(&decorate_rates(&lts, &rates));
//! let conv = to_ctmc(&imc, NondetPolicy::Reject, &[])?;
//! let pi = steady_state(&conv.ctmc, &SolveOptions::default())?;
//! assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod compositional;
pub mod decorate;
pub mod imc;
pub mod lump;
pub mod ops;
pub mod phase_type;
pub mod to_ctmc;

pub use imc::{Imc, ImcBuilder, ImcError, Interactive, Markovian, State};
pub use lump::{lump, lump_with, LumpOptions, LumpStats};
pub use multival_par::Workers;
pub use phase_type::Delay;
pub use to_ctmc::{
    to_ctmc, to_ctmdp, to_ctmdp_lifted, CtmcConversion, CtmdpConversion, NondetPolicy, ToCtmcError,
};
