//! Interactive Markov Chains: states with both *interactive* (labeled,
//! instantaneous, synchronizable) and *Markovian* (exponentially timed)
//! transitions — the performance-evaluation formalism of the Multival flow
//! (Hermanns, LNCS 2428).

use multival_lts::{LabelId, LabelTable, Lts};
use std::fmt;

/// Index of an IMC state.
pub type State = u32;

/// An interactive transition: label + target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interactive {
    /// Interned label (τ = `LabelId::TAU`).
    pub label: LabelId,
    /// Target state.
    pub target: State,
}

/// A Markovian transition: rate + target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Markovian {
    /// Exponential rate (positive, finite).
    pub rate: f64,
    /// Target state.
    pub target: State,
}

/// Error constructing an IMC.
#[derive(Debug, Clone, PartialEq)]
pub enum ImcError {
    /// Non-positive or non-finite rate.
    BadRate {
        /// Source state.
        state: State,
        /// Offending rate.
        rate: f64,
    },
    /// Out-of-range state index.
    BadState(State),
}

impl fmt::Display for ImcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImcError::BadRate { state, rate } => {
                write!(f, "invalid rate {rate} from state {state}")
            }
            ImcError::BadState(s) => write!(f, "state {s} out of range"),
        }
    }
}

impl std::error::Error for ImcError {}

/// An Interactive Markov Chain.
///
/// # Examples
///
/// A one-place queue with exponential arrivals and a visible `GET` action:
///
/// ```
/// use multival_imc::ImcBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ImcBuilder::new();
/// let empty = b.add_state();
/// let full = b.add_state();
/// b.markovian(empty, full, 1.5)?;   // arrival
/// b.interactive(full, "GET", empty); // handover
/// let imc = b.build(empty);
/// assert_eq!(imc.num_states(), 2);
/// assert_eq!(imc.markovian_from(empty).len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Imc {
    labels: LabelTable,
    initial: State,
    interactive: Vec<Vec<Interactive>>,
    markovian: Vec<Vec<Markovian>>,
}

impl Imc {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.interactive.len()
    }

    /// Initial state.
    pub fn initial(&self) -> State {
        self.initial
    }

    /// The label table of interactive transitions.
    pub fn labels(&self) -> &LabelTable {
        &self.labels
    }

    /// Interactive transitions of `s`.
    pub fn interactive_from(&self, s: State) -> &[Interactive] {
        &self.interactive[s as usize]
    }

    /// Markovian transitions of `s`.
    pub fn markovian_from(&self, s: State) -> &[Markovian] {
        &self.markovian[s as usize]
    }

    /// Total number of interactive transitions.
    pub fn num_interactive(&self) -> usize {
        self.interactive.iter().map(Vec::len).sum()
    }

    /// Total number of Markovian transitions.
    pub fn num_markovian(&self) -> usize {
        self.markovian.iter().map(Vec::len).sum()
    }

    /// Does `s` have an outgoing τ transition? (Such states are *unstable*:
    /// under maximal progress their Markovian transitions never fire.)
    pub fn has_tau(&self, s: State) -> bool {
        self.interactive[s as usize].iter().any(|t| t.label.is_tau())
    }

    /// Does the IMC still have *visible* (non-τ) interactive transitions?
    pub fn has_visible(&self) -> bool {
        self.interactive.iter().flatten().any(|t| !t.label.is_tau())
    }

    /// The visible label names still present (sorted, deduplicated).
    pub fn visible_labels(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .interactive
            .iter()
            .flatten()
            .filter(|t| !t.label.is_tau())
            .map(|t| self.labels.name(t.label).to_owned())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Exit rate of `s` (sum of Markovian rates).
    pub fn exit_rate(&self, s: State) -> f64 {
        self.markovian[s as usize].iter().map(|t| t.rate).sum()
    }

    /// Short summary string.
    pub fn summary(&self) -> String {
        format!(
            "imc{{states: {}, interactive: {}, markovian: {}}}",
            self.num_states(),
            self.num_interactive(),
            self.num_markovian()
        )
    }

    /// Converts a pure LTS into an IMC with no Markovian transitions.
    pub fn from_lts(lts: &Lts) -> Imc {
        let mut b = ImcBuilder::new();
        for _ in 0..lts.num_states() {
            b.add_state();
        }
        for (s, l, t) in lts.iter_transitions() {
            let name = lts.labels().name(l).to_owned();
            b.interactive(s, &name, t);
        }
        b.build(lts.initial())
    }

    /// Projects the interactive part onto an LTS (Markovian transitions are
    /// rendered as pseudo-labels `rate <λ>` — the CADP BCG convention).
    pub fn to_lts(&self) -> Lts {
        let mut b = multival_lts::LtsBuilder::new();
        for _ in 0..self.num_states() {
            b.add_state();
        }
        for s in 0..self.num_states() as State {
            for t in self.interactive_from(s) {
                let name = self.labels.name(t.label).to_owned();
                b.add_transition(s, &name, t.target);
            }
            for m in self.markovian_from(s) {
                b.add_transition(s, &format!("rate {}", m.rate), m.target);
            }
        }
        b.build(self.initial)
    }

    /// Restricts to states reachable from the initial state (BFS order).
    pub fn reachable(&self) -> Imc {
        let n = self.num_states();
        let mut map: Vec<Option<State>> = vec![None; n];
        let mut order: Vec<State> = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        map[self.initial as usize] = Some(0);
        order.push(self.initial);
        queue.push_back(self.initial);
        while let Some(s) = queue.pop_front() {
            let visit = |t: State,
                         map: &mut Vec<Option<State>>,
                         order: &mut Vec<State>,
                         queue: &mut std::collections::VecDeque<State>| {
                if map[t as usize].is_none() {
                    map[t as usize] = Some(order.len() as State);
                    order.push(t);
                    queue.push_back(t);
                }
            };
            for t in self.interactive_from(s) {
                visit(t.target, &mut map, &mut order, &mut queue);
            }
            for m in self.markovian_from(s) {
                visit(m.target, &mut map, &mut order, &mut queue);
            }
        }
        let mut b = ImcBuilder { labels: self.labels.clone(), ..ImcBuilder::new() };
        for _ in 0..order.len() {
            b.add_state();
        }
        for (new_s, &old_s) in order.iter().enumerate() {
            for t in self.interactive_from(old_s) {
                b.interactive_id(new_s as State, t.label, map[t.target as usize].unwrap());
            }
            for m in self.markovian_from(old_s) {
                b.markovian(new_s as State, map[m.target as usize].unwrap(), m.rate)
                    .expect("rates already validated");
            }
        }
        b.build(0)
    }
}

/// Incremental builder for [`Imc`].
#[derive(Debug, Clone, Default)]
pub struct ImcBuilder {
    labels: LabelTable,
    interactive: Vec<Vec<Interactive>>,
    markovian: Vec<Vec<Markovian>>,
}

impl ImcBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ImcBuilder { labels: LabelTable::new(), interactive: Vec::new(), markovian: Vec::new() }
    }

    /// Allocates a fresh state.
    pub fn add_state(&mut self) -> State {
        self.interactive.push(Vec::new());
        self.markovian.push(Vec::new());
        (self.interactive.len() - 1) as State
    }

    /// Number of states so far.
    pub fn num_states(&self) -> usize {
        self.interactive.len()
    }

    /// Adds an interactive transition (`"i"`/`"tau"` denote τ).
    ///
    /// # Panics
    ///
    /// Panics if a state is out of range.
    pub fn interactive(&mut self, from: State, label: &str, to: State) {
        let id = self.labels.intern(label);
        self.interactive_id(from, id, to);
    }

    /// Adds an interactive transition with a pre-interned label.
    ///
    /// # Panics
    ///
    /// Panics if a state is out of range.
    pub fn interactive_id(&mut self, from: State, label: LabelId, to: State) {
        assert!((from as usize) < self.interactive.len(), "source state out of range");
        assert!((to as usize) < self.interactive.len(), "target state out of range");
        self.interactive[from as usize].push(Interactive { label, target: to });
    }

    /// Adds a Markovian transition.
    ///
    /// # Errors
    ///
    /// Returns [`ImcError`] for invalid rates or out-of-range states.
    pub fn markovian(&mut self, from: State, to: State, rate: f64) -> Result<(), ImcError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ImcError::BadRate { state: from, rate });
        }
        if from as usize >= self.interactive.len() {
            return Err(ImcError::BadState(from));
        }
        if to as usize >= self.interactive.len() {
            return Err(ImcError::BadState(to));
        }
        self.markovian[from as usize].push(Markovian { rate, target: to });
        Ok(())
    }

    /// Interns a label for reuse.
    pub fn intern(&mut self, label: &str) -> LabelId {
        self.labels.intern(label)
    }

    /// Finalizes the IMC.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is out of range for a non-empty IMC.
    pub fn build(mut self, initial: State) -> Imc {
        if self.interactive.is_empty() {
            self.add_state();
        }
        assert!((initial as usize) < self.interactive.len(), "initial state out of range");
        Imc {
            labels: self.labels,
            initial,
            interactive: self.interactive,
            markovian: self.markovian,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multival_lts::equiv::lts_from_triples;

    #[test]
    fn builder_roundtrip() {
        let mut b = ImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.interactive(s0, "GO", s1);
        b.markovian(s1, s0, 2.0).unwrap();
        let imc = b.build(s0);
        assert_eq!(imc.num_states(), 2);
        assert_eq!(imc.num_interactive(), 1);
        assert_eq!(imc.num_markovian(), 1);
        assert!((imc.exit_rate(s1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bad_rate_rejected() {
        let mut b = ImcBuilder::new();
        let s = b.add_state();
        assert!(matches!(b.markovian(s, s, 0.0), Err(ImcError::BadRate { .. })));
        assert!(matches!(b.markovian(s, s, f64::INFINITY), Err(ImcError::BadRate { .. })));
    }

    #[test]
    fn from_lts_preserves_structure() {
        let lts = lts_from_triples(&[(0, "a", 1), (1, "i", 0)]);
        let imc = Imc::from_lts(&lts);
        assert_eq!(imc.num_states(), 2);
        assert_eq!(imc.num_interactive(), 2);
        assert_eq!(imc.num_markovian(), 0);
        assert!(imc.has_tau(1));
        assert!(imc.has_visible());
    }

    #[test]
    fn to_lts_renders_rates() {
        let mut b = ImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.markovian(s0, s1, 1.5).unwrap();
        let lts = b.build(s0).to_lts();
        assert!(lts.labels().lookup("rate 1.5").is_some());
    }

    #[test]
    fn visible_labels_sorted_unique() {
        let mut b = ImcBuilder::new();
        let s = b.add_state();
        b.interactive(s, "B", s);
        b.interactive(s, "A", s);
        b.interactive(s, "B", s);
        b.interactive(s, "i", s);
        let imc = b.build(s);
        assert_eq!(imc.visible_labels(), vec!["A", "B"]);
    }

    #[test]
    fn reachable_prunes() {
        let mut b = ImcBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let _orphan = b.add_state();
        b.markovian(s0, s1, 1.0).unwrap();
        let imc = b.build(s0).reachable();
        assert_eq!(imc.num_states(), 2);
    }
}
