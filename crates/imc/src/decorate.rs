//! Delay decoration: turning a functional LTS into an IMC by attaching
//! phase-type delays to gates.
//!
//! This is the "direct" style of the paper's §4 (insert stochastic
//! transitions into the model); the *compositional* style — synchronizing
//! with an auxiliary delay process — is available through
//! [`crate::phase_type::Delay::to_imc_process`] plus [`crate::ops::compose`].

use crate::imc::{Imc, ImcBuilder, State};
use crate::phase_type::Delay;
use multival_lts::label::gate_of;
use multival_lts::Lts;
use std::collections::HashMap;

/// Turns `lts` into an IMC, inserting the mapped delay *before* every
/// transition whose gate appears in `delays`. Transitions on unmapped gates
/// stay interactive (instantaneous).
///
/// Each decorated transition `s --G--> t` becomes
/// `s --(phase chain)--> • --G--> t`, with the first phase starting at `s`
/// itself: competing decorated transitions from one state *race* through
/// their first phases, the GSPN-style interpretation.
///
/// State numbering invariant: the original LTS states keep their ids
/// (`0..lts.num_states()`); chain states are appended after them. Callers
/// rely on this to map performance measures back to functional states.
///
/// # Examples
///
/// ```
/// use multival_imc::{decorate::decorate, phase_type::Delay};
/// use multival_lts::equiv::lts_from_triples;
/// use std::collections::HashMap;
///
/// let lts = lts_from_triples(&[(0, "WORK", 1), (1, "DONE", 0)]);
/// let mut delays = HashMap::new();
/// delays.insert("WORK".to_owned(), Delay::Exponential { rate: 2.0 });
/// let imc = decorate(&lts, &delays);
/// assert_eq!(imc.num_markovian(), 1);
/// assert_eq!(imc.num_interactive(), 2); // WORK + DONE stay visible
/// ```
pub fn decorate(lts: &Lts, delays: &HashMap<String, Delay>) -> Imc {
    let mut b = ImcBuilder::new();
    for _ in 0..lts.num_states() {
        b.add_state();
    }
    for (s, l, t) in lts.iter_transitions() {
        let name = lts.labels().name(l).to_owned();
        let gate = gate_of(&name).to_owned();
        match delays.get(&gate) {
            None => b.interactive(s, &name, t),
            Some(delay) => inline_delay(&mut b, s, delay, &name, t),
        }
    }
    // No `.reachable()` renumbering: decoration preserves reachability of
    // every state, and callers depend on the id alignment (see above).
    b.build(lts.initial())
}

/// Emits the phase chain of `delay` into `b`, starting from `from`; the
/// chain ends with an interactive `emit_label` transition into `target`.
fn inline_delay(b: &mut ImcBuilder, from: State, delay: &Delay, emit_label: &str, target: State) {
    match delay {
        Delay::Exponential { rate } => {
            let done = b.add_state();
            b.markovian(from, done, *rate).expect("validated rate");
            b.interactive(done, emit_label, target);
        }
        Delay::Erlang { phases, rate } => {
            let mut prev = from;
            for _ in 0..*phases {
                let next = b.add_state();
                b.markovian(prev, next, *rate).expect("validated rate");
                prev = next;
            }
            b.interactive(prev, emit_label, target);
        }
        Delay::HypoExponential { rates } => {
            let mut prev = from;
            for &r in rates {
                let next = b.add_state();
                b.markovian(prev, next, r).expect("validated rate");
                prev = next;
            }
            b.interactive(prev, emit_label, target);
        }
        Delay::Deterministic { .. } => {
            inline_delay(b, from, &delay.resolved(), emit_label, target);
        }
        Delay::HyperExponential { branches } => {
            // Fast dispatch race selects the branch with probability p_i
            // (see phase_type for the encoding discussion).
            let fast = 1e6 * branches.iter().map(|&(_, r)| r).fold(1.0, f64::max);
            for &(p, r) in branches {
                let phase = b.add_state();
                let done = b.add_state();
                b.markovian(from, phase, p * fast).expect("validated rate");
                b.markovian(phase, done, r).expect("validated rate");
                b.interactive(done, emit_label, target);
            }
        }
    }
}

/// Like [`decorate`], but the delay is chosen per *full label* (not per
/// gate): `f` receives the complete label text (e.g. `"FLUSH !0 !2"`) and
/// returns its delay, or `None` to keep the transition interactive. This is
/// how topology-dependent latencies are attached (the rate of a transfer
/// depends on the hop distance encoded in the label's offers).
pub fn decorate_by_label(lts: &Lts, f: impl FnMut(&str) -> Option<Delay>) -> Imc {
    decorate_by_label_with_map(lts, f).0
}

/// Like [`decorate_by_label`], additionally returning the *attribution map*:
/// for every IMC state, the functional LTS state it belongs to. Original
/// states map to themselves; every phase state added for a transition
/// `s --G--> t` is attributed to `s` (an item "in transfer" still occupies
/// its source state). Needed to compute occupancy distributions when
/// multi-phase (Erlang/hypo) delays make intermediate phase states tangible.
pub fn decorate_by_label_with_map(
    lts: &Lts,
    mut f: impl FnMut(&str) -> Option<Delay>,
) -> (Imc, Vec<u32>) {
    let mut b = ImcBuilder::new();
    for _ in 0..lts.num_states() {
        b.add_state();
    }
    let mut attribution: Vec<u32> = (0..lts.num_states() as u32).collect();
    for (s, l, t) in lts.iter_transitions() {
        let name = lts.labels().name(l).to_owned();
        match f(&name) {
            None => b.interactive(s, &name, t),
            Some(delay) => {
                let before = b.num_states();
                inline_delay(&mut b, s, &delay, &name, t);
                for _ in before..b.num_states() {
                    attribution.push(s);
                }
            }
        }
    }
    (b.build(lts.initial()), attribution)
}

/// Convenience: decorate with per-gate exponential rates.
pub fn decorate_rates(lts: &Lts, rates: &HashMap<String, f64>) -> Imc {
    let delays: HashMap<String, Delay> =
        rates.iter().map(|(g, &r)| (g.clone(), Delay::Exponential { rate: r })).collect();
    decorate(lts, &delays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use multival_lts::equiv::lts_from_triples;

    #[test]
    fn erlang_decoration_inserts_phases() {
        let lts = lts_from_triples(&[(0, "WORK", 1)]);
        let mut delays = HashMap::new();
        delays.insert("WORK".to_owned(), Delay::fixed(1.0, 4));
        let imc = decorate(&lts, &delays);
        // 2 original + 4 phase targets = 6 states; the chain starts at 0.
        assert_eq!(imc.num_markovian(), 4);
        assert_eq!(imc.num_states(), 6);
    }

    #[test]
    fn deterministic_decoration_fits_then_inlines() {
        let lts = lts_from_triples(&[(0, "WORK", 1)]);
        let mut delays = HashMap::new();
        delays.insert("WORK".to_owned(), Delay::deterministic(1.0, 0.2));
        let imc = decorate(&lts, &delays);
        let k = Delay::deterministic(1.0, 0.2).num_phases();
        assert_eq!(imc.num_markovian(), k);
        assert_eq!(imc.num_states(), 2 + k);
    }

    #[test]
    fn offers_preserved_in_emitted_label() {
        let lts = lts_from_triples(&[(0, "PUSH !3", 1)]);
        let mut delays = HashMap::new();
        delays.insert("PUSH".to_owned(), Delay::Exponential { rate: 1.0 });
        let imc = decorate(&lts, &delays);
        assert!(imc.visible_labels().contains(&"PUSH !3".to_owned()));
    }

    #[test]
    fn unmapped_gates_stay_interactive() {
        let lts = lts_from_triples(&[(0, "A", 1), (1, "B", 0)]);
        let mut delays = HashMap::new();
        delays.insert("A".to_owned(), Delay::Exponential { rate: 1.0 });
        let imc = decorate(&lts, &delays);
        assert_eq!(imc.num_markovian(), 1);
        // B untouched: a direct interactive transition.
        let b_trans = (0..imc.num_states() as u32)
            .flat_map(|s| imc.interactive_from(s).iter())
            .filter(|t| imc.labels().name(t.label) == "B")
            .count();
        assert_eq!(b_trans, 1);
    }

    #[test]
    fn decorate_rates_shorthand() {
        let lts = lts_from_triples(&[(0, "A", 1), (1, "B", 0)]);
        let mut rates = HashMap::new();
        rates.insert("A".to_owned(), 2.0);
        rates.insert("B".to_owned(), 3.0);
        let imc = decorate_rates(&lts, &rates);
        assert_eq!(imc.num_markovian(), 2);
    }

    #[test]
    fn choice_between_decorated_actions_races() {
        // 0 --A--> 1, 0 --B--> 2 with exp delays: both first phases start
        // at state 0, so the delays *race* (no spurious τ choice).
        let lts = lts_from_triples(&[(0, "A", 1), (0, "B", 2)]);
        let mut rates = HashMap::new();
        rates.insert("A".to_owned(), 1.0);
        rates.insert("B".to_owned(), 1.0);
        let imc = decorate_rates(&lts, &rates);
        assert_eq!(imc.interactive_from(imc.initial()).len(), 0);
        assert_eq!(imc.markovian_from(imc.initial()).len(), 2);
    }
}
