//! A 2×2 mesh NoC built from four XY routers, link buffers, and an
//! injection-limiting token pool — the FAUST platform view one level above
//! the single router of [`crate::faust::router`].
//!
//! The study demonstrates two results the Multival flow produces
//! automatically:
//!
//! * with **uncontrolled injection** the mesh *deadlocks*: single-buffer
//!   routers facing each other across full link buffers form a classic
//!   head-of-line blocking cycle (witness trace found by BFS);
//! * with injection limited to 2 outstanding packets (end-to-end flow
//!   control, as FAUST's higher-level protocols provide) the mesh is
//!   deadlock-free and every packet is delivered at its destination only.
//!
//! Router ids: 0=(0,0), 1=(1,0), 2=(0,1), 3=(1,1). XY routing: correct the
//! x coordinate first, then y. Link-buffer gates `lAB` carry a packet from
//! router A's output into router B's input.

use multival_lts::analysis::{deadlock_witness, find_action, Trace};
use multival_lts::Lts;
use multival_pa::{explore, parse_spec, ExploreOptions, Spec};
use std::fmt::Write as _;

/// Coordinates of router `r` in the 2×2 mesh.
fn coords(r: usize) -> (usize, usize) {
    (r % 2, r / 2)
}

/// The XY next hop from router `r` toward destination `d` (`None` when
/// `r == d`).
pub fn xy_next_hop(r: usize, d: usize) -> Option<usize> {
    let (rx, ry) = coords(r);
    let (dx, dy) = coords(d);
    if rx != dx {
        Some(if dx > rx { r + 1 } else { r - 1 })
    } else if ry != dy {
        Some(if dy > ry { r + 2 } else { r - 2 })
    } else {
        None
    }
}

/// Directed links of the 2×2 mesh (pairs of adjacent routers).
pub const LINKS: [(usize, usize); 8] =
    [(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (2, 0), (1, 3), (3, 1)];

/// Generates the mini-LOTOS source of the mesh.
///
/// `max_in_flight = None` leaves injection uncontrolled (the deadlocking
/// variant); `Some(k)` composes a k-token end-to-end flow-control pool.
pub fn mesh_source(max_in_flight: Option<usize>) -> String {
    let mut src = String::new();

    // The routing body of router r after receiving a packet bound to `d`.
    let route_body = |r: usize, gates: &str| -> String {
        let mut body = String::new();
        for d in 0..4 {
            let sep = if d == 0 { "   " } else { " []" };
            match xy_next_hop(r, d) {
                None => {
                    let _ = writeln!(body, "    {sep} [d == {d}] -> dlv{r} !d; R{r}[{gates}]");
                }
                Some(next) => {
                    let _ = writeln!(body, "    {sep} [d == {d}] -> l{r}{next} !d; R{r}[{gates}]");
                }
            }
        }
        body
    };

    for r in 0..4 {
        // Gate list: injection, delivery, out-links, in-links.
        let outs: Vec<String> =
            LINKS.iter().filter(|&&(a, _)| a == r).map(|&(a, b)| format!("l{a}{b}")).collect();
        let ins: Vec<String> =
            LINKS.iter().filter(|&&(_, b)| b == r).map(|&(a, b)| format!("i{a}{b}")).collect();
        let gates = format!("inj{r}, dlv{r}, {}, {}", outs.join(", "), ins.join(", "));
        let _ = writeln!(src, "process R{r}[{gates}] :=");
        let _ = writeln!(src, "     inj{r} ?d:int 0..3;\n    (");
        let _ = write!(src, "{}", route_body(r, &gates));
        let _ = writeln!(src, "    )");
        for i in &ins {
            let _ = writeln!(src, " [] {i} ?d:int 0..3;\n    (");
            let _ = write!(src, "{}", route_body(r, &gates));
            let _ = writeln!(src, "    )");
        }
        let _ = writeln!(src, "endproc\n");
    }

    // One-place link buffers: accept from lAB, hand over on iAB.
    let _ = writeln!(
        src,
        "process Buf[takein, handout] :=\n    takein ?d:int 0..3; handout !d; Buf[takein, handout]\nendproc\n"
    );

    if max_in_flight.is_some() {
        let _ = writeln!(
            src,
            "process Pool[inj0, inj1, inj2, inj3, dlv0, dlv1, dlv2, dlv3](t: int 0..8, k: int 0..8) :="
        );
        for r in 0..4 {
            let sep = if r == 0 { "   " } else { " []" };
            let _ = writeln!(
                src,
                "    {sep} [t < k] -> inj{r} ?x:int 0..3; Pool[inj0, inj1, inj2, inj3, dlv0, dlv1, dlv2, dlv3](t + 1, k)"
            );
        }
        for r in 0..4 {
            let _ = writeln!(
                src,
                "     [] [t > 0] -> dlv{r} ?x:int 0..3; Pool[inj0, inj1, inj2, inj3, dlv0, dlv1, dlv2, dlv3](t - 1, k)"
            );
        }
        let _ = writeln!(src, "endproc\n");
    }

    // Top behaviour: routers ||| each other, synced with the buffers on the
    // link gates, optionally synced with the pool on inj/dlv; links hidden.
    let router_insts: Vec<String> = (0..4)
        .map(|r| {
            let outs: Vec<String> =
                LINKS.iter().filter(|&&(a, _)| a == r).map(|&(a, b)| format!("l{a}{b}")).collect();
            let ins: Vec<String> =
                LINKS.iter().filter(|&&(_, b)| b == r).map(|&(a, b)| format!("i{a}{b}")).collect();
            format!("R{r}[inj{r}, dlv{r}, {}, {}]", outs.join(", "), ins.join(", "))
        })
        .collect();
    let buf_insts: Vec<String> =
        LINKS.iter().map(|&(a, b)| format!("Buf[l{a}{b}, i{a}{b}]")).collect();
    let link_gates: Vec<String> =
        LINKS.iter().flat_map(|&(a, b)| [format!("l{a}{b}"), format!("i{a}{b}")]).collect();

    let _ = writeln!(src, "behaviour");
    let _ = writeln!(src, "  hide {} in", link_gates.join(", "));
    let core = format!(
        "( ({})\n      |[{}]|\n      ({}) )",
        router_insts.join("\n   ||| "),
        link_gates.join(", "),
        buf_insts.join(" ||| ")
    );
    match max_in_flight {
        None => {
            let _ = writeln!(src, "    {core}");
        }
        Some(k) => {
            let _ = writeln!(src, "    ( {core}");
            let _ = writeln!(
                src,
                "      |[inj0, inj1, inj2, inj3, dlv0, dlv1, dlv2, dlv3]|\n      Pool[inj0, inj1, inj2, inj3, dlv0, dlv1, dlv2, dlv3](0, {k}) )"
            );
        }
    }
    src
}

/// Parses the mesh model.
///
/// # Errors
///
/// Propagates parser errors (the generator is tested).
pub fn mesh_spec(max_in_flight: Option<usize>) -> Result<Spec, multival_pa::ParseError> {
    parse_spec(&mesh_source(max_in_flight))
}

/// The mesh as a component [`Network`](multival_lts::pipeline::Network)
/// for the smart reduction pipeline:
/// four routers, the link buffers, and (when flow-controlled) the
/// injection pool, extracted from the spec's top behaviour via
/// [`multival_pa::extract_network`], with the link gates hidden.
///
/// # Errors
///
/// Propagates parse and extraction errors (the generated tree is
/// EXP.OPEN-well-formed, so extraction succeeds on the shipped source).
pub fn mesh_network(
    max_in_flight: Option<usize>,
    options: &ExploreOptions,
) -> Result<multival_lts::pipeline::Network, Box<dyn std::error::Error>> {
    let spec = mesh_spec(max_in_flight)?;
    Ok(multival_pa::extract_network(&spec, options)?)
}

/// The mesh verification verdicts.
#[derive(Debug, Clone)]
pub struct MeshVerification {
    /// Injection limit used (`None` = uncontrolled).
    pub max_in_flight: Option<usize>,
    /// States explored.
    pub states: usize,
    /// Transitions explored.
    pub transitions: usize,
    /// Deadlock witness, if any.
    pub deadlock: Option<Trace>,
    /// Misdelivery witness (`dlvR !d` with `d ≠ R`), if any.
    pub misdelivery: Option<Trace>,
}

/// Explores and verifies the mesh.
///
/// # Errors
///
/// Propagates parse/exploration errors.
pub fn verify_mesh(
    max_in_flight: Option<usize>,
    options: &ExploreOptions,
) -> Result<MeshVerification, Box<dyn std::error::Error>> {
    let lts: Lts = explore(&mesh_spec(max_in_flight)?, options)?.lts;
    let deadlock = deadlock_witness(&lts);
    let misdelivery = find_action(&lts, |label| {
        let Some(rest) = label.strip_prefix("dlv") else { return false };
        let mut parts = rest.split(" !");
        matches!((parts.next(), parts.next()), (Some(r), Some(d)) if r != d)
    });
    Ok(MeshVerification {
        max_in_flight,
        states: lts.num_states(),
        transitions: lts.num_transitions(),
        deadlock,
        misdelivery,
    })
}

/// The unique packet value carried by each directed link under
/// bit-complement traffic (router `r` sends to `3 - r`) with XY routing.
///
/// Every link of the 2×2 mesh lies on exactly one of the four flows, so
/// the map is total over [`LINKS`] and each link carries a single value.
fn complement_link_values() -> std::collections::BTreeMap<(usize, usize), usize> {
    let mut values = std::collections::BTreeMap::new();
    for r in 0..4 {
        let d = 3 - r;
        let mut at = r;
        while let Some(next) = xy_next_hop(at, d) {
            values.insert((at, next), d);
            at = next;
        }
    }
    debug_assert_eq!(values.len(), LINKS.len());
    values
}

/// Generates the mini-LOTOS source of the mesh under *bit-complement*
/// traffic: every router injects packets for the opposite corner
/// (`r → 3 - r`), the permutation pattern NoC evaluations use as the
/// worst-case stress load for XY routing.
///
/// Because each directed link then carries exactly one packet value, the
/// routers and buffers specialize to tiny processes — the case-study
/// instance the reduction pipeline is benchmarked on (experiment E11).
pub fn complement_source() -> String {
    let values = complement_link_values();
    let mut src = String::new();

    // One buffer process per packet value (a link only ever carries one).
    for v in 0..4 {
        let _ = writeln!(
            src,
            "process Buf{v}[takein, handout] := takein !{v}; handout !{v}; Buf{v}[takein, handout] endproc\n"
        );
    }

    for r in 0..4 {
        let outs: Vec<String> =
            LINKS.iter().filter(|&&(a, _)| a == r).map(|&(a, b)| format!("l{a}{b}")).collect();
        let ins: Vec<(usize, usize)> = LINKS.iter().filter(|&&(_, b)| b == r).copied().collect();
        let in_gates: Vec<String> = ins.iter().map(|&(a, b)| format!("i{a}{b}")).collect();
        let gates = format!("inj{r}, dlv{r}, {}, {}", outs.join(", "), in_gates.join(", "));
        let _ = writeln!(src, "process R{r}[{gates}] :=");
        let d = 3 - r;
        let next = xy_next_hop(r, d).expect("complement traffic never self-delivers");
        let _ = writeln!(src, "     inj{r} !{d}; l{r}{next} !{d}; R{r}[{gates}]");
        for &(a, b) in &ins {
            let v = values[&(a, b)];
            match xy_next_hop(r, v) {
                None => {
                    let _ = writeln!(src, "  [] i{a}{b} !{v}; dlv{r} !{v}; R{r}[{gates}]");
                }
                Some(hop) => {
                    let _ = writeln!(src, "  [] i{a}{b} !{v}; l{r}{hop} !{v}; R{r}[{gates}]");
                }
            }
        }
        let _ = writeln!(src, "endproc\n");
    }

    let router_insts: Vec<String> = (0..4)
        .map(|r| {
            let outs: Vec<String> =
                LINKS.iter().filter(|&&(a, _)| a == r).map(|&(a, b)| format!("l{a}{b}")).collect();
            let ins: Vec<String> =
                LINKS.iter().filter(|&&(_, b)| b == r).map(|&(a, b)| format!("i{a}{b}")).collect();
            format!("R{r}[inj{r}, dlv{r}, {}, {}]", outs.join(", "), ins.join(", "))
        })
        .collect();
    let buf_insts: Vec<String> =
        LINKS.iter().map(|&(a, b)| format!("Buf{}[l{a}{b}, i{a}{b}]", values[&(a, b)])).collect();
    let link_gates: Vec<String> =
        LINKS.iter().flat_map(|&(a, b)| [format!("l{a}{b}"), format!("i{a}{b}")]).collect();

    let _ = writeln!(src, "behaviour");
    let _ = writeln!(src, "  hide {} in", link_gates.join(", "));
    let _ = writeln!(
        src,
        "    ( ({})\n      |[{}]|\n      ({}) )",
        router_insts.join("\n   ||| "),
        link_gates.join(", "),
        buf_insts.join(" ||| ")
    );
    src
}

/// Parses the bit-complement mesh model.
///
/// # Errors
///
/// Propagates parser errors (the generator is tested).
pub fn complement_spec() -> Result<Spec, multival_pa::ParseError> {
    parse_spec(&complement_source())
}

/// The bit-complement mesh as a pipeline
/// [`Network`](multival_lts::pipeline::Network): four specialized
/// routers and eight single-value link buffers, link gates hidden.
///
/// This is the FAUST case-study network of experiment E11: small enough
/// to minimize per stage in milliseconds, yet its monolithic product is
/// strictly larger than every intermediate the smart order visits.
///
/// # Panics
///
/// Panics only if the embedded source stops parsing or extracting
/// (covered by tests).
pub fn complement_network() -> multival_lts::pipeline::Network {
    let spec = complement_spec().expect("embedded complement source parses");
    multival_pa::extract_network(&spec, &ExploreOptions::default())
        .unwrap_or_else(|e| panic!("embedded complement source must extract: {e}"))
}

/// Generates a *single-shot* mesh source: an environment injects exactly
/// one packet for `dest` at router 0, all other injections are blocked, and
/// link gates stay **visible** so the performance layer can attach per-hop
/// delays.
pub fn single_packet_source(dest: usize) -> String {
    assert!(dest < 4, "destination must be a router id");
    // Reuse the process definitions of the plain mesh, but rebuild the top
    // behaviour without hiding and with the one-shot environment.
    let full = mesh_source(None);
    let processes: String =
        full.split("behaviour").next().expect("source has a behaviour section").to_owned();
    let mut src = processes;
    let _ = writeln!(
        src,
        "process Env[inj] := inj !{dest}; stop endproc
"
    );
    let router_insts: Vec<String> = (0..4)
        .map(|r| {
            let outs: Vec<String> =
                LINKS.iter().filter(|&&(a, _)| a == r).map(|&(a, b)| format!("l{a}{b}")).collect();
            let ins: Vec<String> =
                LINKS.iter().filter(|&&(_, b)| b == r).map(|&(a, b)| format!("i{a}{b}")).collect();
            format!("R{r}[inj{r}, dlv{r}, {}, {}]", outs.join(", "), ins.join(", "))
        })
        .collect();
    let buf_insts: Vec<String> =
        LINKS.iter().map(|&(a, b)| format!("Buf[l{a}{b}, i{a}{b}]")).collect();
    let link_gates: Vec<String> =
        LINKS.iter().flat_map(|&(a, b)| [format!("l{a}{b}"), format!("i{a}{b}")]).collect();
    let _ = writeln!(src, "behaviour");
    let _ = writeln!(
        src,
        "    ( ( ({})
        |[{}]|
        ({}) )",
        router_insts.join(
            "
   ||| "
        ),
        link_gates.join(", "),
        buf_insts.join(" ||| ")
    );
    let _ = writeln!(
        src,
        "      |[inj0, inj1, inj2, inj3]|
      Env[inj0] )"
    );
    src
}

/// Mean injection-to-delivery latency of a single packet from router 0 to
/// `dest`, with exponential per-hop link delays of rate `link_rate` and a
/// local delivery delay of rate `local_rate` — the FAUST-side performance
/// measure (latency grows with XY hop count).
///
/// # Errors
///
/// Propagates parse/exploration/conversion/solver errors.
pub fn single_packet_latency(
    dest: usize,
    link_rate: f64,
    local_rate: f64,
) -> Result<f64, Box<dyn std::error::Error>> {
    let (conv, done) = single_packet_chain(dest, link_rate, local_rate)?;
    Ok(multival_ctmc::absorb::mean_time_to_target(
        &conv.ctmc,
        &done,
        &multival_ctmc::SolveOptions::default(),
    )?)
}

/// Builds the absorbing delivery CTMC behind [`single_packet_latency`] and
/// its quiescent (delivered) states — exposed so the statistical engine and
/// the golden fixtures can cross-validate on the same chain.
///
/// # Errors
///
/// Propagates parse/exploration/conversion errors; fails if the packet
/// never quiesces.
pub fn single_packet_chain(
    dest: usize,
    link_rate: f64,
    local_rate: f64,
) -> Result<(multival_imc::CtmcConversion, Vec<usize>), Box<dyn std::error::Error>> {
    use multival_imc::decorate::decorate_by_label;
    use multival_imc::ops::hide_all;
    use multival_imc::phase_type::Delay;
    use multival_imc::to_ctmc::{to_ctmc, NondetPolicy};

    let spec = parse_spec(&single_packet_source(dest))?;
    let explored = explore(&spec, &ExploreOptions::default())?;
    let lts = &explored.lts;
    let imc = decorate_by_label(lts, |label| {
        let rate = if label.starts_with("dlv") {
            local_rate
        } else if label.starts_with("inj") {
            10.0 * link_rate // injection overhead, fast
        } else {
            link_rate // l/i hop gates
        };
        Some(Delay::Exponential { rate })
    });
    let conv = to_ctmc(&hide_all(&imc), NondetPolicy::Uniform, &[])?;
    // Done = quiescent: the functional deadlock states (packet delivered,
    // environment stopped, everything idle).
    let done: Vec<usize> =
        lts.deadlock_states().into_iter().filter_map(|s| conv.state_map[s as usize]).collect();
    if done.is_empty() {
        return Err("packet never quiesces".into());
    }
    Ok((conv, done))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_routing_function() {
        assert_eq!(xy_next_hop(0, 0), None);
        assert_eq!(xy_next_hop(0, 1), Some(1));
        assert_eq!(xy_next_hop(0, 2), Some(2));
        assert_eq!(xy_next_hop(0, 3), Some(1), "x first");
        assert_eq!(xy_next_hop(1, 3), Some(3));
        assert_eq!(xy_next_hop(3, 0), Some(2), "x first going west");
        assert_eq!(xy_next_hop(2, 1), Some(3));
    }

    #[test]
    fn mesh_source_parses() {
        assert!(mesh_spec(None).is_ok());
        assert!(mesh_spec(Some(2)).is_ok());
    }

    #[test]
    fn flow_controlled_mesh_is_deadlock_free_and_correct() {
        let v = verify_mesh(Some(2), &ExploreOptions::default()).expect("verifies");
        assert!(v.deadlock.is_none(), "witness: {:?}", v.deadlock);
        assert!(v.misdelivery.is_none(), "witness: {:?}", v.misdelivery);
        assert!(v.states > 100, "nontrivial interleaving: {}", v.states);
    }

    #[test]
    fn mesh_network_extracts_with_the_expected_shape() {
        // Routers, link buffers, and the injection pool all become
        // components; the link gates stay hidden.
        let net = mesh_network(Some(2), &ExploreOptions::default()).expect("extracts");
        assert_eq!(net.components().len(), 13);
        assert_eq!(net.hidden().len(), 2 * LINKS.len());
        // Link gates plus the pooled inj/dlv gates all synchronize.
        assert_eq!(net.sync_gates().len(), 2 * LINKS.len() + 8);
    }

    #[test]
    fn complement_pipeline_beats_monolithic_and_agrees() {
        use multival_lts::io::write_aut;
        use multival_lts::minimize::Equivalence;
        use multival_lts::pipeline::{monolithic, run_pipeline, PipelineOptions};
        use multival_lts::Workers;

        let net = complement_network();
        assert_eq!(net.components().len(), 12);
        let mono = monolithic(&net, Equivalence::Branching, Workers::default());
        let run = run_pipeline(&net, &PipelineOptions::default());
        assert!(run.complete());
        assert_eq!(write_aut(&run.lts), write_aut(&mono.lts));
        assert!(
            run.peak_states() < mono.product_states,
            "pipeline peak {} must undercut the monolithic product {}",
            run.peak_states(),
            mono.product_states
        );
        // The network semantics must agree with exploring the tree whole.
        let whole = explore(&complement_spec().expect("parses"), &ExploreOptions::default())
            .expect("explores")
            .lts;
        assert_eq!(mono.product_states, whole.num_states());
    }

    #[test]
    fn four_packets_suffice_to_deadlock() {
        // The head-of-line blocking cycle needs two opposing packets plus
        // two full link buffers = 4 packets; a pool of 4 keeps the state
        // space small while still exhibiting the deadlock of the
        // uncontrolled mesh.
        let v =
            verify_mesh(Some(4), &ExploreOptions::with_max_states(2_000_000)).expect("verifies");
        let w = v.deadlock.expect("head-of-line blocking cycle must be reachable");
        // The witness must inject opposing traffic.
        assert!(w.iter().any(|l| l.starts_with("inj")), "witness: {w:?}");
    }

    #[test]
    fn latency_scales_with_hops() {
        // dest 1 and 2 are one hop away, dest 3 is two hops: its latency
        // must exceed theirs; symmetric one-hop destinations must tie.
        let l1 = single_packet_latency(1, 4.0, 20.0).expect("analyzes");
        let l2 = single_packet_latency(2, 4.0, 20.0).expect("analyzes");
        let l3 = single_packet_latency(3, 4.0, 20.0).expect("analyzes");
        assert!((l1 - l2).abs() < 1e-9, "symmetric 1-hop: {l1} vs {l2}");
        assert!(l3 > l1 * 1.5, "2 hops must cost more: {l3} vs {l1}");
        // Local delivery to self: dest 0 — no link hops at all.
        let l0 = single_packet_latency(0, 4.0, 20.0).expect("analyzes");
        assert!(l0 < l1, "self delivery cheapest: {l0} vs {l1}");
    }

    #[test]
    fn multi_hop_delivery_happens() {
        // A packet injected at 0 for 3 crosses two hops and is delivered.
        let spec = mesh_spec(Some(1)).expect("parses");
        let lts = explore(&spec, &ExploreOptions::default()).expect("explores").lts;
        let trace = find_action(&lts, |l| l == "dlv3 !3").expect("delivered");
        assert!(
            trace.iter().any(|l| l == "inj0 !3") || trace.iter().any(|l| l.starts_with("inj")),
            "trace: {trace:?}"
        );
    }
}
