//! The FAUST case study (CEA/Leti): an asynchronous Network-on-Chip
//! platform for telecom applications.
//!
//! The paper reports (§3) that "the FAUST NoC router has been verified
//! formally" and that "theoretical results on isochronous forks in
//! asynchronous circuits have been demonstrated automatically":
//!
//! * [`router`] — a 5-port XY-routing router modeled CHP-style (handshake
//!   channels as rendezvous gates) with deadlock-freedom, delivery
//!   correctness, and spec-equivalence verification (experiment E3);
//! * [`noc`] — a 2×2 mesh of routers with link buffers: flow-controlled
//!   injection is deadlock-free, uncontrolled injection exhibits the
//!   head-of-line blocking cycle (witness found automatically);
//! * [`fork`] — the isochronous-fork study: a fork with zero-delay branches
//!   is equivalent to its atomic specification, a fork with a buffering
//!   (non-isochronous) branch is not — with an automatically produced
//!   counterexample trace (experiment E4).

pub mod fork;
pub mod mesh;
pub mod noc;
pub mod router;
