//! The FAUST asynchronous NoC router (experiment E3).
//!
//! A 5-port router (North, East, South, West, Local) with XY routing.
//! Following the CHP→LOTOS translation used in the FAUST verification,
//! each handshake channel is a rendezvous gate; the arbiter for each
//! output port is implicit in the multiway rendezvous (an output port
//! synchronizes with whichever input controller offers a flit first —
//! mutual exclusion for free, as in the asynchronous circuit).
//!
//! Packets are abstracted to their *destination output port* (what XY
//! routing computes from the header coordinates); the verification does not
//! depend on the coordinate arithmetic itself. The model is parametric in
//! the port count: unit tests verify the 3-port instance exhaustively, the
//! experiment harness (release build) verifies the full 5-port instance.

use multival_lts::analysis::{deadlock_witness, find_action, Trace};
use multival_lts::equiv::{equivalent, Verdict};
use multival_lts::minimize::{minimize, Equivalence, ReductionStats};
use multival_lts::ops::hide_all_but;
use multival_lts::Lts;
use multival_mcl::{check, parse_formula};
use multival_pa::{explore, parse_spec, ExploreOptions, Spec};
use std::fmt::Write as _;

/// Port count of the real FAUST router.
pub const FULL_PORTS: usize = 5;

/// Generates the mini-LOTOS source of a `ports`-port router.
///
/// Gates: `in0..in{P-1}` (flit arrival, carrying the destination port),
/// `out0..out{P-1}` (flit departure); internal `f0..f{P-1}` forwarding
/// channels are hidden.
///
/// # Panics
///
/// Panics if `ports < 2` or `ports > 9` (single-digit gate names).
pub fn router_source(ports: usize) -> String {
    assert!((2..=9).contains(&ports), "ports must be in 2..=9");
    let max = ports - 1;
    let fgates: Vec<String> = (0..ports).map(|i| format!("f{i}")).collect();
    let flist = fgates.join(", ");
    let mut src = String::new();
    let _ = writeln!(src, "process InCtl[inp, {flist}] :=\n    inp ?d:int 0..{max};\n    (");
    for d in 0..ports {
        let sep = if d == 0 { " " } else { " []" };
        let _ = writeln!(src, "   {sep} [d == {d}] -> f{d} !d; InCtl[inp, {flist}]");
    }
    let _ = writeln!(src, "    )\nendproc\n");
    let _ = writeln!(
        src,
        "process OutCtl[fwd, outp] :=\n    fwd ?d:int 0..{max}; outp !d; OutCtl[fwd, outp]\nendproc\n"
    );
    let _ = writeln!(src, "behaviour\n  hide {flist} in\n    ( (");
    for i in 0..ports {
        let sep = if i == 0 { "      " } else { "  ||| " };
        let _ = writeln!(src, "    {sep}InCtl[in{i}, {flist}]");
    }
    let _ = writeln!(src, "      )\n      |[{flist}]|\n      (");
    for i in 0..ports {
        let sep = if i == 0 { "      " } else { "  ||| " };
        let _ = writeln!(src, "    {sep}OutCtl[f{i}, out{i}]");
    }
    let _ = writeln!(src, "      )\n    )");
    src
}

/// Parses the router model with the given port count.
///
/// # Errors
///
/// Propagates parser errors (the generator is tested).
pub fn router_spec(ports: usize) -> Result<Spec, multival_pa::ParseError> {
    parse_spec(&router_source(ports))
}

/// The verification verdicts for the router (experiment E3).
#[derive(Debug, Clone)]
pub struct RouterVerification {
    /// Ports of the verified instance.
    pub ports: usize,
    /// State count of the generated router LTS.
    pub states: usize,
    /// Transition count of the generated LTS.
    pub transitions: usize,
    /// `None` when deadlock-free; otherwise the shortest witness.
    pub deadlock: Option<Trace>,
    /// Shortest trace to a misrouted flit (`outJ !d`, `d ≠ J`), if any.
    pub misroute: Option<Trace>,
    /// Every reachable state can still deliver (responsiveness), checked on
    /// the branching-minimized LTS (the property is stutter-insensitive).
    pub delivery_live: bool,
    /// Reduction achieved by branching minimization.
    pub reduction: ReductionStats,
}

/// Generates and verifies a `ports`-port router.
///
/// # Errors
///
/// Propagates parse/exploration errors (the embedded model is tested).
pub fn verify_router(
    ports: usize,
    options: &ExploreOptions,
) -> Result<RouterVerification, Box<dyn std::error::Error>> {
    let spec = router_spec(ports)?;
    let lts = explore(&spec, options)?.lts;
    let deadlock = deadlock_witness(&lts);

    // Misrouting: one BFS over all labels `outJ !d` with d ≠ J.
    let misroute = find_action(&lts, |label| {
        let Some(rest) = label.strip_prefix("out") else { return false };
        let mut parts = rest.split(" !");
        match (parts.next(), parts.next()) {
            (Some(j), Some(d)) => j != d,
            _ => false,
        }
    });

    // Responsiveness on the minimized quotient (same verdict, much smaller).
    let (min, reduction) = minimize(&lts, Equivalence::Branching);
    let live = parse_formula("nu X. (mu Y. <\"out*\"> true or <true> Y) and [true] X")?;
    let delivery_live = check(&min, &live)?.holds;

    Ok(RouterVerification {
        ports,
        states: lts.num_states(),
        transitions: lts.num_transitions(),
        deadlock,
        misroute,
        delivery_live,
        reduction,
    })
}

/// Checks the 2-port router in a *sequential-traffic environment* against
/// its functional specification modulo branching bisimulation: the
/// environment injects one flit on `in0` and waits for its delivery before
/// injecting the next (the single-source, stop-and-wait view); input 1 is
/// blocked. The closed system must be branching-equivalent to the
/// environment's own protocol (inject, then matching delivery).
///
/// # Errors
///
/// Propagates parse/exploration errors.
pub fn router_2x2_spec_equivalence() -> Result<Verdict, Box<dyn std::error::Error>> {
    let implementation = explore(&router_spec(2)?, &ExploreOptions::default())?.lts;
    // Stop-and-wait environment = the specification of the closed system.
    let env = multival_lts::equiv::lts_from_triples(&[
        (0, "in0 !0", 1),
        (1, "out0 !0", 0),
        (0, "in0 !1", 2),
        (2, "out1 !1", 0),
    ]);
    // Block in1 (compose with an empty process synchronizing on in1).
    let blocker = {
        let mut b = multival_lts::LtsBuilder::new();
        let s = b.add_state();
        b.build(s)
    };
    let restricted = multival_lts::ops::compose(
        &implementation,
        &blocker,
        &multival_lts::ops::Sync::on(["in1"]),
    );
    let closed = multival_lts::ops::compose(
        &restricted,
        &env,
        &multival_lts::ops::Sync::on(["in0", "out0", "out1"]),
    );
    let projected = hide_all_but(&closed, ["in0", "out0", "out1"]);
    Ok(equivalent(&projected, &env, Equivalence::Branching))
}

/// Two routers chained west-to-east (a 1×2 mesh slice): the east output of
/// router A feeds the west input of router B, demonstrating multi-hop
/// delivery. Returns the composed LTS with the link hidden.
///
/// # Errors
///
/// Propagates parse/exploration errors.
pub fn two_router_chain() -> Result<Lts, Box<dyn std::error::Error>> {
    let src = r#"
process Fwd[inp, outp] :=
    inp; outp; Fwd[inp, outp]
endproc
behaviour
  hide link in
    (Fwd[inject, link] |[link]| Fwd[link, deliver])
"#;
    Ok(explore(&parse_spec(src)?, &ExploreOptions::default())?.lts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router3_verifies_clean() {
        let v = verify_router(3, &ExploreOptions::default()).expect("verifies");
        assert!(v.deadlock.is_none(), "router must be deadlock-free");
        assert!(v.misroute.is_none(), "routing must deliver to the right port");
        assert!(v.delivery_live, "delivery must remain possible");
        assert!(v.states > 50, "3 concurrent ports interleave: {} states", v.states);
        assert!(v.reduction.states_after <= v.reduction.states_before);
    }

    #[test]
    fn router_scales_with_ports() {
        let v2 = verify_router(2, &ExploreOptions::default()).expect("verifies");
        let v3 = verify_router(3, &ExploreOptions::default()).expect("verifies");
        assert!(v3.states > v2.states, "{} !> {}", v3.states, v2.states);
        assert!(v2.deadlock.is_none() && v3.deadlock.is_none());
    }

    #[test]
    fn router_2x2_matches_spec() {
        let verdict = router_2x2_spec_equivalence().expect("compares");
        assert!(verdict.holds(), "restricted 2x2 router must match its spec");
    }

    #[test]
    fn chained_routers_deliver() {
        let lts = two_router_chain().expect("builds");
        assert!(deadlock_witness(&lts).is_none());
        let f = parse_formula("mu X. <\"deliver\"> true or <true> X").expect("parses");
        assert!(check(&lts, &f).expect("mc").holds);
        // Pipelining: two flits can be in flight (inject twice before deliver).
        let g = parse_formula("<\"inject\"> <i> <\"inject\"> true").expect("parses");
        assert!(check(&lts, &g).expect("mc").holds);
    }

    #[test]
    fn misrouting_detector_fires_on_seeded_bug() {
        // Swap the f0/f1 forwarding of one input: flits to 0 go out on 1.
        let buggy = r#"
process InCtl[inp, f0, f1] :=
    inp ?d:int 0..1;
    (  [d == 0] -> f1 !d; InCtl[inp, f0, f1]   -- BUG: wrong channel
    [] [d == 1] -> f0 !d; InCtl[inp, f0, f1]
    )
endproc
process OutCtl[fwd, outp] :=
    fwd ?d:int 0..1; outp !d; OutCtl[fwd, outp]
endproc
behaviour
  hide f0, f1 in
    (InCtl[in0, f0, f1] |[f0, f1]| (OutCtl[f0, out0] ||| OutCtl[f1, out1]))
"#;
        let lts = explore(&parse_spec(buggy).expect("parses"), &ExploreOptions::default())
            .expect("explores")
            .lts;
        let witness = find_action(&lts, |label| {
            let Some(rest) = label.strip_prefix("out") else { return false };
            let mut parts = rest.split(" !");
            matches!((parts.next(), parts.next()), (Some(j), Some(d)) if j != d)
        });
        assert!(witness.is_some(), "the seeded misroute must be detected");
    }

    #[test]
    fn router_source_generator_shape() {
        let src = router_source(4);
        assert!(src.contains("in3"));
        assert!(src.contains("out3"));
        assert!(!src.contains("f4"));
        assert!(router_spec(4).is_ok());
    }
}
