//! Parametric n×n FAUST meshes under bit-complement traffic — the
//! million-state frontier instances of experiment E12.
//!
//! [`crate::faust::noc`] ships the hand-written 2×2 mesh; this module
//! generates the same construction for any side length `n`: XY routers,
//! one-place link buffers specialized to the packet values their link can
//! carry, and an optional k-token end-to-end flow-control pool. Under
//! bit-complement traffic router `r` injects packets for router
//! `n² - 1 - r` (for odd `n` the center is its own complement and only
//! forwards). The 3×3 instance is the CI smoke target; the 4×4 instance
//! crosses a million product states and is what the pluggable
//! [`StateStore`](multival_lts::store::StateStore) backends are sized on.

use multival_pa::{parse_spec, ExploreOptions, ParseError, Spec};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Coordinates of router `r` in an n×n mesh.
fn coords_n(r: usize, n: usize) -> (usize, usize) {
    (r % n, r / n)
}

/// The XY next hop from router `r` toward destination `d` in an n×n mesh
/// (`None` when `r == d`): correct x first, then y.
pub fn xy_next_hop_n(r: usize, d: usize, n: usize) -> Option<usize> {
    let (rx, ry) = coords_n(r, n);
    let (dx, dy) = coords_n(d, n);
    if rx != dx {
        Some(if dx > rx { r + 1 } else { r - 1 })
    } else if ry != dy {
        Some(if dy > ry { r + n } else { r - n })
    } else {
        None
    }
}

/// Directed links of the n×n mesh (pairs of adjacent routers), in a
/// canonical order: for each router, east/west/south/north neighbours.
pub fn mesh_links_n(n: usize) -> Vec<(usize, usize)> {
    let mut links = Vec::new();
    for r in 0..n * n {
        let (x, y) = coords_n(r, n);
        if x + 1 < n {
            links.push((r, r + 1));
        }
        if x > 0 {
            links.push((r, r - 1));
        }
        if y + 1 < n {
            links.push((r, r + n));
        }
        if y > 0 {
            links.push((r, r - n));
        }
    }
    links
}

/// The destination values each directed link carries under bit-complement
/// traffic with XY routing. Unlike the 2×2 case, a link may lie on several
/// flows (column links aggregate whole rows), so values form sets.
fn complement_link_values_n(n: usize) -> BTreeMap<(usize, usize), BTreeSet<usize>> {
    let nn = n * n;
    let mut values: BTreeMap<(usize, usize), BTreeSet<usize>> = BTreeMap::new();
    for r in 0..nn {
        let d = nn - 1 - r;
        let mut at = r;
        while let Some(next) = xy_next_hop_n(at, d, n) {
            values.entry((at, next)).or_default().insert(d);
            at = next;
        }
    }
    values
}

/// Generates the mini-LOTOS source of the n×n bit-complement mesh.
///
/// `max_in_flight = None` leaves injection uncontrolled; `Some(k)`
/// composes a k-token end-to-end flow-control pool over every `inj`/`dlv`
/// gate, which bounds the state space (the knob experiment E12 sweeps).
///
/// Gate naming uses explicit separators (`l3_4`, `i12_13`) so double-digit
/// router ids stay unambiguous.
///
/// # Panics
///
/// Panics if `n < 2` (a 1×1 mesh has no links).
pub fn complement_source_n(n: usize, max_in_flight: Option<usize>) -> String {
    assert!(n >= 2, "a mesh needs at least 2×2 routers");
    let nn = n * n;
    let links = mesh_links_n(n);
    let values = complement_link_values_n(n);
    let carried = |a: usize, b: usize| values.get(&(a, b)).cloned().unwrap_or_default();
    let mut src = String::new();

    // One-place link buffers, specialized to the values their link carries.
    // Links outside every flow get no buffer process (and no gate).
    for &(a, b) in &links {
        let vs = carried(a, b);
        if vs.is_empty() {
            continue;
        }
        let _ = writeln!(src, "process B{a}_{b}[takein, handout] :=");
        for (i, v) in vs.iter().enumerate() {
            let sep = if i == 0 { "   " } else { " []" };
            let _ = writeln!(src, "    {sep} takein !{v}; handout !{v}; B{a}_{b}[takein, handout]");
        }
        let _ = writeln!(src, "endproc\n");
    }

    // Routers: inject toward the complement (unless self), forward or
    // deliver whatever the in-links can carry.
    for r in 0..nn {
        let outs: Vec<String> = links
            .iter()
            .filter(|&&(a, b)| a == r && !carried(a, b).is_empty())
            .map(|&(a, b)| format!("l{a}_{b}"))
            .collect();
        let ins: Vec<(usize, usize)> =
            links.iter().filter(|&&(a, b)| b == r && !carried(a, b).is_empty()).copied().collect();
        let in_gates: Vec<String> = ins.iter().map(|&(a, b)| format!("i{a}_{b}")).collect();
        let d = nn - 1 - r;
        let mut gates = Vec::new();
        if d != r {
            gates.push(format!("inj{r}"));
            gates.push(format!("dlv{r}"));
        }
        gates.extend(outs.iter().cloned());
        gates.extend(in_gates.iter().cloned());
        let gates = gates.join(", ");

        let mut branches: Vec<String> = Vec::new();
        if d != r {
            let next = xy_next_hop_n(r, d, n).expect("non-self complement has a next hop");
            branches.push(format!("inj{r} !{d}; l{r}_{next} !{d}; R{r}[{gates}]"));
        }
        for &(a, b) in &ins {
            for v in carried(a, b) {
                let hop = match xy_next_hop_n(r, v, n) {
                    None => format!("dlv{r} !{v}"),
                    Some(h) => format!("l{r}_{h} !{v}"),
                };
                branches.push(format!("i{a}_{b} !{v}; {hop}; R{r}[{gates}]"));
            }
        }
        let _ = writeln!(src, "process R{r}[{gates}] :=");
        for (i, branch) in branches.iter().enumerate() {
            let sep = if i == 0 { "   " } else { " []" };
            let _ = writeln!(src, "    {sep} {branch}");
        }
        let _ = writeln!(src, "endproc\n");
    }

    // The flow-control pool spans every inj/dlv pair of injecting routers.
    let porters: Vec<usize> = (0..nn).filter(|&r| nn - 1 - r != r).collect();
    let pool_gates: Vec<String> = porters
        .iter()
        .map(|r| format!("inj{r}"))
        .chain(porters.iter().map(|r| format!("dlv{r}")))
        .collect();
    if let Some(k) = max_in_flight {
        let gl = pool_gates.join(", ");
        let _ = writeln!(src, "process Pool[{gl}](t: int 0..{k}) :=");
        for (i, r) in porters.iter().enumerate() {
            let sep = if i == 0 { "   " } else { " []" };
            let _ = writeln!(
                src,
                "    {sep} [t < {k}] -> inj{r} ?x:int 0..{}; Pool[{gl}](t + 1)",
                nn - 1
            );
        }
        for r in &porters {
            let _ =
                writeln!(src, "     [] [t > 0] -> dlv{r} ?x:int 0..{}; Pool[{gl}](t - 1)", nn - 1);
        }
        let _ = writeln!(src, "endproc\n");
    }

    // Top behaviour: routers ||| each other, synced with the buffers on
    // the link gates, optionally synced with the pool; links hidden.
    let router_insts: Vec<String> = (0..nn)
        .map(|r| {
            let outs: Vec<String> = links
                .iter()
                .filter(|&&(a, b)| a == r && !carried(a, b).is_empty())
                .map(|&(a, b)| format!("l{a}_{b}"))
                .collect();
            let ins: Vec<String> = links
                .iter()
                .filter(|&&(a, b)| b == r && !carried(a, b).is_empty())
                .map(|&(a, b)| format!("i{a}_{b}"))
                .collect();
            let d = nn - 1 - r;
            let mut gs = Vec::new();
            if d != r {
                gs.push(format!("inj{r}"));
                gs.push(format!("dlv{r}"));
            }
            gs.extend(outs);
            gs.extend(ins);
            format!("R{r}[{}]", gs.join(", "))
        })
        .collect();
    let buf_insts: Vec<String> = links
        .iter()
        .filter(|&&(a, b)| !carried(a, b).is_empty())
        .map(|&(a, b)| format!("B{a}_{b}[l{a}_{b}, i{a}_{b}]"))
        .collect();
    let link_gates: Vec<String> = links
        .iter()
        .filter(|&&(a, b)| !carried(a, b).is_empty())
        .flat_map(|&(a, b)| [format!("l{a}_{b}"), format!("i{a}_{b}")])
        .collect();

    let _ = writeln!(src, "behaviour");
    let _ = writeln!(src, "  hide {} in", link_gates.join(", "));
    let core = format!(
        "( ({})\n      |[{}]|\n      ({}) )",
        router_insts.join("\n   ||| "),
        link_gates.join(", "),
        buf_insts.join(" ||| ")
    );
    match max_in_flight {
        None => {
            let _ = writeln!(src, "    {core}");
        }
        Some(_) => {
            let _ = writeln!(src, "    ( {core}");
            let _ = writeln!(
                src,
                "      |[{}]|\n      Pool[{}](0) )",
                pool_gates.join(", "),
                pool_gates.join(", ")
            );
        }
    }
    src
}

/// Parses the n×n bit-complement mesh model.
///
/// # Errors
///
/// Propagates parser errors (the generator is tested).
pub fn complement_spec_n(n: usize, max_in_flight: Option<usize>) -> Result<Spec, ParseError> {
    parse_spec(&complement_source_n(n, max_in_flight))
}

/// The n×n bit-complement mesh as a pipeline
/// [`Network`](multival_lts::pipeline::Network): routers, the link
/// buffers on flow-carrying links, and (when flow-controlled) the token
/// pool, with link gates hidden.
///
/// # Errors
///
/// Propagates parse and extraction errors.
pub fn complement_network_n(
    n: usize,
    max_in_flight: Option<usize>,
) -> Result<multival_lts::pipeline::Network, Box<dyn std::error::Error>> {
    let spec = complement_spec_n(n, max_in_flight)?;
    Ok(multival_pa::extract_network(&spec, &ExploreOptions::default())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use multival_lts::store::StoreConfig;
    use multival_pa::{explore, explore_term_store};

    #[test]
    fn xy_hops_generalize_the_2x2_function() {
        for r in 0..4 {
            for d in 0..4 {
                assert_eq!(
                    xy_next_hop_n(r, d, 2),
                    crate::faust::noc::xy_next_hop(r, d),
                    "hop({r}, {d})"
                );
            }
        }
        // 3×3 spot checks: x before y, both directions.
        assert_eq!(xy_next_hop_n(0, 8, 3), Some(1));
        assert_eq!(xy_next_hop_n(2, 6, 3), Some(1));
        assert_eq!(xy_next_hop_n(4, 4, 3), None);
        assert_eq!(xy_next_hop_n(7, 1, 3), Some(4));
    }

    #[test]
    fn links_count_matches_grid_formula() {
        for n in [2, 3, 4] {
            assert_eq!(mesh_links_n(n).len(), 4 * n * (n - 1), "n = {n}");
        }
    }

    #[test]
    fn generated_2x2_matches_the_handwritten_complement_mesh() {
        // Same construction, different generator: the state spaces must
        // coincide exactly (labels on hidden links differ in name only).
        let hand =
            explore(&crate::faust::noc::complement_spec().expect("parses"), &Default::default())
                .expect("explores");
        let gen = explore(&complement_spec_n(2, None).expect("parses"), &Default::default())
            .expect("explores");
        assert_eq!(gen.lts.num_states(), hand.lts.num_states());
        assert_eq!(gen.lts.num_transitions(), hand.lts.num_transitions());
    }

    #[test]
    fn flow_controlled_3x3_is_deadlock_free_at_one_token() {
        // A single in-flight packet can always progress to its
        // destination: no contention, no head-of-line blocking.
        let spec = complement_spec_n(3, Some(1)).expect("parses");
        let lts = explore_term_store(
            spec.top().clone(),
            &spec,
            &Default::default(),
            &StoreConfig::default(),
        )
        .expect("explores");
        assert!(multival_lts::analysis::deadlock_witness(&lts).is_none());
        assert!(lts.num_states() > 50, "nontrivial space: {}", lts.num_states());
    }

    #[test]
    fn network_extraction_has_the_expected_shape() {
        let net = complement_network_n(3, Some(2)).expect("extracts");
        let carrying = complement_link_values_n(3).len();
        // 9 routers + one buffer per flow-carrying link + the pool.
        assert_eq!(net.components().len(), 9 + carrying + 1);
        assert_eq!(net.hidden().len(), 2 * carrying);
    }
}
