//! The isochronous-fork study (experiment E4).
//!
//! In asynchronous (quasi-delay-insensitive) circuits a *fork* wire drives
//! two receivers. QDI design acknowledges every transition — except that
//! acknowledging **both** fork branches is often impossible, so one branch
//! is left unacknowledged and assumed **isochronous**: its receiver sees
//! the transition before any causally-later transition arrives. The paper
//! reports that "theoretical results on isochronous forks in asynchronous
//! circuits have been demonstrated automatically" (§3).
//!
//! We reproduce the demonstration the way the Multival flow would:
//!
//! * [`atomic_fork_spec`] — the specification: each input event is
//!   delivered to both receivers (in either order) before the next input;
//! * [`acknowledged_fork`] — both branches acknowledged → equivalent
//!   (the always-safe but often unrealizable design);
//! * [`isochronous_fork`] — branch 2 unacknowledged but *direct*
//!   (zero-delay wire, the isochrony assumption) → **still equivalent**;
//! * [`buffered_fork`] — branch 2 unacknowledged and *buffering* (the
//!   isochrony assumption violated) → **not equivalent**, with an
//!   automatically produced distinguishing trace in which the fork re-arms
//!   while the slow branch still holds an undelivered event.

use multival_lts::equiv::{equivalent, weak_trace_equivalent, Verdict};
use multival_lts::minimize::Equivalence;
use multival_lts::Lts;
use multival_pa::{explore, parse_spec, ExploreOptions};

/// Specification: `inp` delivered to both outputs before the next `inp`.
const SPEC_SRC: &str = r#"
process Spec[inp, o1, o2] :=
    inp; ( (o1; exit) ||| (o2; exit) ) >> Spec[inp, o1, o2]
endproc
behaviour Spec[inp, o1, o2]
"#;

/// Both branches acknowledged: the fork re-arms only after both receivers
/// confirmed delivery.
const ACKED_SRC: &str = r#"
process Fork[inp, w1, w2, a1, a2] :=
    inp; w1; w2; a1; a2; Fork[inp, w1, w2, a1, a2]
endproc

process AckWire[w, o, a] :=
    w; o; a; AckWire[w, o, a]
endproc

behaviour
  hide w1, w2, a1, a2 in
    ( Fork[inp, w1, w2, a1, a2]
      |[w1, w2, a1, a2]|
      (AckWire[w1, o1, a1] ||| AckWire[w2, o2, a2])
    )
"#;

/// Branch 2 unacknowledged but isochronous: the fork drives `o2` directly
/// (no buffering wire), so the delivery happens before the fork can re-arm.
const ISO_SRC: &str = r#"
process Fork[inp, w1, a1, o2] :=
    inp; w1; o2; a1; Fork[inp, w1, a1, o2]
endproc

process AckWire[w, o, a] :=
    w; o; a; AckWire[w, o, a]
endproc

behaviour
  hide w1, a1 in
    ( Fork[inp, w1, a1, o2]
      |[w1, a1]|
      AckWire[w1, o1, a1]
    )
"#;

/// Branch 2 unacknowledged *and* buffered: the wire accepts the event and
/// the fork re-arms after the acknowledged branch only — violating the
/// isochrony assumption.
const BUFFERED_SRC: &str = r#"
process Fork[inp, w1, w2, a1] :=
    inp; w1; w2; a1; Fork[inp, w1, w2, a1]
endproc

process AckWire[w, o, a] :=
    w; o; a; AckWire[w, o, a]
endproc

process Wire[w, o] :=
    w; o; Wire[w, o]
endproc

behaviour
  hide w1, w2, a1 in
    ( Fork[inp, w1, w2, a1]
      |[w1, w2, a1]|
      (AckWire[w1, o1, a1] ||| Wire[w2, o2])
    )
"#;

fn build(src: &str) -> Result<Lts, Box<dyn std::error::Error>> {
    Ok(explore(&parse_spec(src)?, &ExploreOptions::default())?.lts)
}

/// The atomic-fork specification LTS.
///
/// # Errors
///
/// Propagates parse/exploration errors (the sources are tested).
pub fn atomic_fork_spec() -> Result<Lts, Box<dyn std::error::Error>> {
    build(SPEC_SRC)
}

/// The fully acknowledged fork LTS.
///
/// # Errors
///
/// Propagates parse/exploration errors.
pub fn acknowledged_fork() -> Result<Lts, Box<dyn std::error::Error>> {
    build(ACKED_SRC)
}

/// The isochronous-branch fork LTS.
///
/// # Errors
///
/// Propagates parse/exploration errors.
pub fn isochronous_fork() -> Result<Lts, Box<dyn std::error::Error>> {
    build(ISO_SRC)
}

/// The buffered-branch (non-isochronous) fork LTS.
///
/// # Errors
///
/// Propagates parse/exploration errors.
pub fn buffered_fork() -> Result<Lts, Box<dyn std::error::Error>> {
    build(BUFFERED_SRC)
}

/// The complete study: verdicts for the three implementations against the
/// specification.
#[derive(Debug, Clone)]
pub struct ForkStudy {
    /// Fully acknowledged fork vs spec (branching bisimulation).
    pub acknowledged_equivalent: Verdict,
    /// Isochronous fork vs spec (branching bisimulation).
    pub isochronous_equivalent: Verdict,
    /// Buffered fork vs spec (weak traces, with a distinguishing trace).
    pub buffered_equivalent: Verdict,
    /// Size of the spec LTS.
    pub spec_states: usize,
    /// Size of the buffered-fork LTS.
    pub buffered_states: usize,
}

/// Runs the fork study.
///
/// # Errors
///
/// Propagates parse/exploration errors.
pub fn run_fork_study() -> Result<ForkStudy, Box<dyn std::error::Error>> {
    let spec = atomic_fork_spec()?;
    let acked = acknowledged_fork()?;
    let iso = isochronous_fork()?;
    let buffered = buffered_fork()?;
    Ok(ForkStudy {
        acknowledged_equivalent: equivalent(&acked, &spec, Equivalence::Branching),
        isochronous_equivalent: equivalent(&iso, &spec, Equivalence::Branching),
        buffered_equivalent: weak_trace_equivalent(&buffered, &spec, 1 << 16),
        spec_states: spec.num_states(),
        buffered_states: buffered.num_states(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acknowledged_fork_matches_spec() {
        let study = run_fork_study().expect("runs");
        assert!(
            study.acknowledged_equivalent.holds(),
            "double-acknowledged fork must equal the atomic spec"
        );
    }

    #[test]
    fn isochronous_fork_matches_spec() {
        let study = run_fork_study().expect("runs");
        assert!(
            study.isochronous_equivalent.holds(),
            "zero-delay unacknowledged branch must still equal the spec"
        );
    }

    #[test]
    fn buffered_fork_differs_with_witness() {
        // The buffered fork re-arms after the acknowledged branch only, so
        // `inp, o1, inp` is a trace with o2 still pending — the spec forbids
        // a second inp before both deliveries.
        let study = run_fork_study().expect("runs");
        match &study.buffered_equivalent {
            Verdict::Inequivalent { witness: Some(w) } => {
                assert!(
                    w.iter().filter(|l| *l == "inp").count() >= 2,
                    "witness should show premature re-arming: {w:?}"
                );
            }
            v => panic!("buffered fork must differ from the spec: {v:?}"),
        }
    }

    #[test]
    fn delivery_order_is_unconstrained_in_spec() {
        let spec = atomic_fork_spec().expect("builds");
        use multival_mcl::{check, parse_formula};
        let f12 = parse_formula("<\"inp\"> <\"o1\"> <\"o2\"> true").expect("parses");
        let f21 = parse_formula("<\"inp\"> <\"o2\"> <\"o1\"> true").expect("parses");
        assert!(check(&spec, &f12).expect("mc").holds);
        assert!(check(&spec, &f21).expect("mc").holds);
    }
}
