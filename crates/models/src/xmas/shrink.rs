//! Minimizing shrinker for failing fabrics.
//!
//! Greedy fixpoint over structural reduction candidates: a candidate is
//! accepted iff it still [`Fabric::validate`]s, strictly decreases
//! [`Fabric::size_metric`] (lexicographic), and still reproduces the
//! failure per the caller's predicate. Structurally larger cuts (deleting
//! whole forward/backward cones) are tried before local ones, so typical
//! fuzzing counterexamples collapse to a handful of primitives in a few
//! rounds.

use super::{Channel, Fabric, Prim};
use std::collections::BTreeSet;

/// Shrinks `fabric` while `still_fails` keeps returning `true` on the
/// candidate, for at most `max_rounds` accepted reductions. Returns the
/// smallest reproducer found (possibly the input itself).
pub fn shrink<F>(fabric: &Fabric, mut still_fails: F, max_rounds: usize) -> Fabric
where
    F: FnMut(&Fabric) -> bool,
{
    let mut cur = fabric.clone();
    for _ in 0..max_rounds {
        let mut improved = false;
        for cand in candidates(&cur) {
            if cand.validate().is_err() {
                continue;
            }
            if cand.size_metric() >= cur.size_metric() {
                continue;
            }
            if still_fails(&cand) {
                cur = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    cur
}

/// All reduction candidates of `fab`, big cuts first.
fn candidates(fab: &Fabric) -> Vec<Fabric> {
    let mut out = Vec::new();
    // Cut the forward cone hanging off each channel's consumer.
    for c in 0..fab.channels.len() {
        out.extend(cap_with_sink(fab, c));
    }
    // Replace each queue's upstream cone by a fresh source.
    for c in 0..fab.channels.len() {
        out.extend(source_replace(fab, c));
    }
    // Collapse two-input primitives onto one feeder.
    for i in 0..fab.prims.len() {
        match fab.prims[i].1 {
            Prim::Join => out.extend(collapse_two_in(fab, i, 0)),
            Prim::Merge => {
                out.extend(collapse_two_in(fab, i, 0));
                out.extend(collapse_two_in(fab, i, 1));
            }
            _ => {}
        }
    }
    // Collapse forks onto one branch, cutting the other branch's cone
    // (switches are left alone: dropping a branch loses its colors and
    // the result rarely validates, let alone reproduces).
    for i in 0..fab.prims.len() {
        if matches!(fab.prims[i].1, Prim::Fork) {
            out.extend(drop_out(fab, i, 0));
            out.extend(drop_out(fab, i, 1));
        }
    }
    // Bypass one-in-one-out primitives.
    for i in 0..fab.prims.len() {
        if matches!(fab.prims[i].1, Prim::Queue { .. } | Prim::Function { .. }) {
            out.extend(bypass(fab, i));
        }
    }
    // Local bulk reductions: capacity, init tokens, source palette.
    for i in 0..fab.prims.len() {
        match &fab.prims[i].1 {
            Prim::Queue { cap, init } => {
                if *cap > 1 && init.len() < *cap {
                    let mut f = fab.clone();
                    f.prims[i].1 = Prim::Queue { cap: cap - 1, init: init.clone() };
                    out.push(f);
                }
                if !init.is_empty() {
                    let mut shorter = init.clone();
                    shorter.pop();
                    let mut f = fab.clone();
                    f.prims[i].1 = Prim::Queue { cap: *cap, init: shorter };
                    out.push(f);
                }
            }
            Prim::Source { colors } if colors.len() > 1 => {
                for k in 0..colors.len() {
                    let mut fewer = colors.clone();
                    fewer.remove(k);
                    let mut f = fab.clone();
                    f.prims[i].1 = Prim::Source { colors: fewer };
                    out.push(f);
                }
            }
            _ => {}
        }
    }
    out
}

/// Deletes the forward cone reachable from channel `c`'s consumer,
/// capping every surviving producer that fed the cone with a fresh sink.
fn cap_with_sink(fab: &Fabric, c: usize) -> Option<Fabric> {
    let root = fab.channels[c].to.0;
    let cone = forward_cone(fab, root);
    // Cutting a cone that contains a source changes the inflow language
    // in ways the remaining fabric cannot express; skip.
    if cone.iter().any(|&i| matches!(fab.prims[i].1, Prim::Source { .. })) {
        return None;
    }
    if fab.channels[c].from.0 == root || cone.contains(&fab.channels[c].from.0) {
        return None;
    }
    let mut f = fab.clone();
    let mut fresh = FreshNames::new(fab);
    for ch in 0..f.channels.len() {
        let Channel { from, to, .. } = f.channels[ch];
        if !cone.contains(&from.0) && cone.contains(&to.0) {
            let sink = f.add(&fresh.next("zs"), Prim::Sink);
            f.channels[ch].to = (sink, 0);
        }
    }
    Some(compact(&f, &cone))
}

/// Replaces the upstream cone feeding channel `c` (which must enter a
/// queue) with a fresh source carrying the channel's colorset. Producers
/// outside the cone that fed it are capped with sinks; consumers outside
/// the cone fed by it get fresh sources of the corresponding colorset.
fn source_replace(fab: &Fabric, c: usize) -> Option<Fabric> {
    let (qprim, _) = fab.channels[c].to;
    if !matches!(fab.prims[qprim].1, Prim::Queue { .. }) {
        return None;
    }
    let producer = fab.channels[c].from.0;
    if matches!(fab.prims[producer].1, Prim::Source { .. }) {
        return None; // already minimal
    }
    let cone = backward_cone(fab, producer);
    if cone.contains(&qprim) {
        return None; // cycle back into the queue
    }
    let analysis = fab.validate().ok()?;
    let mut f = fab.clone();
    let mut fresh = FreshNames::new(fab);
    for ch in 0..f.channels.len() {
        let Channel { from, to, .. } = f.channels[ch];
        let from_in = cone.contains(&from.0);
        let to_in = cone.contains(&to.0);
        if from_in && !to_in {
            // A consumer outside the cone loses its feeder: give it a
            // fresh source with the channel's inferred colorset.
            let colors = analysis.chan_colors[ch].clone();
            let src = f.add(&fresh.next("zr"), Prim::Source { colors });
            f.channels[ch].from = (src, 0);
        } else if !from_in && to_in {
            let sink = f.add(&fresh.next("zs"), Prim::Sink);
            f.channels[ch].to = (sink, 0);
        }
    }
    Some(compact(&f, &cone))
}

/// Collapses a 2-in/1-out primitive `i` onto its `keep` input: the kept
/// feeder is wired straight to the output's consumer, the other feeder is
/// capped with a fresh sink.
fn collapse_two_in(fab: &Fabric, i: usize, keep: usize) -> Option<Fabric> {
    let kept = fab.channels.iter().position(|ch| ch.to == (i, keep))?;
    let other = fab.channels.iter().position(|ch| ch.to == (i, 1 - keep))?;
    let out = fab.channels.iter().position(|ch| ch.from == (i, 0))?;
    if out == kept || out == other {
        return None; // self-loop through the primitive
    }
    if fab.channels[kept].label.is_some() && fab.channels[out].label.is_some() {
        return None;
    }
    let mut f = fab.clone();
    let mut fresh = FreshNames::new(fab);
    f.channels[kept].to = f.channels[out].to;
    if f.channels[kept].label.is_none() {
        f.channels[kept].label = f.channels[out].label.clone();
    }
    let sink = f.add(&fresh.next("zs"), Prim::Sink);
    f.channels[other].to = (sink, 0);
    f.channels.remove(out);
    let dead: BTreeSet<usize> = [i].into();
    Some(compact(&f, &dead))
}

/// Removes a fork `i`, wiring its input straight to the `keep` output's
/// consumer and deleting the other branch's forward cone (surviving
/// feeders of that cone are capped with fresh sinks).
fn drop_out(fab: &Fabric, i: usize, keep: usize) -> Option<Fabric> {
    let inc = fab.channels.iter().position(|ch| ch.to == (i, 0))?;
    let kept = fab.channels.iter().position(|ch| ch.from == (i, keep))?;
    let dropped = fab.channels.iter().position(|ch| ch.from == (i, 1 - keep))?;
    if inc == kept || inc == dropped {
        return None; // self-loop through the fork
    }
    if fab.channels[inc].label.is_some() && fab.channels[kept].label.is_some() {
        return None;
    }
    let cone = forward_cone(fab, fab.channels[dropped].to.0);
    if cone.iter().any(|&p| matches!(fab.prims[p].1, Prim::Source { .. })) {
        return None;
    }
    if cone.contains(&i)
        || cone.contains(&fab.channels[kept].to.0)
        || cone.contains(&fab.channels[inc].from.0)
    {
        return None;
    }
    let mut f = fab.clone();
    let mut fresh = FreshNames::new(fab);
    f.channels[inc].to = f.channels[kept].to;
    if f.channels[inc].label.is_none() {
        f.channels[inc].label = f.channels[kept].label.clone();
    }
    for ch in 0..f.channels.len() {
        if ch == dropped {
            continue;
        }
        let Channel { from, to, .. } = f.channels[ch];
        if !cone.contains(&from.0) && from.0 != i && cone.contains(&to.0) {
            let sink = f.add(&fresh.next("zs"), Prim::Sink);
            f.channels[ch].to = (sink, 0);
        }
    }
    let mut dead = cone;
    dead.insert(i);
    Some(compact(&f, &dead))
}

/// Bypasses a 1-in/1-out primitive `i`, merging its two channels.
fn bypass(fab: &Fabric, i: usize) -> Option<Fabric> {
    let inc = fab.channels.iter().position(|ch| ch.to == (i, 0))?;
    let out = fab.channels.iter().position(|ch| ch.from == (i, 0))?;
    if inc == out {
        return None; // self-loop
    }
    if fab.channels[inc].label.is_some() && fab.channels[out].label.is_some() {
        return None;
    }
    let mut f = fab.clone();
    f.channels[inc].to = f.channels[out].to;
    if f.channels[inc].label.is_none() {
        f.channels[inc].label = f.channels[out].label.clone();
    }
    f.channels.remove(out);
    let dead: BTreeSet<usize> = [i].into();
    Some(compact(&f, &dead))
}

/// Primitives reachable from `root` by following channels forward
/// (`root` included).
fn forward_cone(fab: &Fabric, root: usize) -> BTreeSet<usize> {
    let mut cone = BTreeSet::from([root]);
    let mut stack = vec![root];
    while let Some(p) = stack.pop() {
        for ch in &fab.channels {
            if ch.from.0 == p && cone.insert(ch.to.0) {
                stack.push(ch.to.0);
            }
        }
    }
    cone
}

/// Primitives reaching `root` by following channels backward
/// (`root` included).
fn backward_cone(fab: &Fabric, root: usize) -> BTreeSet<usize> {
    let mut cone = BTreeSet::from([root]);
    let mut stack = vec![root];
    while let Some(p) = stack.pop() {
        for ch in &fab.channels {
            if ch.to.0 == p && cone.insert(ch.from.0) {
                stack.push(ch.from.0);
            }
        }
    }
    cone
}

/// Rebuilds a fabric without the `dead` primitives; channels touching a
/// dead primitive are dropped and rate annotations follow their labels.
fn compact(fab: &Fabric, dead: &BTreeSet<usize>) -> Fabric {
    let mut map = vec![usize::MAX; fab.prims.len()];
    let mut out = Fabric::new();
    for (i, (name, p)) in fab.prims.iter().enumerate() {
        if !dead.contains(&i) {
            map[i] = out.add(name, p.clone());
        }
    }
    for ch in &fab.channels {
        if dead.contains(&ch.from.0) || dead.contains(&ch.to.0) {
            continue;
        }
        out.channels.push(Channel {
            from: (map[ch.from.0], ch.from.1),
            to: (map[ch.to.0], ch.to.1),
            label: ch.label.clone(),
        });
    }
    for ch in &out.channels {
        if let Some(label) = &ch.label {
            if let Some(rate) = fab.rates.get(&label.name) {
                out.rates.insert(label.name.clone(), *rate);
            }
        }
    }
    out
}

/// Fresh primitive names that cannot clash with existing ones.
struct FreshNames {
    taken: BTreeSet<String>,
    counter: usize,
}

impl FreshNames {
    fn new(fab: &Fabric) -> FreshNames {
        FreshNames { taken: fab.prims.iter().map(|(n, _)| n.clone()).collect(), counter: 0 }
    }

    fn next(&mut self, prefix: &str) -> String {
        loop {
            let name = format!("{prefix}{}", self.counter);
            self.counter += 1;
            if self.taken.insert(name.clone()) {
                return name;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::gen::{generate, GenConfig};
    use super::super::Prim;
    use super::*;

    fn has_switch(fab: &Fabric) -> bool {
        fab.prims().iter().any(|(_, p)| matches!(p, Prim::Switch { .. }))
    }

    #[test]
    fn shrinks_to_small_well_typed_reproducers() {
        let cfg = GenConfig { max_steps: 10, max_colors: 2, max_cap: 2, credit_rings: true };
        let mut shrunk_any = false;
        for seed in 0..40u64 {
            let fab = generate(seed, &cfg);
            if !has_switch(&fab) {
                continue;
            }
            let small = shrink(&fab, has_switch, 64);
            assert!(small.validate().is_ok(), "seed {seed}: {:?}", small.validate().err());
            assert!(has_switch(&small), "seed {seed}: predicate lost");
            assert!(small.size_metric() <= fab.size_metric(), "seed {seed}: grew");
            if small.size_metric() < fab.size_metric() {
                shrunk_any = true;
            }
        }
        assert!(shrunk_any, "shrinker never reduced any fabric");
    }
}
