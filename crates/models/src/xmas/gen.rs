//! Seeded random fabric generator: splitmix64-driven, deterministic per
//! seed, and well-typed **by construction** — every structural move
//! preserves the invariants [`Fabric::validate`] checks (non-empty
//! colorsets, direct join secondaries, no reconvergent forks, sources
//! always feeding storage), so generation never needs rejection loops.

use super::{Color, Fabric, Prim, XmasError};
use std::collections::BTreeSet;

/// Shape/size budget for generated fabrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// Growth steps (≈ combinational primitives + queues beyond the
    /// seeds/sinks scaffolding).
    pub max_steps: usize,
    /// Palette size (distinct colors, 1..=4).
    pub max_colors: usize,
    /// Queue capacity bound (1..=3 keeps products small).
    pub max_cap: usize,
    /// Allow credit-ring macros (join + initialized queue + fork).
    pub credit_rings: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { max_steps: 7, max_colors: 2, max_cap: 2, credit_rings: true }
    }
}

/// The splitmix64 generator (same constants as `ctmc::mc`).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    x: u64,
}

impl SplitMix64 {
    /// Seeds the stream.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { x: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (`n > 0`; modulo bias is irrelevant
    /// for topology fuzzing).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// One open (yet unconnected) output end during growth.
#[derive(Debug, Clone)]
struct Open {
    prim: usize,
    port: usize,
    colors: BTreeSet<Color>,
    /// The end is a queue's output port (usable as a join secondary).
    direct_queue: bool,
    /// Fork ids upstream since the last queue — two opens may only merge
    /// when their taints are disjoint (prevents reconvergent firings).
    taint: BTreeSet<usize>,
}

/// Generates a well-typed fabric, deterministic in `seed`.
#[must_use]
pub fn generate(seed: u64, cfg: &GenConfig) -> Fabric {
    let mut rng = SplitMix64::new(seed);
    let mut fab = Fabric::new();
    let mut opens: Vec<Open> = Vec::new();
    let mut n = Counter::default();

    let palette = 1 + rng.below(cfg.max_colors.clamp(1, 4));
    let colors: Vec<Color> = (1..=palette as Color).collect();
    let max_cap = cfg.max_cap.clamp(1, 3);

    // Sources, each feeding a fresh queue through a labeled channel.
    let n_src = 1 + rng.below(2);
    for i in 0..n_src {
        let mut set = BTreeSet::new();
        let want = 1 + rng.below(palette);
        while set.len() < want {
            set.insert(colors[rng.below(palette)]);
        }
        let src_colors: Vec<Color> = set.iter().copied().collect();
        let show = src_colors.len() > 1;
        let s = fab.add(&format!("src{i}"), Prim::Source { colors: src_colors });
        let q = n.queue(&mut fab, 1 + rng.below(max_cap), vec![]);
        let label = format!("in{i}");
        fab.wire_labeled(s, 0, q, 0, &label, show);
        fab.set_rate(&label, rate(&mut rng));
        opens.push(Open {
            prim: q,
            port: 0,
            colors: set,
            direct_queue: true,
            taint: BTreeSet::new(),
        });
    }

    for _ in 0..cfg.max_steps {
        if opens.is_empty() {
            break;
        }
        match rng.below(7) {
            // A plain queue stage.
            0 | 6 => {
                let o = opens.swap_remove(rng.below(opens.len()));
                let q = n.queue(&mut fab, 1 + rng.below(max_cap), vec![]);
                fab.wire(o.prim, o.port, q, 0);
                opens.push(Open {
                    prim: q,
                    port: 0,
                    colors: o.colors,
                    direct_queue: true,
                    taint: BTreeSet::new(),
                });
            }
            // A function remapping colors.
            1 => {
                let o = opens.swap_remove(rng.below(opens.len()));
                let map: Vec<(Color, Color)> =
                    o.colors.iter().map(|&c| (c, colors[rng.below(palette)])).collect();
                let image: BTreeSet<Color> = map.iter().map(|(_, v)| *v).collect();
                let f = fab.add(&format!("fun{}", n.next("fun")), Prim::Function { map });
                fab.wire(o.prim, o.port, f, 0);
                opens.push(Open {
                    prim: f,
                    port: 0,
                    colors: image,
                    direct_queue: false,
                    taint: o.taint,
                });
            }
            // A fork duplicating the stream.
            2 => {
                let o = opens.swap_remove(rng.below(opens.len()));
                let f = fab.add(&format!("frk{}", n.next("frk")), Prim::Fork);
                fab.wire(o.prim, o.port, f, 0);
                let mut taint = o.taint.clone();
                taint.insert(f);
                for port in 0..2 {
                    opens.push(Open {
                        prim: f,
                        port,
                        colors: o.colors.clone(),
                        direct_queue: false,
                        taint: taint.clone(),
                    });
                }
            }
            // A switch splitting the colorset (needs ≥ 2 colors).
            3 => {
                let candidates: Vec<usize> =
                    (0..opens.len()).filter(|&i| opens[i].colors.len() >= 2).collect();
                if candidates.is_empty() {
                    continue;
                }
                let oi = candidates[rng.below(candidates.len())];
                let o = opens.swap_remove(oi);
                let all: Vec<Color> = o.colors.iter().copied().collect();
                let take = 1 + rng.below(all.len() - 1);
                let mut on = BTreeSet::new();
                while on.len() < take {
                    on.insert(all[rng.below(all.len())]);
                }
                let rest: BTreeSet<Color> = o.colors.difference(&on).copied().collect();
                let s = fab.add(
                    &format!("sw{}", n.next("sw")),
                    Prim::Switch { on: on.iter().copied().collect() },
                );
                fab.wire(o.prim, o.port, s, 0);
                for (port, set) in [(0usize, on), (1, rest)] {
                    opens.push(Open {
                        prim: s,
                        port,
                        colors: set,
                        direct_queue: false,
                        taint: o.taint.clone(),
                    });
                }
            }
            // A merge of two fork-independent opens.
            4 => {
                let mut pair = None;
                'outer: for a in 0..opens.len() {
                    for b in a + 1..opens.len() {
                        if opens[a].taint.is_disjoint(&opens[b].taint) {
                            pair = Some((a, b));
                            break 'outer;
                        }
                    }
                }
                let Some((a, b)) = pair else { continue };
                // Remove the higher index first to keep `a` valid.
                let ob = opens.swap_remove(b);
                let oa = opens.swap_remove(a);
                let m = fab.add(&format!("mrg{}", n.next("mrg")), Prim::Merge);
                fab.wire(oa.prim, oa.port, m, 0);
                fab.wire(ob.prim, ob.port, m, 1);
                let colors: BTreeSet<Color> = oa.colors.union(&ob.colors).copied().collect();
                let taint: BTreeSet<usize> = oa.taint.union(&ob.taint).copied().collect();
                opens.push(Open { prim: m, port: 0, colors, direct_queue: false, taint });
            }
            // A credit ring: join against an initialized queue whose
            // tokens are recycled through a fork (the xSTream pattern).
            5 if cfg.credit_rings => {
                let o = opens.swap_remove(rng.below(opens.len()));
                let cap = 1 + rng.below(max_cap);
                let tokens = 1 + rng.below(cap);
                let tok_color = colors[rng.below(palette)];
                let qc = n.queue(&mut fab, cap, vec![tok_color; tokens]);
                let j = fab.add(&format!("jn{}", n.next("jn")), Prim::Join);
                let f = fab.add(&format!("frk{}", n.next("frk")), Prim::Fork);
                fab.wire(o.prim, o.port, j, 0);
                fab.wire(qc, 0, j, 1);
                fab.wire(j, 0, f, 0);
                fab.wire(f, 0, qc, 0);
                let mut taint = o.taint;
                taint.insert(f);
                opens.push(Open { prim: f, port: 1, colors: o.colors, direct_queue: false, taint });
            }
            // A plain join consuming a direct queue output as secondary.
            5 => {
                let secs: Vec<usize> =
                    (0..opens.len()).filter(|&i| opens[i].direct_queue).collect();
                if opens.len() < 2 || secs.is_empty() {
                    continue;
                }
                let si = secs[rng.below(secs.len())];
                let os = opens.swap_remove(si);
                if opens.is_empty() {
                    // The secondary was the only open end; put it back.
                    opens.push(os);
                    continue;
                }
                let op = opens.swap_remove(rng.below(opens.len()));
                let j = fab.add(&format!("jn{}", n.next("jn")), Prim::Join);
                fab.wire(op.prim, op.port, j, 0);
                fab.wire(os.prim, os.port, j, 1);
                opens.push(Open {
                    prim: j,
                    port: 0,
                    colors: op.colors,
                    direct_queue: false,
                    taint: op.taint,
                });
            }
            _ => unreachable!(),
        }
    }

    // Close every remaining open end with a sink; half of them get an
    // observation label (throughput probes, and the witnesses that make
    // routing bugs observable — an unlabeled switch branch hides its
    // traffic from every oracle). Two ends downstream of one fork belong
    // to the same firing, so at most one of them may carry a label
    // (taint disjointness ⇒ no firing traverses two labels).
    let mut obs = 0usize;
    let mut labeled_taint: BTreeSet<usize> = BTreeSet::new();
    for o in std::mem::take(&mut opens) {
        let k = fab.add(&format!("snk{}", n.next("snk")), Prim::Sink);
        if labeled_taint.is_disjoint(&o.taint) && rng.below(2) == 0 {
            labeled_taint.extend(o.taint.iter().copied());
            let label = format!("obs{obs}");
            obs += 1;
            // A bare label must have a single firing pattern, which only a
            // single-color queue output guarantees; every other end shows
            // the value so distinct patterns stay distinguishable.
            let show = !o.direct_queue || o.colors.len() > 1;
            fab.wire_labeled(o.prim, o.port, k, 0, &label, show);
            fab.set_rate(&label, rate(&mut rng));
        } else {
            fab.wire(o.prim, o.port, k, 0);
        }
    }

    // Some label placements are only visibly illegal under the full
    // firing analysis (a function conflating two colors onto one shown
    // value, say). Repair deterministically — widen or drop offending
    // labels until the fabric validates — rather than rejection-sampling
    // whole topologies.
    loop {
        let offender = match fab.validate() {
            Ok(_) => break,
            Err(XmasError::BareLabelMultiPattern { name })
            | Err(XmasError::MixedLabelStyle { name }) => {
                for ch in &mut fab.channels {
                    if let Some(l) = &mut ch.label {
                        if l.name == name {
                            l.show_value = true;
                        }
                    }
                }
                continue;
            }
            Err(XmasError::AmbiguousLabel { names }) => names.1,
            Err(XmasError::AmbiguousLabelValue { gate }) => {
                // The gate may carry a disambiguating suffix (`obs0_b`);
                // recover the label it groups.
                fab.channels
                    .iter()
                    .filter_map(|ch| ch.label.as_ref())
                    .map(|l| l.name.clone())
                    .find(|n| gate == *n || gate.starts_with(&format!("{n}_")))
                    .expect("ambiguous gate must come from a label")
            }
            Err(e) => unreachable!("generator produced a structurally ill-typed fabric: {e}"),
        };
        for ch in &mut fab.channels {
            if ch.label.as_ref().is_some_and(|l| l.name == offender) {
                ch.label = None;
            }
        }
        fab.rates.remove(&offender);
    }
    fab
}

fn rate(rng: &mut SplitMix64) -> f64 {
    0.5 + 0.5 * rng.below(8) as f64
}

/// Per-kind name counters (deterministic, collision-free names).
#[derive(Default)]
struct Counter {
    queues: usize,
    others: std::collections::BTreeMap<&'static str, usize>,
}

impl Counter {
    fn queue(&mut self, fab: &mut Fabric, cap: usize, init: Vec<Color>) -> usize {
        let id = self.queues;
        self.queues += 1;
        fab.add(&format!("q{id}"), Prim::Queue { cap, init })
    }

    fn next(&mut self, kind: &'static str) -> usize {
        let c = self.others.entry(kind).or_insert(0);
        let id = *c;
        *c += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_well_typed() {
        let cfg = GenConfig::default();
        for seed in 0..200u64 {
            let a = generate(seed, &cfg);
            let b = generate(seed, &cfg);
            assert_eq!(a, b, "seed {seed} must regenerate identically");
            assert!(a.validate().is_ok(), "seed {seed}: {:?}", a.validate().err());
        }
    }

    #[test]
    fn bigger_budgets_stay_well_typed() {
        let cfg = GenConfig { max_steps: 14, max_colors: 3, max_cap: 3, credit_rings: true };
        for seed in 0..100u64 {
            let fab = generate(seed, &cfg);
            assert!(fab.validate().is_ok(), "seed {seed}: {:?}", fab.validate().err());
        }
    }
}
