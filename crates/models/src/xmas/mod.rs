//! An xMAS fabric workbench: a typed primitive algebra, a compiler onto
//! the process-algebra layer, a seeded topology generator, and a
//! minimizing shrinker.
//!
//! xMAS (eXecutable MicroArchitectural Specifications, van Gastel &
//! Schmaltz's "A formalisation of xMAS") builds communication fabrics
//! from eight primitives — **queue**, **source**, **sink**, **fork**,
//! **join**, **switch**, **merge**, **function** — wired by typed
//! channels. Exactly the FAUST/xSTream domain of the paper's case
//! studies, but *compositional*: any well-formed wiring is a fabric.
//!
//! # Compilation scheme
//!
//! Queues are the only stateful primitives. A capacity-`c` queue becomes
//! `c` one-place *cell* processes chained by hidden hop gates (the
//! chain-of-cells is branching-equivalent to a counting queue — the
//! repo's buffer-chain lemma). Every combinational primitive compiles to
//! *gate wiring* between adjacent cells: a **firing** is one maximal
//! forward propagation from an origin (a source, or the tail cell of a
//! queue) through combinational primitives to the sinks and queue head
//! cells it reaches. Each firing becomes one multiway-synchronized gate
//! among its participating cells, so the composed network has no hidden
//! buffering beyond the declared queues — which is what makes the
//! compiled fabrics bisimilar to the repo's hand-written FAUST and
//! xSTream models (see [`cases`]).
//!
//! Two independent compile paths ([`compile::compile_network`] building
//! LTS components directly, and [`compile::render_lot`] emitting
//! mini-LOTOS source for the `pa` frontend) act as a differential oracle
//! for the fuzzing harness (`multival fuzz`).

pub mod analyze;
pub mod cases;
pub mod compile;
pub mod gen;
pub mod shrink;

pub use analyze::{Analysis, Cell, CellState, Firing, Gate};
pub use compile::{compile_network, render_lot, RenderOptions};
pub use gen::{generate, GenConfig};
pub use shrink::shrink;

use std::collections::BTreeMap;
use std::fmt;

/// A data color (packet value) carried by a channel. Colors are small
/// non-negative integers so they can be rendered as mini-LOTOS literals.
pub type Color = i64;

/// Largest admissible color value.
pub const MAX_COLOR: Color = 999_999;

/// Largest admissible queue capacity.
pub const MAX_CAP: usize = 16;

/// An xMAS primitive. Port conventions (in/out arity in comments):
/// out ports and in ports are numbered from 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prim {
    /// Emits any of `colors`, always ready (0 in / 1 out).
    Source {
        /// The non-empty set of colors this source can emit.
        colors: Vec<Color>,
    },
    /// Absorbs anything, always ready (1 in / 0 out).
    Sink,
    /// FIFO buffer of capacity `cap`, pre-loaded with `init` tokens
    /// (front of the queue first) (1 in / 1 out).
    Queue {
        /// Capacity in places (1..=[`MAX_CAP`]).
        cap: usize,
        /// Initial tokens, next-out first (`init.len() <= cap`).
        init: Vec<Color>,
    },
    /// Duplicates each input onto both outputs atomically (1 in / 2 out).
    Fork,
    /// Synchronizes its *primary* input (port 0, carries the data) with a
    /// value-blind token from its *secondary* input (port 1) (2 in / 1 out).
    /// The secondary must be fed directly by a queue or a source.
    Join,
    /// Routes colors in `on` to output 0, all others to output 1
    /// (1 in / 2 out).
    Switch {
        /// Colors routed to output port 0.
        on: Vec<Color>,
    },
    /// Arbiter: forwards one input at a time, either side (2 in / 1 out).
    Merge,
    /// Rewrites colors by a total map over the inflow set (1 in / 1 out).
    Function {
        /// Pairs `(from, to)`; must cover every inflow color.
        map: Vec<(Color, Color)>,
    },
}

impl Prim {
    /// Number of input ports.
    #[must_use]
    pub fn in_ports(&self) -> usize {
        match self {
            Prim::Source { .. } => 0,
            Prim::Sink | Prim::Queue { .. } | Prim::Fork | Prim::Switch { .. } => 1,
            Prim::Function { .. } => 1,
            Prim::Join | Prim::Merge => 2,
        }
    }

    /// Number of output ports.
    #[must_use]
    pub fn out_ports(&self) -> usize {
        match self {
            Prim::Sink => 0,
            Prim::Source { .. } | Prim::Queue { .. } | Prim::Join | Prim::Merge => 1,
            Prim::Function { .. } => 1,
            Prim::Fork | Prim::Switch { .. } => 2,
        }
    }

    /// Human-readable primitive kind.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Prim::Source { .. } => "source",
            Prim::Sink => "sink",
            Prim::Queue { .. } => "queue",
            Prim::Fork => "fork",
            Prim::Join => "join",
            Prim::Switch { .. } => "switch",
            Prim::Merge => "merge",
            Prim::Function { .. } => "function",
        }
    }
}

/// A visible label attached to a channel: firings whose primary
/// propagation traverses the channel synchronize on a gate named after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChanLabel {
    /// Gate base name (a mini-LOTOS identifier, not starting with the
    /// reserved prefixes `h_`/`t_`).
    pub name: String,
    /// Render the carried color as a data offer (`name !v`). When
    /// `false`, the label must be unambiguous (a single firing pattern).
    pub show_value: bool,
}

/// A directed channel from an output port to an input port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    /// Producer end `(prim index, output port)`.
    pub from: (usize, usize),
    /// Consumer end `(prim index, input port)`.
    pub to: (usize, usize),
    /// Optional visible label.
    pub label: Option<ChanLabel>,
}

/// A wired xMAS fabric: named primitives, channels, and per-gate rate
/// annotations for the performance layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Fabric {
    prims: Vec<(String, Prim)>,
    channels: Vec<Channel>,
    rates: BTreeMap<String, f64>,
}

impl Fabric {
    /// An empty fabric.
    #[must_use]
    pub fn new() -> Fabric {
        Fabric::default()
    }

    /// Adds a primitive under `name` (a unique mini-LOTOS identifier)
    /// and returns its index.
    pub fn add(&mut self, name: &str, prim: Prim) -> usize {
        self.prims.push((name.to_owned(), prim));
        self.prims.len() - 1
    }

    /// Wires `from`'s output port `out_port` to `to`'s input port
    /// `in_port` with no label.
    pub fn wire(&mut self, from: usize, out_port: usize, to: usize, in_port: usize) {
        self.channels.push(Channel { from: (from, out_port), to: (to, in_port), label: None });
    }

    /// Wires a labeled (observable) channel; see [`ChanLabel`].
    pub fn wire_labeled(
        &mut self,
        from: usize,
        out_port: usize,
        to: usize,
        in_port: usize,
        label: &str,
        show_value: bool,
    ) {
        self.channels.push(Channel {
            from: (from, out_port),
            to: (to, in_port),
            label: Some(ChanLabel { name: label.to_owned(), show_value }),
        });
    }

    /// Annotates visible gate `gate` with an exponential `rate` for the
    /// performance flow.
    pub fn set_rate(&mut self, gate: &str, rate: f64) {
        self.rates.insert(gate.to_owned(), rate);
    }

    /// The rate annotations (gate base name → rate).
    #[must_use]
    pub fn rates(&self) -> &BTreeMap<String, f64> {
        &self.rates
    }

    /// The primitives, in insertion order.
    #[must_use]
    pub fn prims(&self) -> &[(String, Prim)] {
        &self.prims
    }

    /// The channels, in insertion order.
    #[must_use]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Number of primitives.
    #[must_use]
    pub fn num_prims(&self) -> usize {
        self.prims.len()
    }

    /// Number of channels.
    #[must_use]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Lexicographic shrink metric: `(primitives, channels, capacity +
    /// init tokens + source colors)` — the shrinker only accepts
    /// candidates that strictly decrease it.
    #[must_use]
    pub fn size_metric(&self) -> (usize, usize, u64) {
        let mut bulk = 0u64;
        for (_, p) in &self.prims {
            match p {
                Prim::Queue { cap, init } => bulk += (*cap + init.len()) as u64,
                Prim::Source { colors } => bulk += colors.len() as u64,
                _ => {}
            }
        }
        (self.prims.len(), self.channels.len(), bulk)
    }

    /// Type-checks the fabric and computes its compilation artifacts
    /// (channel colorsets, firings, gates, cell automata).
    ///
    /// # Errors
    ///
    /// Returns the first well-formedness violation found; see
    /// [`XmasError`] for the catalogue.
    pub fn validate(&self) -> Result<Analysis, XmasError> {
        analyze::analyze(self, false)
    }
}

/// A well-formedness or compilation error for an xMAS fabric.
#[derive(Debug, Clone, PartialEq)]
pub enum XmasError {
    /// A primitive or label name is not a valid identifier (or clashes
    /// with reserved names).
    BadName {
        /// The offending name.
        name: String,
        /// What the name was used for.
        role: &'static str,
    },
    /// Two primitives share a name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A color literal is out of the admissible range.
    BadColor {
        /// The offending color.
        color: Color,
    },
    /// A queue has a zero/oversized capacity or more init tokens than
    /// places.
    BadQueue {
        /// The queue's name.
        prim: String,
    },
    /// A source declares no colors, or a function map repeats a key.
    BadPrim {
        /// The primitive's name.
        prim: String,
        /// What is wrong.
        detail: String,
    },
    /// A channel references a port that does not exist.
    BadPort {
        /// Channel index.
        channel: usize,
    },
    /// Two channels share an endpoint port.
    DuplicatePort {
        /// The primitive's name.
        prim: String,
        /// Port index.
        port: usize,
        /// `"in"` or `"out"`.
        dir: &'static str,
    },
    /// A port is left unconnected.
    UnconnectedPort {
        /// The primitive's name.
        prim: String,
        /// Port index.
        port: usize,
        /// `"in"` or `"out"`.
        dir: &'static str,
    },
    /// The fabric has no queue — nothing to compile into components.
    NoQueues,
    /// A channel can never carry any color.
    DeadChannel {
        /// Channel index.
        channel: usize,
        /// Producer primitive name.
        from: String,
    },
    /// A function's map misses an inflow color.
    FunctionIncomplete {
        /// The function's name.
        prim: String,
        /// The unmapped color.
        color: Color,
    },
    /// A join's secondary input is not fed directly by a queue or source.
    JoinSecondaryNotDirect {
        /// The join's name.
        prim: String,
    },
    /// A firing's propagation reaches the same channel twice (a
    /// combinational cycle or a reconvergent fork).
    ReconvergentFiring {
        /// The channel reached twice.
        channel: usize,
    },
    /// A source-originated firing touches no queue cell, so no process
    /// could carry its gate.
    FiringWithoutStorage {
        /// The origin source's name.
        origin: String,
    },
    /// One firing traverses two labeled channels.
    AmbiguousLabel {
        /// The two label names.
        names: (String, String),
    },
    /// Two distinct firings on one gate would render the same label.
    AmbiguousLabelValue {
        /// The gate name.
        gate: String,
    },
    /// A `show_value: false` label covers more than one firing pattern.
    BareLabelMultiPattern {
        /// The label name.
        name: String,
    },
    /// Both `show_value` styles used for the same gate.
    MixedLabelStyle {
        /// The label name.
        name: String,
    },
    /// Two gates ended up with the same rendered name.
    GateNameClash {
        /// The clashing name.
        name: String,
    },
}

impl fmt::Display for XmasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmasError::BadName { name, role } => write!(f, "invalid {role} name `{name}`"),
            XmasError::DuplicateName { name } => write!(f, "duplicate primitive name `{name}`"),
            XmasError::BadColor { color } => {
                write!(f, "color {color} outside 0..={MAX_COLOR}")
            }
            XmasError::BadQueue { prim } => {
                write!(f, "queue `{prim}`: capacity must be 1..={MAX_CAP} and hold its init tokens")
            }
            XmasError::BadPrim { prim, detail } => write!(f, "primitive `{prim}`: {detail}"),
            XmasError::BadPort { channel } => {
                write!(f, "channel #{channel} references a nonexistent port")
            }
            XmasError::DuplicatePort { prim, port, dir } => {
                write!(f, "{dir} port {port} of `{prim}` wired twice")
            }
            XmasError::UnconnectedPort { prim, port, dir } => {
                write!(f, "{dir} port {port} of `{prim}` left unconnected")
            }
            XmasError::NoQueues => write!(f, "fabric has no queue"),
            XmasError::DeadChannel { channel, from } => {
                write!(f, "channel #{channel} (from `{from}`) can never carry a color")
            }
            XmasError::FunctionIncomplete { prim, color } => {
                write!(f, "function `{prim}` has no mapping for inflow color {color}")
            }
            XmasError::JoinSecondaryNotDirect { prim } => {
                write!(
                    f,
                    "join `{prim}`: secondary input must come directly from a queue or source"
                )
            }
            XmasError::ReconvergentFiring { channel } => {
                write!(f, "combinational cycle or reconvergent fork through channel #{channel}")
            }
            XmasError::FiringWithoutStorage { origin } => {
                write!(f, "firing from source `{origin}` reaches no queue cell")
            }
            XmasError::AmbiguousLabel { names } => {
                write!(f, "one firing traverses two labels `{}` and `{}`", names.0, names.1)
            }
            XmasError::AmbiguousLabelValue { gate } => {
                write!(f, "gate `{gate}`: one label maps to two different firings")
            }
            XmasError::BareLabelMultiPattern { name } => {
                write!(f, "bare label `{name}` covers more than one firing pattern")
            }
            XmasError::MixedLabelStyle { name } => {
                write!(f, "label `{name}` mixes show_value styles")
            }
            XmasError::GateNameClash { name } => write!(f, "gate name `{name}` assigned twice"),
        }
    }
}

impl std::error::Error for XmasError {}

/// Whether `name` is a usable mini-LOTOS identifier for gates/processes.
pub(crate) fn is_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}
