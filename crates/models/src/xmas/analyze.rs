//! Fabric type-checking and compilation analysis: channel colorsets
//! (a monotone fixpoint), firing enumeration (deterministic forward
//! propagation per origin color), gate grouping, and the per-cell
//! automata both compile paths share.

use super::{is_identifier, Channel, Color, Fabric, Prim, XmasError, MAX_CAP, MAX_COLOR};
use std::collections::{BTreeMap, BTreeSet};

/// State of a one-place queue cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CellState {
    /// The cell holds nothing.
    Empty,
    /// The cell holds one token of the given color.
    Hold(Color),
}

/// One queue cell: a one-place buffer process of the compiled network.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Index of the owning queue primitive.
    pub queue: usize,
    /// Position within the queue (0 = input side, `cap - 1` = output side).
    pub pos: usize,
    /// Component name (`{queue}_{pos}`).
    pub name: String,
    /// The colors this cell can hold (the queue's colorset, sorted).
    pub colors: Vec<Color>,
    /// Initially held token, if any.
    pub init: Option<Color>,
    /// Transitions `(from, label, to)`, sorted and deduplicated.
    pub transitions: Vec<(CellState, String, CellState)>,
    /// Gate base names used by this cell.
    pub gates: BTreeSet<String>,
}

/// One atomic fabric event: a maximal forward propagation from an origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing {
    /// Origin primitive (a source, or a queue draining its tail cell).
    pub origin: usize,
    /// The color emitted/drained at the origin.
    pub origin_color: Color,
    /// Queues drained value-blind as join secondaries.
    pub secondaries: Vec<usize>,
    /// Queues filled, with the arriving color.
    pub fills: Vec<(usize, Color)>,
    /// Traversed label, if any: `(name, carried color, show_value)`.
    pub label: Option<(String, Color, bool)>,
}

/// A synchronization gate of the compiled network.
#[derive(Debug, Clone)]
pub struct Gate {
    /// Final rendered gate name.
    pub name: String,
    /// Whether the gate is internalized (τ) in the composed result.
    pub hidden: bool,
    /// Participating cells (global cell indices, sorted).
    pub participants: Vec<usize>,
}

/// The complete compilation analysis of a fabric.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-channel colorsets (sorted).
    pub chan_colors: Vec<Vec<Color>>,
    /// All firings, in enumeration order.
    pub firings: Vec<Firing>,
    /// All gates (firing gates and hop gates).
    pub gates: Vec<Gate>,
    /// All queue cells with their derived automata.
    pub cells: Vec<Cell>,
}

impl Analysis {
    /// Gates that synchronize (≥ 2 participating cells), sorted.
    #[must_use]
    pub fn sync_gates(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .gates
            .iter()
            .filter(|g| g.participants.len() >= 2)
            .map(|g| g.name.clone())
            .collect();
        v.sort();
        v
    }

    /// Gates hidden in the composed result, sorted.
    #[must_use]
    pub fn hidden_gates(&self) -> Vec<String> {
        let mut v: Vec<String> =
            self.gates.iter().filter(|g| g.hidden).map(|g| g.name.clone()).collect();
        v.sort();
        v
    }

    /// Visible gate base names, sorted.
    #[must_use]
    pub fn visible_gates(&self) -> Vec<String> {
        let mut v: Vec<String> =
            self.gates.iter().filter(|g| !g.hidden).map(|g| g.name.clone()).collect();
        v.sort();
        v
    }
}

/// How a firing affects one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum DrainKind {
    None,
    Specific(Color),
    Any,
}

type Effect = (DrainKind, Option<Color>);

/// Runs the full analysis. `flip_switch` inverts every switch's routing
/// polarity — the injected-bug hook for the differential fuzzer (only the
/// mini-LOTOS render path uses `true`).
///
/// # Errors
///
/// Returns the first well-formedness violation found.
pub fn analyze(fabric: &Fabric, flip_switch: bool) -> Result<Analysis, XmasError> {
    check_prims(fabric)?;
    let (out_ch, in_ch) = port_maps(fabric)?;
    check_join_secondaries(fabric, &in_ch)?;
    let chan_colors = color_fixpoint(fabric, &out_ch, &in_ch, flip_switch)?;
    for (c, colors) in chan_colors.iter().enumerate() {
        if colors.is_empty() {
            let from = fabric.prims()[fabric.channels()[c].from.0].0.clone();
            return Err(XmasError::DeadChannel { channel: c, from });
        }
    }
    let firings = enumerate_firings(fabric, &out_ch, &in_ch, &chan_colors, flip_switch)?;
    let (mut cells, cell_base) = make_cells(fabric, &out_ch, &chan_colors)?;
    let gates = assign_gates(fabric, &firings, &cell_base, &mut cells)?;
    let chan_colors = chan_colors.into_iter().map(|s| s.into_iter().collect()).collect();
    Ok(Analysis { chan_colors, firings, gates, cells })
}

fn check_prims(fabric: &Fabric) -> Result<(), XmasError> {
    let mut seen = BTreeSet::new();
    let mut any_queue = false;
    for (name, prim) in fabric.prims() {
        if !is_identifier(name) {
            return Err(XmasError::BadName { name: name.clone(), role: "primitive" });
        }
        if !seen.insert(name.clone()) {
            return Err(XmasError::DuplicateName { name: name.clone() });
        }
        match prim {
            Prim::Source { colors } => {
                if colors.is_empty() {
                    return Err(XmasError::BadPrim {
                        prim: name.clone(),
                        detail: "source declares no colors".to_owned(),
                    });
                }
                check_colors(colors)?;
                let set: BTreeSet<_> = colors.iter().collect();
                if set.len() != colors.len() {
                    return Err(XmasError::BadPrim {
                        prim: name.clone(),
                        detail: "source repeats a color".to_owned(),
                    });
                }
            }
            Prim::Queue { cap, init } => {
                any_queue = true;
                if *cap == 0 || *cap > MAX_CAP || init.len() > *cap {
                    return Err(XmasError::BadQueue { prim: name.clone() });
                }
                check_colors(init)?;
            }
            Prim::Switch { on } => check_colors(on)?,
            Prim::Function { map } => {
                let keys: BTreeSet<_> = map.iter().map(|(k, _)| *k).collect();
                if keys.len() != map.len() {
                    return Err(XmasError::BadPrim {
                        prim: name.clone(),
                        detail: "function map repeats a key".to_owned(),
                    });
                }
                for (k, v) in map {
                    check_colors(&[*k, *v])?;
                }
            }
            Prim::Sink | Prim::Fork | Prim::Join | Prim::Merge => {}
        }
    }
    if !any_queue {
        return Err(XmasError::NoQueues);
    }
    for ch in fabric.channels() {
        if let Some(label) = &ch.label {
            let reserved = !is_identifier(&label.name)
                || label.name.starts_with("h_")
                || label.name.starts_with("t_")
                || label.name == "i"
                || label.name == "exit";
            if reserved {
                return Err(XmasError::BadName { name: label.name.clone(), role: "label" });
            }
        }
    }
    Ok(())
}

fn check_colors(colors: &[Color]) -> Result<(), XmasError> {
    for &c in colors {
        if !(0..=MAX_COLOR).contains(&c) {
            return Err(XmasError::BadColor { color: c });
        }
    }
    Ok(())
}

/// Port connectivity: every port wired exactly once. Returns
/// `(out_channel, in_channel)` maps indexed `[prim][port] -> channel`.
type PortMaps = (Vec<Vec<usize>>, Vec<Vec<usize>>);

fn port_maps(fabric: &Fabric) -> Result<PortMaps, XmasError> {
    let prims = fabric.prims();
    let mut out_ch: Vec<Vec<Option<usize>>> =
        prims.iter().map(|(_, p)| vec![None; p.out_ports()]).collect();
    let mut in_ch: Vec<Vec<Option<usize>>> =
        prims.iter().map(|(_, p)| vec![None; p.in_ports()]).collect();
    for (c, ch) in fabric.channels().iter().enumerate() {
        let (fp, fo) = ch.from;
        let (tp, ti) = ch.to;
        if fp >= prims.len() || tp >= prims.len() {
            return Err(XmasError::BadPort { channel: c });
        }
        let out_slot = out_ch[fp].get_mut(fo).ok_or(XmasError::BadPort { channel: c })?;
        if out_slot.replace(c).is_some() {
            return Err(XmasError::DuplicatePort {
                prim: prims[fp].0.clone(),
                port: fo,
                dir: "out",
            });
        }
        let in_slot = in_ch[tp].get_mut(ti).ok_or(XmasError::BadPort { channel: c })?;
        if in_slot.replace(c).is_some() {
            return Err(XmasError::DuplicatePort {
                prim: prims[tp].0.clone(),
                port: ti,
                dir: "in",
            });
        }
    }
    let check =
        |slots: &[Vec<Option<usize>>], dir: &'static str| -> Result<Vec<Vec<usize>>, XmasError> {
            slots
                .iter()
                .enumerate()
                .map(|(p, ports)| {
                    ports
                        .iter()
                        .enumerate()
                        .map(|(port, slot)| {
                            slot.ok_or_else(|| XmasError::UnconnectedPort {
                                prim: prims[p].0.clone(),
                                port,
                                dir,
                            })
                        })
                        .collect()
                })
                .collect()
        };
    Ok((check(&out_ch, "out")?, check(&in_ch, "in")?))
}

fn check_join_secondaries(fabric: &Fabric, in_ch: &[Vec<usize>]) -> Result<(), XmasError> {
    for (p, (name, prim)) in fabric.prims().iter().enumerate() {
        if matches!(prim, Prim::Join) {
            let sec_chan = in_ch[p][1];
            let (sp, _) = fabric.channels()[sec_chan].from;
            if !matches!(fabric.prims()[sp].1, Prim::Queue { .. } | Prim::Source { .. }) {
                return Err(XmasError::JoinSecondaryNotDirect { prim: name.clone() });
            }
        }
    }
    Ok(())
}

fn apply_function(
    fabric: &Fabric,
    prim: usize,
    map: &[(Color, Color)],
    color: Color,
) -> Result<Color, XmasError> {
    map.iter().find(|(k, _)| *k == color).map(|(_, v)| *v).ok_or_else(|| {
        XmasError::FunctionIncomplete { prim: fabric.prims()[prim].0.clone(), color }
    })
}

/// The monotone colorset fixpoint over all channels.
fn color_fixpoint(
    fabric: &Fabric,
    out_ch: &[Vec<usize>],
    in_ch: &[Vec<usize>],
    flip_switch: bool,
) -> Result<Vec<BTreeSet<Color>>, XmasError> {
    let prims = fabric.prims();
    let mut colors: Vec<BTreeSet<Color>> = vec![BTreeSet::new(); fabric.num_channels()];
    loop {
        let mut changed = false;
        for (p, (_, prim)) in prims.iter().enumerate() {
            let inflow = |port: usize, colors: &[BTreeSet<Color>]| colors[in_ch[p][port]].clone();
            let outs: Vec<(usize, BTreeSet<Color>)> = match prim {
                Prim::Source { colors: cs } => {
                    vec![(out_ch[p][0], cs.iter().copied().collect())]
                }
                Prim::Sink => vec![],
                Prim::Queue { init, .. } => {
                    let mut s = inflow(0, &colors);
                    s.extend(init.iter().copied());
                    vec![(out_ch[p][0], s)]
                }
                Prim::Fork => {
                    let s = inflow(0, &colors);
                    vec![(out_ch[p][0], s.clone()), (out_ch[p][1], s)]
                }
                Prim::Join => vec![(out_ch[p][0], inflow(0, &colors))],
                Prim::Switch { on } => {
                    let s = inflow(0, &colors);
                    let on: BTreeSet<Color> = on.iter().copied().collect();
                    let hit: BTreeSet<Color> =
                        s.iter().copied().filter(|c| on.contains(c)).collect();
                    let miss: BTreeSet<Color> =
                        s.iter().copied().filter(|c| !on.contains(c)).collect();
                    if flip_switch {
                        vec![(out_ch[p][0], miss), (out_ch[p][1], hit)]
                    } else {
                        vec![(out_ch[p][0], hit), (out_ch[p][1], miss)]
                    }
                }
                Prim::Merge => {
                    let mut s = inflow(0, &colors);
                    s.extend(inflow(1, &colors));
                    vec![(out_ch[p][0], s)]
                }
                Prim::Function { map } => {
                    let mut s = BTreeSet::new();
                    for c in inflow(0, &colors) {
                        s.insert(apply_function(fabric, p, map, c)?);
                    }
                    vec![(out_ch[p][0], s)]
                }
            };
            for (chan, set) in outs {
                if set != colors[chan] {
                    // The flow is monotone, so sets only ever grow.
                    colors[chan].extend(set);
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(colors);
        }
    }
}

/// Whether primitive `p`'s single output feeds a join's *secondary*
/// input (such a queue/source never originates firings of its own).
fn feeds_join_secondary(fabric: &Fabric, out_ch: &[Vec<usize>], p: usize) -> bool {
    let chan = out_ch[p][0];
    let (tp, ti) = fabric.channels()[chan].to;
    ti == 1 && matches!(fabric.prims()[tp].1, Prim::Join)
}

/// Deterministic forward propagation of one origin color.
fn propagate(
    fabric: &Fabric,
    out_ch: &[Vec<usize>],
    in_ch: &[Vec<usize>],
    origin: usize,
    origin_color: Color,
    flip_switch: bool,
) -> Result<Firing, XmasError> {
    let mut fills = Vec::new();
    let mut secondaries = Vec::new();
    let mut label: Option<(String, Color, bool)> = None;
    let mut seen = BTreeSet::new();
    let mut stack = vec![(out_ch[origin][0], origin_color)];
    while let Some((chan, color)) = stack.pop() {
        if !seen.insert(chan) {
            return Err(XmasError::ReconvergentFiring { channel: chan });
        }
        let Channel { to: (tp, ti), label: chan_label, .. } = &fabric.channels()[chan];
        if let Some(l) = chan_label {
            if let Some((prev, _, _)) = &label {
                return Err(XmasError::AmbiguousLabel { names: (prev.clone(), l.name.clone()) });
            }
            label = Some((l.name.clone(), color, l.show_value));
        }
        let (tp, ti) = (*tp, *ti);
        match &fabric.prims()[tp].1 {
            Prim::Sink => {}
            Prim::Queue { .. } => fills.push((tp, color)),
            Prim::Fork => {
                stack.push((out_ch[tp][0], color));
                stack.push((out_ch[tp][1], color));
            }
            Prim::Function { map } => {
                stack.push((out_ch[tp][0], apply_function(fabric, tp, map, color)?));
            }
            Prim::Switch { on } => {
                let hit = on.contains(&color) != flip_switch;
                stack.push((out_ch[tp][if hit { 0 } else { 1 }], color));
            }
            Prim::Merge => stack.push((out_ch[tp][0], color)),
            Prim::Join => {
                debug_assert_eq!(ti, 0, "secondary feeders never originate propagation");
                let sec_chan = in_ch[tp][1];
                let (sp, _) = fabric.channels()[sec_chan].from;
                if matches!(fabric.prims()[sp].1, Prim::Queue { .. }) {
                    secondaries.push(sp);
                }
                stack.push((out_ch[tp][0], color));
            }
            Prim::Source { .. } => unreachable!("sources have no input ports"),
        }
    }
    fills.sort_unstable();
    secondaries.sort_unstable();
    Ok(Firing { origin, origin_color, secondaries, fills, label })
}

fn enumerate_firings(
    fabric: &Fabric,
    out_ch: &[Vec<usize>],
    in_ch: &[Vec<usize>],
    chan_colors: &[BTreeSet<Color>],
    flip_switch: bool,
) -> Result<Vec<Firing>, XmasError> {
    let mut firings = Vec::new();
    for (p, (name, prim)) in fabric.prims().iter().enumerate() {
        let colors: Vec<Color> = match prim {
            Prim::Source { colors } => {
                let mut cs = colors.clone();
                cs.sort_unstable();
                cs
            }
            Prim::Queue { .. } => chan_colors[out_ch[p][0]].iter().copied().collect(),
            _ => continue,
        };
        if feeds_join_secondary(fabric, out_ch, p) {
            continue;
        }
        for v in colors {
            let firing = propagate(fabric, out_ch, in_ch, p, v, flip_switch)?;
            let has_storage = matches!(prim, Prim::Queue { .. })
                || !firing.secondaries.is_empty()
                || !firing.fills.is_empty();
            if !has_storage {
                return Err(XmasError::FiringWithoutStorage { origin: name.clone() });
            }
            firings.push(firing);
        }
    }
    Ok(firings)
}

/// Builds the cell skeletons (hop transitions included) and the
/// `(queue prim) -> first global cell` index.
fn make_cells(
    fabric: &Fabric,
    out_ch: &[Vec<usize>],
    chan_colors: &[BTreeSet<Color>],
) -> Result<(Vec<Cell>, BTreeMap<usize, usize>), XmasError> {
    let mut cells = Vec::new();
    let mut cell_base = BTreeMap::new();
    for (p, (name, prim)) in fabric.prims().iter().enumerate() {
        let Prim::Queue { cap, init } = prim else { continue };
        let colors: Vec<Color> = chan_colors[out_ch[p][0]].iter().copied().collect();
        cell_base.insert(p, cells.len());
        for pos in 0..*cap {
            // init[0] is next out and sits at the output side (pos cap-1).
            let back = cap - 1 - pos;
            let init_token = init.get(back).copied();
            cells.push(Cell {
                queue: p,
                pos,
                name: format!("{name}_{pos}"),
                colors: colors.clone(),
                init: init_token,
                transitions: Vec::new(),
                gates: BTreeSet::new(),
            });
        }
    }
    // Hop transitions between adjacent cells of each queue.
    let mut hop_transitions: Vec<(usize, CellState, String, CellState)> = Vec::new();
    for (p, (name, prim)) in fabric.prims().iter().enumerate() {
        let Prim::Queue { cap, .. } = prim else { continue };
        let base = cell_base[&p];
        for j in 0..cap.saturating_sub(1) {
            let gate = format!("h_{name}_{j}");
            for &v in &cells[base + j].colors.clone() {
                let lbl = format!("{gate} !{v}");
                hop_transitions.push((base + j, CellState::Hold(v), lbl.clone(), CellState::Empty));
                hop_transitions.push((base + j + 1, CellState::Empty, lbl, CellState::Hold(v)));
            }
            cells[base + j].gates.insert(gate.clone());
            cells[base + j + 1].gates.insert(gate);
        }
    }
    for (cell, from, lbl, to) in hop_transitions {
        cells[cell].transitions.push((from, lbl, to));
    }
    Ok((cells, cell_base))
}

/// Per-firing cell effects, participant grouping, gate naming, and the
/// resulting cell transitions. Returns all gates (hop gates included).
fn assign_gates(
    fabric: &Fabric,
    firings: &[Firing],
    cell_base: &BTreeMap<usize, usize>,
    cells: &mut [Cell],
) -> Result<Vec<Gate>, XmasError> {
    let tail_cell = |q: usize| -> usize {
        let Prim::Queue { cap, .. } = &fabric.prims()[q].1 else { unreachable!() };
        cell_base[&q] + cap - 1
    };
    let head_cell = |q: usize| -> usize { cell_base[&q] };

    // Effects per firing.
    let mut effects: Vec<BTreeMap<usize, Effect>> = Vec::with_capacity(firings.len());
    for f in firings {
        let mut eff: BTreeMap<usize, Effect> = BTreeMap::new();
        if matches!(fabric.prims()[f.origin].1, Prim::Queue { .. }) {
            eff.entry(tail_cell(f.origin)).or_insert((DrainKind::None, None)).0 =
                DrainKind::Specific(f.origin_color);
        }
        for &s in &f.secondaries {
            eff.entry(tail_cell(s)).or_insert((DrainKind::None, None)).0 = DrainKind::Any;
        }
        for &(q, c) in &f.fills {
            eff.entry(head_cell(q)).or_insert((DrainKind::None, None)).1 = Some(c);
        }
        effects.push(eff);
    }

    // Group firings into gates. Visible: by (label name, participants);
    // hidden: by (origin, participants) so the shown origin color stays
    // injective per gate.
    type Parts = Vec<usize>;
    let mut visible: BTreeMap<(String, Parts), Vec<usize>> = BTreeMap::new();
    let mut hidden: BTreeMap<(usize, Parts), Vec<usize>> = BTreeMap::new();
    for (i, f) in firings.iter().enumerate() {
        let parts: Parts = effects[i].keys().copied().collect();
        match &f.label {
            Some((name, _, _)) => visible.entry((name.clone(), parts)).or_default().push(i),
            None => hidden.entry((f.origin, parts)).or_default().push(i),
        }
    }

    // Final names: first group of a base name keeps it, later ones get
    // deterministic suffixes.
    let mut taken: BTreeSet<String> = BTreeSet::new();
    let mut gates: Vec<Gate> = Vec::new();
    let mut seen_base: BTreeMap<String, usize> = BTreeMap::new();
    let emit = |name: String,
                hidden: bool,
                parts: &Parts,
                taken: &mut BTreeSet<String>,
                gates: &mut Vec<Gate>|
     -> Result<usize, XmasError> {
        if !taken.insert(name.clone()) {
            return Err(XmasError::GateNameClash { name });
        }
        gates.push(Gate { name, hidden, participants: parts.clone() });
        Ok(gates.len() - 1)
    };

    // label strings per firing (filled below), then transitions.
    let mut firing_gate: Vec<usize> = vec![usize::MAX; firings.len()];
    let mut firing_label: Vec<String> = vec![String::new(); firings.len()];

    for ((base, parts), members) in &visible {
        let n = seen_base.entry(base.clone()).or_insert(0);
        let name = if *n == 0 {
            base.clone()
        } else if *n <= 25 {
            format!("{base}_{}", (b'a' + *n as u8) as char)
        } else {
            format!("{base}_x{n}")
        };
        *n += 1;
        // show_value must be consistent within the gate.
        let shows: BTreeSet<bool> =
            members.iter().map(|&i| firings[i].label.as_ref().is_some_and(|l| l.2)).collect();
        if shows.len() > 1 {
            return Err(XmasError::MixedLabelStyle { name: base.clone() });
        }
        let show = shows.into_iter().next().unwrap_or(false);
        if !show && members.len() > 1 {
            return Err(XmasError::BareLabelMultiPattern { name: base.clone() });
        }
        let g = emit(name.clone(), false, parts, &mut taken, &mut gates)?;
        for &i in members {
            firing_gate[i] = g;
            firing_label[i] = if show {
                let (_, v, _) = firings[i].label.as_ref().expect("visible firing has a label");
                format!("{name} !{v}")
            } else {
                name.clone()
            };
        }
    }
    for (hidden_idx, ((_, parts), members)) in hidden.iter().enumerate() {
        let name = format!("t_{hidden_idx}");
        let g = emit(name.clone(), true, parts, &mut taken, &mut gates)?;
        for &i in members {
            firing_gate[i] = g;
            firing_label[i] = format!("{name} !{}", firings[i].origin_color);
        }
    }
    // The hop gates of every multi-place queue chain: hidden, two-party.
    for (p, (name, prim)) in fabric.prims().iter().enumerate() {
        let Prim::Queue { cap, .. } = prim else { continue };
        let base = cell_base[&p];
        for j in 0..cap.saturating_sub(1) {
            let parts = vec![base + j, base + j + 1];
            emit(format!("h_{name}_{j}"), true, &parts, &mut taken, &mut gates)?;
        }
    }
    // Injectivity: within one gate, a label string must map to a unique
    // effect set, otherwise synchronization would conflate firings.
    let mut by_gate: BTreeMap<usize, BTreeMap<&str, &BTreeMap<usize, Effect>>> = BTreeMap::new();
    for i in 0..firings.len() {
        let slot = by_gate.entry(firing_gate[i]).or_default();
        if let Some(prev) = slot.insert(&firing_label[i], &effects[i]) {
            if prev != &effects[i] {
                return Err(XmasError::AmbiguousLabelValue {
                    gate: gates[firing_gate[i]].name.clone(),
                });
            }
        }
    }

    // Cell transitions from effects.
    let mut tset: Vec<BTreeSet<(CellState, String, CellState)>> =
        cells.iter().map(|c| c.transitions.iter().cloned().collect()).collect();
    for (i, eff) in effects.iter().enumerate() {
        let gate_name = gates[firing_gate[i]].name.clone();
        let lbl = &firing_label[i];
        for (&cell, &(drain, fill)) in eff {
            cells[cell].gates.insert(gate_name.clone());
            let colors = cells[cell].colors.clone();
            let push = |set: &mut BTreeSet<(CellState, String, CellState)>,
                        from: CellState,
                        to: CellState| {
                set.insert((from, lbl.clone(), to));
            };
            let to = match fill {
                Some(x) => CellState::Hold(x),
                None => CellState::Empty,
            };
            match drain {
                DrainKind::Specific(v) => push(&mut tset[cell], CellState::Hold(v), to),
                DrainKind::Any => {
                    for &w in &colors {
                        push(&mut tset[cell], CellState::Hold(w), to);
                    }
                }
                DrainKind::None => {
                    debug_assert!(fill.is_some(), "effect with neither drain nor fill");
                    push(&mut tset[cell], CellState::Empty, to);
                }
            }
        }
    }
    for (cell, set) in tset.into_iter().enumerate() {
        cells[cell].transitions = set.into_iter().collect();
    }
    Ok(gates)
}
