//! The two compile paths of the xMAS workbench.
//!
//! * [`compile_network`] builds every queue cell as an explicit LTS (via
//!   [`LtsBuilder`]) and wires them into a pipeline
//!   [`multival_lts::pipeline::Network`] directly — no parser,
//!   no term rewriting.
//! * [`render_lot`] emits the same cell automata as mini-LOTOS source
//!   (one mutually recursive process per cell state, a linear `|[G]|`
//!   fold, a top-level `hide`), to be consumed by the `pa` frontend's
//!   [`parse_spec`](multival_pa::parse_spec) +
//!   [`extract_network`](multival_pa::extract_network).
//!
//! The two paths share the [`Analysis`] but nothing else, which is what
//! makes them a meaningful differential-testing oracle: a bug in either
//! path (or in the pipeline layers underneath) shows up as a canonical
//! LTS mismatch. [`RenderOptions::flip_switch`] deliberately injects
//! such a bug for harness self-tests.

use super::analyze::{analyze, Analysis, CellState};
use super::{Fabric, XmasError};
use multival_lts::pipeline::Network;
use multival_lts::{Lts, LtsBuilder};
use std::fmt::Write as _;

/// Options for [`render_lot`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RenderOptions {
    /// Invert every switch's routing polarity — an intentionally injected
    /// compiler bug used to validate that the differential fuzzing oracle
    /// catches miscompilation (never set outside tests/harness).
    pub flip_switch: bool,
}

/// Compiles a fabric into a pipeline [`Network`] of queue-cell LTSs.
///
/// # Errors
///
/// Propagates [`Fabric::validate`] errors.
pub fn compile_network(fabric: &Fabric) -> Result<Network, XmasError> {
    let analysis = fabric.validate()?;
    Ok(network_from_analysis(&analysis))
}

/// Builds the [`Network`] from an existing analysis (shared with the
/// fuzz harness, which needs the analysis for other oracles too).
#[must_use]
pub fn network_from_analysis(analysis: &Analysis) -> Network {
    let mut net = Network::new();
    for cell in &analysis.cells {
        net.add_component(&cell.name, cell_lts(cell));
    }
    net.sync_on(analysis.sync_gates());
    net.hide(analysis.hidden_gates());
    net
}

/// One cell automaton as an explicit LTS: state 0 is `Empty`, state
/// `1 + i` holds the `i`-th color of the cell's (sorted) colorset.
fn cell_lts(cell: &super::analyze::Cell) -> Lts {
    let mut b = LtsBuilder::new();
    b.ensure_states(1 + cell.colors.len() as u32);
    let state_id = |s: &CellState| -> u32 {
        match s {
            CellState::Empty => 0,
            CellState::Hold(v) => {
                1 + cell.colors.binary_search(v).expect("cell colors cover transitions") as u32
            }
        }
    };
    for (from, label, to) in &cell.transitions {
        b.add_transition(state_id(from), label, state_id(to));
    }
    let initial = match cell.init {
        Some(v) => state_id(&CellState::Hold(v)),
        None => 0,
    };
    b.build(initial)
}

/// Renders a fabric as a standalone mini-LOTOS model: per-state cell
/// processes plus a `behaviour` composing all cells with alphabet-scoped
/// synchronization and hidden internal gates. The output parses with
/// [`multival_pa::parse_spec`] and extracts with
/// [`multival_pa::extract_network`] (and is therefore directly usable as
/// a `multival reduce`/`explore` input file).
///
/// # Errors
///
/// Propagates [`Fabric::validate`] errors (computed under
/// [`RenderOptions::flip_switch`] when set).
pub fn render_lot(fabric: &Fabric, options: &RenderOptions) -> Result<String, XmasError> {
    let analysis = analyze(fabric, options.flip_switch)?;
    Ok(render_from_analysis(&analysis))
}

/// Process name of one cell state.
fn proc_name(cell: &super::analyze::Cell, state: &CellState) -> String {
    match state {
        CellState::Empty => format!("X_{}_e", cell.name),
        CellState::Hold(v) => format!("X_{}_v{v}", cell.name),
    }
}

/// Renders the mini-LOTOS text from an existing analysis.
#[must_use]
pub fn render_from_analysis(analysis: &Analysis) -> String {
    let mut src = String::new();
    let _ = writeln!(src, "-- generated xMAS fabric ({} cells)", analysis.cells.len());
    for cell in &analysis.cells {
        let gates: Vec<&str> = cell.gates.iter().map(String::as_str).collect();
        let gate_list = gates.join(", ");
        let mut states: Vec<CellState> = vec![CellState::Empty];
        states.extend(cell.colors.iter().map(|&v| CellState::Hold(v)));
        for state in &states {
            let outs: Vec<&(CellState, String, CellState)> =
                cell.transitions.iter().filter(|(from, _, _)| from == state).collect();
            let _ = writeln!(src, "process {}[{gate_list}] :=", proc_name(cell, state));
            if outs.is_empty() {
                let _ = writeln!(src, "    stop");
            } else {
                for (k, (_, label, to)) in outs.iter().enumerate() {
                    let sep = if k == 0 { "   " } else { " []" };
                    let _ =
                        writeln!(src, "    {sep} {label}; {}[{gate_list}]", proc_name(cell, to));
                }
            }
            let _ = writeln!(src, "endproc\n");
        }
    }

    let _ = writeln!(src, "behaviour");
    let hidden = analysis.hidden_gates();
    let mut indent = String::from("  ");
    if !hidden.is_empty() {
        let _ = writeln!(src, "  hide {} in", hidden.join(", "));
        indent.push_str("  ");
    }
    // Linear fold: each component joins the prefix synchronized on the
    // sync gates both sides possess (every such shared gate must be
    // listed — nested listings produce the correct ≥3-way syncs).
    let sync: std::collections::BTreeSet<String> = analysis.sync_gates().into_iter().collect();
    let initial_call = |cell: &super::analyze::Cell| -> String {
        let gates: Vec<&str> = cell.gates.iter().map(String::as_str).collect();
        let init_state = match cell.init {
            Some(v) => CellState::Hold(v),
            None => CellState::Empty,
        };
        format!("{}[{}]", proc_name(cell, &init_state), gates.join(", "))
    };
    let mut acc = initial_call(&analysis.cells[0]);
    let mut folded: std::collections::BTreeSet<&String> = analysis.cells[0].gates.iter().collect();
    for cell in &analysis.cells[1..] {
        let shared: Vec<&str> = cell
            .gates
            .iter()
            .filter(|g| folded.contains(g) && sync.contains(g.as_str()))
            .map(String::as_str)
            .collect();
        let call = initial_call(cell);
        acc = if shared.is_empty() {
            format!("({acc}\n{indent} ||| {call})")
        } else {
            format!("({acc}\n{indent} |[{}]|\n{indent} {call})", shared.join(", "))
        };
        folded.extend(cell.gates.iter());
    }
    let _ = writeln!(src, "{indent}{acc}");
    src
}

#[cfg(test)]
mod tests {
    use super::super::gen::{generate, GenConfig};
    use super::super::{cases, Fabric, Prim};
    use super::*;
    use multival_lts::io::write_aut;
    use multival_lts::pipeline::{canonicalize, run_pipeline, PipelineOptions};
    use multival_pa::{extract_network, parse_spec, ExploreOptions};

    fn canonical_via_builder(fab: &Fabric) -> String {
        let net = compile_network(fab).expect("compiles");
        let run = run_pipeline(&net, &PipelineOptions::default());
        assert!(run.complete());
        write_aut(&canonicalize(&run.lts))
    }

    fn canonical_via_lot(fab: &Fabric, options: &RenderOptions) -> String {
        let src = render_lot(fab, options).expect("renders");
        let spec = parse_spec(&src).unwrap_or_else(|e| panic!("parses: {e}\n{src}"));
        let net = extract_network(&spec, &ExploreOptions::default())
            .unwrap_or_else(|e| panic!("extracts: {e}\n{src}"));
        let run = run_pipeline(&net, &PipelineOptions::default());
        assert!(run.complete());
        write_aut(&canonicalize(&run.lts))
    }

    #[test]
    fn both_paths_agree_on_the_case_fabrics() {
        for fab in [cases::xstream_fabric(), cases::complement_fabric()] {
            assert_eq!(
                canonical_via_builder(&fab),
                canonical_via_lot(&fab, &RenderOptions::default())
            );
        }
    }

    #[test]
    fn both_paths_agree_on_generated_fabrics() {
        let cfg = GenConfig::default();
        for seed in 0..12u64 {
            let fab = generate(seed, &cfg);
            assert_eq!(
                canonical_via_builder(&fab),
                canonical_via_lot(&fab, &RenderOptions::default()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn flipped_switch_changes_observable_behaviour() {
        // A switch whose branches are observably different: color 1 is
        // delivered on a labeled channel, color 2 on an unlabeled one.
        let mut fab = Fabric::new();
        let s = fab.add("s", Prim::Source { colors: vec![1, 2] });
        let q = fab.add("q", Prim::Queue { cap: 1, init: vec![] });
        let sw = fab.add("sw", Prim::Switch { on: vec![1] });
        let q1 = fab.add("qa", Prim::Queue { cap: 1, init: vec![] });
        let k1 = fab.add("ka", Prim::Sink);
        let k2 = fab.add("kb", Prim::Sink);
        fab.wire_labeled(s, 0, q, 0, "inp", true);
        fab.wire(q, 0, sw, 0);
        fab.wire(sw, 0, q1, 0);
        fab.wire(sw, 1, k2, 0);
        fab.wire_labeled(q1, 0, k1, 0, "hit", true);
        let straight = canonical_via_lot(&fab, &RenderOptions::default());
        let flipped = canonical_via_lot(&fab, &RenderOptions { flip_switch: true });
        assert_eq!(straight, canonical_via_builder(&fab));
        assert_ne!(straight, flipped, "the injected bug must be observable");
    }
}
