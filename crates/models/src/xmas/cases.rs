//! The paper's case-study networks re-expressed as xMAS fabrics.
//!
//! These validate the compiler on known answers: each fabric, compiled
//! through [`super::compile_network`] and reduced, must be
//! branching-bisimilar to the corresponding hand-written model
//! ([`crate::xstream::pipeline::network`] and
//! [`crate::faust::noc::complement_network`]).

use super::{Fabric, Prim};
use crate::faust::noc::{xy_next_hop, LINKS};

/// The xSTream producer/consumer pipeline as an xMAS fabric.
///
/// Mirrors [`crate::xstream::pipeline::PipelineConfig::default`]: a
/// 2-place push queue, a 2-place pop queue guarded by a 2-credit ring,
/// and a 1-place returner stage. Visible gates: bare `push` and `pop`
/// (the hand-written model's external interface); the transfer and
/// credit-return hops stay hidden.
#[must_use]
pub fn xstream_fabric() -> Fabric {
    let mut fab = Fabric::new();
    let producer = fab.add("producer", Prim::Source { colors: vec![1] });
    let push_q = fab.add("pushq", Prim::Queue { cap: 2, init: vec![] });
    let credits = fab.add("credits", Prim::Queue { cap: 2, init: vec![1, 1] });
    let xfer = fab.add("xfer", Prim::Join);
    let pop_q = fab.add("popq", Prim::Queue { cap: 2, init: vec![] });
    let fork = fab.add("tap", Prim::Fork);
    let consumer = fab.add("consumer", Prim::Sink);
    let returner = fab.add("returner", Prim::Queue { cap: 1, init: vec![] });

    fab.wire_labeled(producer, 0, push_q, 0, "push", false);
    fab.wire(push_q, 0, xfer, 0);
    fab.wire(credits, 0, xfer, 1);
    fab.wire(xfer, 0, pop_q, 0);
    fab.wire_labeled(pop_q, 0, fork, 0, "pop", false);
    fab.wire(fork, 0, consumer, 0);
    fab.wire(fork, 1, returner, 0);
    fab.wire(returner, 0, credits, 0);
    fab.set_rate("push", 1.0);
    fab.set_rate("pop", 1.0);
    fab
}

/// The FAUST 2×2 mesh under bit-complement traffic as an xMAS fabric.
///
/// Per router `r`: a source injecting color `3 - r` (labeled
/// `inj{r} !d`), a merge cascade gathering the two in-links and the
/// injection, a 1-place router queue, then a switch cascade delivering
/// color `r` locally (labeled `dlv{r} !d`) and peeling the two out-links
/// by XY next hop. Each directed link is a 1-place queue carrying a
/// single color — 12 queues total, matching the 12 components of
/// [`crate::faust::noc::complement_network`].
#[must_use]
pub fn complement_fabric() -> Fabric {
    // The unique value each directed link carries under complement
    // traffic with XY routing (same computation as the hand model).
    let mut link_value = std::collections::BTreeMap::new();
    for r in 0..4usize {
        let d = 3 - r;
        let mut at = r;
        while let Some(next) = xy_next_hop(at, d) {
            link_value.insert((at, next), d as super::Color);
            at = next;
        }
    }

    let mut fab = Fabric::new();
    // One 1-place queue per directed link.
    let mut link_q = std::collections::BTreeMap::new();
    for &(a, b) in &LINKS {
        link_q.insert((a, b), fab.add(&format!("b{a}{b}"), Prim::Queue { cap: 1, init: vec![] }));
    }

    for r in 0..4usize {
        let inject: super::Color = (3 - r) as super::Color;
        let ins: Vec<(usize, usize)> = LINKS.iter().filter(|&&(_, b)| b == r).copied().collect();
        let outs: Vec<(usize, usize)> = LINKS.iter().filter(|&&(a, _)| a == r).copied().collect();

        let src = fab.add(&format!("src{r}"), Prim::Source { colors: vec![inject] });
        let m_in = fab.add(&format!("min{r}"), Prim::Merge);
        let m_inj = fab.add(&format!("mij{r}"), Prim::Merge);
        let rq = fab.add(&format!("rq{r}"), Prim::Queue { cap: 1, init: vec![] });
        let sw_dlv = fab.add(&format!("swd{r}"), Prim::Switch { on: vec![r as super::Color] });
        let local = fab.add(&format!("loc{r}"), Prim::Sink);
        let sw_route = fab.add(&format!("swr{r}"), Prim::Switch { on: vec![link_value[&outs[0]]] });

        // Merge cascade: the two in-links, then the injection.
        fab.wire(link_q[&ins[0]], 0, m_in, 0);
        fab.wire(link_q[&ins[1]], 0, m_in, 1);
        fab.wire(m_in, 0, m_inj, 0);
        fab.wire_labeled(src, 0, m_inj, 1, &format!("inj{r}"), true);
        fab.wire(m_inj, 0, rq, 0);

        // Switch cascade: local delivery, then XY-routed out-links.
        fab.wire(rq, 0, sw_dlv, 0);
        fab.wire_labeled(sw_dlv, 0, local, 0, &format!("dlv{r}"), true);
        fab.wire(sw_dlv, 1, sw_route, 0);
        fab.wire(sw_route, 0, link_q[&outs[0]], 0);
        fab.wire(sw_route, 1, link_q[&outs[1]], 0);

        fab.set_rate(&format!("inj{r}"), 1.0);
        fab.set_rate(&format!("dlv{r}"), 2.0);
    }
    fab
}

#[cfg(test)]
mod tests {
    use super::super::compile_network;
    use super::*;
    use multival_lts::equiv::equivalent;
    use multival_lts::minimize::Equivalence;
    use multival_lts::pipeline::{run_pipeline, PipelineOptions};

    #[test]
    fn xstream_fabric_validates_with_the_expected_cells() {
        let fab = xstream_fabric();
        let analysis = fab.validate().expect("well-typed");
        // pushq(2) + credits(2) + popq(2) + returner(1) = 7 cells.
        assert_eq!(analysis.cells.len(), 7);
        let visible = analysis.visible_gates();
        assert_eq!(visible, vec!["pop".to_owned(), "push".to_owned()]);
    }

    #[test]
    fn complement_fabric_validates_with_the_expected_cells() {
        let fab = complement_fabric();
        let analysis = fab.validate().expect("well-typed");
        // 4 router queues + 8 link queues, all 1-place = 12 cells, the
        // same component count as the hand-written network.
        assert_eq!(analysis.cells.len(), 12);
        assert_eq!(analysis.visible_gates().len(), 8, "inj0..3 + dlv0..3");
    }

    #[test]
    fn xstream_fabric_bisimilar_to_hand_written_pipeline() {
        let net = compile_network(&xstream_fabric()).expect("compiles");
        let compiled = run_pipeline(&net, &PipelineOptions::default());
        assert!(compiled.complete());
        let hand = crate::xstream::pipeline::network(&Default::default());
        let hand_run = run_pipeline(&hand, &PipelineOptions::default());
        assert!(hand_run.complete());
        assert!(
            equivalent(&compiled.lts, &hand_run.lts, Equivalence::Branching).holds(),
            "compiled xMAS pipeline must be branching-bisimilar to the hand model \
             ({} vs {} states)",
            compiled.lts.num_states(),
            hand_run.lts.num_states()
        );
    }

    #[test]
    fn complement_fabric_bisimilar_to_hand_written_mesh() {
        let net = compile_network(&complement_fabric()).expect("compiles");
        let compiled = run_pipeline(&net, &PipelineOptions::default());
        assert!(compiled.complete());
        let hand = crate::faust::noc::complement_network();
        let hand_run = run_pipeline(&hand, &PipelineOptions::default());
        assert!(hand_run.complete());
        assert!(
            equivalent(&compiled.lts, &hand_run.lts, Equivalence::Branching).holds(),
            "compiled xMAS mesh must be branching-bisimilar to the hand model \
             ({} vs {} states)",
            compiled.lts.num_states(),
            hand_run.lts.num_states()
        );
    }
}
