//! The full xSTream functional pipeline, assembled *structurally* at the
//! LTS level (generate each sub-module, minimize, compose) — the
//! bottom-up modeling style of the paper's §2 and the vehicle for the
//! compositional-verification measurements of experiment E1.

use multival_lts::minimize::{minimize, Equivalence};
use multival_lts::ops::{compose, hide, Sync};
use multival_lts::pipeline::Network;
use multival_lts::Lts;
use multival_pa::{explore_term, parse_behaviour, parse_spec, ExploreOptions, Spec};

/// Mini-LOTOS library of pipeline components, parameterized by queue
/// capacity through distinct process instantiations.
const PIPELINE_LIB: &str = r#"
-- Producer: pushes items forever.
process Producer[push] := push; Producer[push] endproc

-- Consumer: pops items forever.
process Consumer[pop] := pop; Consumer[pop] endproc

-- Counting queue of capacity c (data-less, used for sizing experiments).
process Queue[enq, deq](n: int 0..8, c: int 1..8) :=
    [n < c] -> enq; Queue[enq, deq](n + 1, c)
 [] [n > 0] -> deq; Queue[enq, deq](n - 1, c)
endproc

-- Credit counter of capacity c.
process Credits[take, give](k: int 0..8, c: int 1..8) :=
    [k > 0] -> take; Credits[take, give](k - 1, c)
 [] [k < c] -> give; Credits[take, give](k + 1, c)
endproc

-- Link stage: transfer needs a credit (take ≡ xfer), pop gives one back.
process Returner[pop, give] := pop; give; Returner[pop, give] endproc
"#;

/// Configuration of the functional pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Push-queue capacity (1..=8).
    pub push_capacity: i64,
    /// Pop-queue capacity (1..=8).
    pub pop_capacity: i64,
    /// Initial credits (usually equals `pop_capacity`).
    pub credits: i64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { push_capacity: 2, pop_capacity: 2, credits: 2 }
    }
}

/// The component library as a parsed spec (no top behaviour).
///
/// # Panics
///
/// Panics only if the embedded source is invalid (covered by tests).
pub fn library() -> Spec {
    parse_spec(PIPELINE_LIB).expect("embedded pipeline library parses")
}

/// Generates the LTS of one component instantiation from the library.
///
/// # Panics
///
/// Panics if `term_src` does not parse or explode the cap (component state
/// spaces are tiny).
pub fn component(spec: &Spec, term_src: &str) -> Lts {
    let term = parse_behaviour(term_src, spec).expect("component term parses");
    explore_term(term, spec, &ExploreOptions::default()).expect("component explores").lts
}

/// Result of a pipeline build: final LTS plus intermediate sizes.
#[derive(Debug, Clone)]
pub struct PipelineBuild {
    /// The assembled pipeline LTS (internal gates hidden).
    pub lts: Lts,
    /// `(stage name, states before minimization, states after)` per stage.
    pub stages: Vec<(String, usize, usize)>,
    /// Peak intermediate size seen during the build.
    pub peak_states: usize,
}

/// Builds the pipeline *monolithically*: compose everything, then minimize
/// once at the end.
pub fn build_monolithic(config: &PipelineConfig) -> PipelineBuild {
    build(config, false)
}

/// Builds the pipeline *compositionally*: minimize after every composition
/// (the paper's weapon against state explosion).
pub fn build_compositional(config: &PipelineConfig) -> PipelineBuild {
    build(config, true)
}

fn build(config: &PipelineConfig, minimize_stages: bool) -> PipelineBuild {
    let spec = library();
    let producer = component(&spec, "Producer[push]");
    let push_q = component(&spec, &format!("Queue[push, xfer](0, {})", config.push_capacity));
    let pop_q = component(&spec, &format!("Queue[xfer, pop](0, {})", config.pop_capacity));
    let credits = component(
        &spec,
        &format!("Credits[xfer, give]({}, {})", config.credits, config.credits.max(1)),
    );
    let returner = component(&spec, "Returner[pop, give]");
    let consumer = component(&spec, "Consumer[pop]");

    let mut stages = Vec::new();
    let mut peak = 0usize;
    // In the compositional build, a gate is hidden as soon as its last user
    // has been composed — the "expertise" the paper's §5 alludes to: early
    // hiding is what lets branching minimization collapse intermediate
    // products. The monolithic build hides the same gates only at the end.
    let mut step = |acc: &Lts, name: &str, rhs: &Lts, sync: Sync, hide_now: &[&str]| -> Lts {
        let product = compose(acc, rhs, &sync);
        let before = product.num_states();
        peak = peak.max(before);
        let result = if minimize_stages {
            let internalized = if hide_now.is_empty() {
                product
            } else {
                hide(&product, hide_now.iter().copied())
            };
            minimize(&internalized, Equivalence::Branching).0
        } else {
            product
        };
        stages.push((name.to_owned(), before, result.num_states()));
        result
    };
    let mut acc = producer;
    acc = step(&acc, "producer||pushq", &push_q, Sync::on(["push"]), &[]);
    acc = step(&acc, "..||credits", &credits, Sync::on(["xfer"]), &[]);
    // After the pop queue joins, no further component uses `xfer`.
    acc = step(&acc, "..||popq", &pop_q, Sync::on(["xfer"]), &["xfer"]);
    acc = step(&acc, "..||returner", &returner, Sync::on(["pop", "give"]), &[]);
    // After the consumer joins, `give` is fully internal.
    acc = step(&acc, "..||consumer", &consumer, Sync::on(["pop"]), &["give"]);

    // Internalize the NoC gates; keep push/pop as the external interface.
    // (A no-op for the compositional build, which already hid them.)
    let external = hide(&acc, ["xfer", "give"]);
    let final_lts =
        if minimize_stages { minimize(&external, Equivalence::Branching).0 } else { external };
    peak = peak.max(final_lts.num_states());
    PipelineBuild { lts: final_lts, stages, peak_states: peak }
}

/// The pipeline as a [`Network`] for the smart reduction pipeline
/// (`lts::pipeline`): the same six components and gate wiring as
/// [`build_compositional`], but with the composition order, early hiding,
/// and per-stage minimization left to the engine's heuristics.
pub fn network(config: &PipelineConfig) -> Network {
    let spec = library();
    let mut net = Network::new();
    net.add_component("producer", component(&spec, "Producer[push]"))
        .add_component(
            "push_q",
            component(&spec, &format!("Queue[push, xfer](0, {})", config.push_capacity)),
        )
        .add_component(
            "credits",
            component(
                &spec,
                &format!("Credits[xfer, give]({}, {})", config.credits, config.credits.max(1)),
            ),
        )
        .add_component(
            "pop_q",
            component(&spec, &format!("Queue[xfer, pop](0, {})", config.pop_capacity)),
        )
        .add_component("returner", component(&spec, "Returner[pop, give]"))
        .add_component("consumer", component(&spec, "Consumer[pop]"))
        .sync_on(["push", "xfer", "pop", "give"])
        .hide(["xfer", "give"]);
    net
}

/// Builds a chain of `k` one-place buffer cells (`Cell := in; out; Cell`)
/// connected by hidden hop gates — the textbook demonstration of
/// compositional state-space reduction: the monolithic product has `2^k`
/// states, while the compositional build (hide each hop as soon as both
/// ends are in, then minimize) keeps every intermediate linear in `k`
/// (a chain prefix of `i` cells is branching-equivalent to a counting
/// queue of capacity `i`).
///
/// # Panics
///
/// Panics if `k` is 0 or large enough to overflow the exploration caps.
pub fn build_buffer_chain(k: usize, compositional: bool) -> PipelineBuild {
    assert!(k >= 1, "need at least one cell");
    let spec = parse_spec("process Cell[inp, outp] := inp; outp; Cell[inp, outp] endproc")
        .expect("cell library parses");
    let cell = |inp: &str, outp: &str| component(&spec, &format!("Cell[{inp}, {outp}]"));
    let mut stages = Vec::new();
    let mut peak = 1usize;
    let mut acc = cell("enq", "h1");
    for i in 1..k {
        let inp = format!("h{i}");
        let outp = if i + 1 == k { "deq".to_owned() } else { format!("h{}", i + 1) };
        let next = cell(&inp, &outp);
        let product = compose(&acc, &next, &Sync::on([inp.as_str()]));
        let before = product.num_states();
        peak = peak.max(before);
        acc = if compositional {
            let hidden = hide(&product, [inp.as_str()]);
            minimize(&hidden, Equivalence::Branching).0
        } else {
            product
        };
        stages.push((format!("cells 1..={}", i + 1), before, acc.num_states()));
    }
    let final_lts = if compositional {
        acc
    } else {
        let hidden = hide(&acc, (1..k).map(|i| format!("h{i}")));
        minimize(&hidden, Equivalence::Branching).0
    };
    peak = peak.max(final_lts.num_states());
    PipelineBuild { lts: final_lts, stages, peak_states: peak }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multival_lts::analysis::deadlock_witness;
    use multival_lts::equiv::equivalent;
    use multival_mcl::{check, patterns, ActionFormula};

    #[test]
    fn buffer_chain_collapses_compositionally() {
        let k = 6;
        let comp = build_buffer_chain(k, true);
        let mono = build_buffer_chain(k, false);
        // Both reduce to the (k+1)-state counting queue.
        assert_eq!(comp.lts.num_states(), k + 1);
        assert_eq!(mono.lts.num_states(), k + 1);
        assert!(equivalent(&comp.lts, &mono.lts, Equivalence::Branching).holds());
        // The compositional peak is linear, the monolithic is 2^k.
        assert_eq!(mono.peak_states, 1 << k);
        assert!(
            comp.peak_states <= 2 * (k + 2),
            "compositional peak should stay linear: {}",
            comp.peak_states
        );
    }

    #[test]
    fn network_agrees_with_the_structural_build() {
        use multival_lts::pipeline::{monolithic, run_pipeline, PipelineOptions};
        let cfg = PipelineConfig::default();
        let net = network(&cfg);
        let mono = monolithic(&net, Equivalence::Branching, multival_lts::Workers::default());
        let run = run_pipeline(&net, &PipelineOptions::default());
        assert!(run.complete());
        assert_eq!(multival_lts::io::write_aut(&run.lts), multival_lts::io::write_aut(&mono.lts));
        // The engine's result is branching-equivalent to the hand-tuned
        // compositional build.
        let hand = build_compositional(&cfg);
        assert!(equivalent(&run.lts, &hand.lts, Equivalence::Branching).holds());
        // The engine's early hiding must be at least as effective: its
        // peak never exceeds the hand-tuned fold's.
        assert!(
            run.peak_states() <= hand.peak_states,
            "engine peak {} vs hand-tuned {}",
            run.peak_states(),
            hand.peak_states
        );
    }

    #[test]
    fn pipeline_is_deadlock_free() {
        let b = build_compositional(&PipelineConfig::default());
        assert!(deadlock_witness(&b.lts).is_none());
        assert!(check(&b.lts, &patterns::deadlock_free()).expect("mc").holds);
    }

    #[test]
    fn pop_always_possible() {
        let b = build_compositional(&PipelineConfig::default());
        let f = patterns::always_possible(ActionFormula::pattern("pop"));
        assert!(check(&b.lts, &f).expect("mc").holds);
    }

    #[test]
    fn compositional_equals_monolithic() {
        let cfg = PipelineConfig::default();
        let comp = build_compositional(&cfg);
        let mono = build_monolithic(&cfg);
        assert!(
            equivalent(&comp.lts, &mono.lts, Equivalence::Branching).holds(),
            "both build orders must yield branching-equivalent pipelines"
        );
    }

    #[test]
    fn compositional_peak_not_larger() {
        let cfg = PipelineConfig { push_capacity: 4, pop_capacity: 4, credits: 4 };
        let comp = build_compositional(&cfg);
        let mono = build_monolithic(&cfg);
        assert!(
            comp.peak_states <= mono.peak_states,
            "compositional peak {} vs monolithic {}",
            comp.peak_states,
            mono.peak_states
        );
        assert!(comp.lts.num_states() <= mono.lts.num_states());
    }

    #[test]
    fn capacity_scales_state_count() {
        let small =
            build_monolithic(&PipelineConfig { push_capacity: 1, pop_capacity: 1, credits: 1 });
        let large =
            build_monolithic(&PipelineConfig { push_capacity: 6, pop_capacity: 6, credits: 6 });
        assert!(large.peak_states > small.peak_states);
    }
}
