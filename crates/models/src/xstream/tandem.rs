//! A tandem of N finite queues with blocking — the generalization of the
//! two-queue pipeline to multi-hop xSTream routes (a producer feeding a
//! chain of bounded stages, each with its own service rate).
//!
//! Measures: end-to-end throughput, per-stage occupancy, mean latency
//! (Little's law), and the bottleneck stage. Used to explore how queue
//! sizing interacts with an unbalanced stage — the design question behind
//! "occupancy within xSTream queues" (§4).

use crate::common::{explore_model, ExploredModel, Model};
use crate::xstream::perf::PerfError;
use multival_ctmc::steady::{steady_state, SolveOptions};
use multival_imc::decorate::decorate_by_label_with_map;
use multival_imc::phase_type::Delay;
use multival_imc::to_ctmc::{probe_throughputs, to_ctmc, NondetPolicy};

/// One stage of the tandem: a bounded queue drained at `rate` into the
/// next stage.
#[derive(Debug, Clone, Copy)]
pub struct Stage {
    /// Queue capacity (≥ 1).
    pub capacity: u8,
    /// Service rate of this stage's server.
    pub rate: f64,
}

/// Configuration: arrival rate plus an ordered list of stages.
#[derive(Debug, Clone)]
pub struct TandemConfig {
    /// Producer (arrival) rate; arrivals block when stage 0 is full.
    pub arrival_rate: f64,
    /// The stages, upstream to downstream.
    pub stages: Vec<Stage>,
}

impl TandemConfig {
    /// A uniform tandem: `n` stages of equal capacity and rate.
    pub fn uniform(n: usize, capacity: u8, arrival_rate: f64, service_rate: f64) -> Self {
        TandemConfig { arrival_rate, stages: vec![Stage { capacity, rate: service_rate }; n] }
    }
}

/// The functional skeleton: per-stage fill levels.
#[derive(Debug, Clone)]
pub struct TandemModel {
    config: TandemConfig,
}

impl Model for TandemModel {
    type State = Vec<u8>;

    fn initial(&self) -> Vec<u8> {
        vec![0; self.config.stages.len()]
    }

    fn successors(&self, s: &Vec<u8>) -> Vec<(String, Vec<u8>)> {
        let stages = &self.config.stages;
        let mut out = Vec::new();
        if s[0] < stages[0].capacity {
            let mut t = s.clone();
            t[0] += 1;
            out.push(("arrive".to_owned(), t));
        }
        for i in 0..stages.len() {
            if s[i] == 0 {
                continue;
            }
            if i + 1 == stages.len() {
                let mut t = s.clone();
                t[i] -= 1;
                out.push(("depart".to_owned(), t));
            } else if s[i + 1] < stages[i + 1].capacity {
                let mut t = s.clone();
                t[i] -= 1;
                t[i + 1] += 1;
                out.push((format!("serve{i}"), t));
            }
            // Blocked server: no transition (blocking-after-service).
        }
        out
    }
}

/// The tandem performance report.
#[derive(Debug, Clone)]
pub struct TandemReport {
    /// End-to-end throughput (departures per unit time).
    pub throughput: f64,
    /// Mean number of items per stage.
    pub mean_fill: Vec<f64>,
    /// Mean end-to-end latency (Little's law over all stages).
    pub latency: f64,
    /// Index of the stage with the highest mean utilization (fill /
    /// capacity) — the bottleneck.
    pub bottleneck: usize,
    /// CTMC size solved.
    pub ctmc_states: usize,
}

/// Solves the tandem through the IMC → CTMC flow.
///
/// # Errors
///
/// Propagates exploration, conversion, and solver errors.
pub fn analyze_tandem(config: &TandemConfig) -> Result<TandemReport, PerfError> {
    assert!(!config.stages.is_empty(), "tandem needs at least one stage");
    let model = TandemModel { config: config.clone() };
    let explored: ExploredModel<Vec<u8>> = explore_model(&model, 2_000_000)?;
    let stages = &config.stages;
    let (imc, attribution) = decorate_by_label_with_map(&explored.lts, |label| {
        let rate = if label == "arrive" {
            config.arrival_rate
        } else if label == "depart" {
            stages.last().expect("nonempty").rate
        } else if let Some(i) = label.strip_prefix("serve").and_then(|x| x.parse::<usize>().ok()) {
            stages[i].rate
        } else {
            return None;
        };
        Some(Delay::Exponential { rate })
    });
    let mut probe_names: Vec<String> = vec!["arrive".to_owned(), "depart".to_owned()];
    for i in 0..stages.len().saturating_sub(1) {
        probe_names.push(format!("serve{i}"));
    }
    let probes: Vec<&str> = probe_names.iter().map(String::as_str).collect();
    let conv = to_ctmc(&imc, NondetPolicy::Reject, &probes).map_err(PerfError::Conversion)?;
    let pi = steady_state(&conv.ctmc, &SolveOptions::default()).map_err(PerfError::Solver)?;
    let tp = probe_throughputs(&conv, &SolveOptions::default()).map_err(PerfError::Solver)?;
    let throughput = tp.iter().find(|(l, _)| l == "depart").map(|&(_, t)| t).unwrap_or(0.0);

    let n = stages.len();
    let mut mean_fill = vec![0.0; n];
    for (imc_state, ctmc_state) in conv.state_map.iter().enumerate() {
        let Some(c) = ctmc_state else { continue };
        let fills = &explored.states[attribution[imc_state] as usize];
        for (i, &f) in fills.iter().enumerate() {
            mean_fill[i] += pi[*c] * f as f64;
        }
    }
    let total_items: f64 = mean_fill.iter().sum();
    let latency = if throughput > 0.0 { total_items / throughput } else { f64::INFINITY };
    let bottleneck = (0..n)
        .max_by(|&a, &b| {
            let ua = mean_fill[a] / stages[a].capacity as f64;
            let ub = mean_fill[b] / stages[b].capacity as f64;
            ua.partial_cmp(&ub).expect("finite utilizations")
        })
        .expect("nonempty");
    Ok(TandemReport {
        throughput,
        mean_fill,
        latency,
        bottleneck,
        ctmc_states: conv.ctmc.num_states(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_tandem_sane() {
        let r = analyze_tandem(&TandemConfig::uniform(3, 2, 1.0, 2.0)).expect("solves");
        assert!(r.throughput > 0.0 && r.throughput < 1.0);
        assert!(r.latency.is_finite() && r.latency > 0.0);
        assert_eq!(r.mean_fill.len(), 3);
    }

    #[test]
    fn slow_stage_is_the_bottleneck() {
        let config = TandemConfig {
            arrival_rate: 2.0,
            stages: vec![
                Stage { capacity: 3, rate: 5.0 },
                Stage { capacity: 3, rate: 0.8 }, // slow middle stage
                Stage { capacity: 3, rate: 5.0 },
            ],
        };
        let r = analyze_tandem(&config).expect("solves");
        assert_eq!(r.bottleneck, 1, "fills: {:?}", r.mean_fill);
        // Throughput capped by the slow stage.
        assert!(r.throughput < 0.8 + 1e-9, "{}", r.throughput);
        assert!(r.throughput > 0.5, "{}", r.throughput);
        // The queue in front of the bottleneck backs up more than the one
        // behind it.
        assert!(r.mean_fill[1] > r.mean_fill[2], "{:?}", r.mean_fill);
    }

    #[test]
    fn longer_tandem_raises_latency() {
        let short = analyze_tandem(&TandemConfig::uniform(2, 2, 1.0, 2.0)).expect("solves");
        let long = analyze_tandem(&TandemConfig::uniform(5, 2, 1.0, 2.0)).expect("solves");
        assert!(long.latency > short.latency);
        // Throughput stays near the arrival rate in both (no bottleneck
        // below λ... service 2 > arrival 1, modest blocking).
        assert!(long.throughput > 0.75, "{}", long.throughput);
    }

    #[test]
    fn capacity_relieves_blocking() {
        let tight = analyze_tandem(&TandemConfig::uniform(3, 1, 1.5, 2.0)).expect("solves");
        let roomy = analyze_tandem(&TandemConfig::uniform(3, 4, 1.5, 2.0)).expect("solves");
        assert!(roomy.throughput > tight.throughput);
    }

    #[test]
    fn single_stage_matches_mm1k() {
        // One stage of capacity K is an M/M/1/K queue plus one in service?
        // Our model is departures directly from the queue, so it IS M/M/1/K:
        // throughput = μ·(1 - π0') with known form; check against the closed
        // form of the M/M/1/K loss system: X = λ(1 - p_K).
        let (lambda, mu, k) = (1.0, 2.0, 4u8);
        let r = analyze_tandem(&TandemConfig {
            arrival_rate: lambda,
            stages: vec![Stage { capacity: k, rate: mu }],
        })
        .expect("solves");
        let rho: f64 = lambda / mu;
        let z: f64 = (0..=k as i32).map(|n| rho.powi(n)).sum();
        let p_full = rho.powi(k as i32) / z;
        let expected = lambda * (1.0 - p_full);
        assert!(
            (r.throughput - expected).abs() < 1e-9,
            "{} vs analytic {}",
            r.throughput,
            expected
        );
    }
}
