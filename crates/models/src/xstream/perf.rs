//! Performance model of the xSTream pipeline (experiment E6): throughput,
//! end-to-end latency, and queue-occupancy distributions, obtained through
//! the IMC → CTMC flow.
//!
//! The model is the credit-based pipeline of [`crate::xstream::pipeline`],
//! rebuilt as a programmatic [`Model`] so its states expose the queue fill
//! levels needed for occupancy rewards:
//!
//! ```text
//! producer --push--> [push queue] --xfer--> [pop queue] --pop--> consumer
//!                        (xfer needs a credit; pops return credits)
//! ```

use crate::common::{explore_model, ExploredModel, Model};
use multival_ctmc::absorb::mean_time_to_target;
use multival_ctmc::mdp::Opt;
use multival_ctmc::steady::{steady_state, SolveOptions};
use multival_ctmc::CtmcError;
use multival_imc::decorate::{decorate_by_label, decorate_by_label_with_map};
use multival_imc::ops::hide;
use multival_imc::phase_type::Delay;
use multival_imc::to_ctmc::{
    probe_throughputs, to_ctmc, to_ctmdp_lifted, NondetPolicy, ToCtmcError,
};
use std::fmt;

/// Rates of the pipeline stages.
#[derive(Debug, Clone, Copy)]
pub struct PerfConfig {
    /// Push-queue capacity.
    pub push_capacity: u8,
    /// Pop-queue capacity (= number of credits).
    pub pop_capacity: u8,
    /// Producer rate λ (pushes per unit time when not blocked).
    pub producer_rate: f64,
    /// NoC transfer rate δ.
    pub transfer_rate: f64,
    /// Consumer rate μ.
    pub consumer_rate: f64,
    /// Credit-return rate κ.
    pub credit_rate: f64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            push_capacity: 2,
            pop_capacity: 2,
            producer_rate: 1.0,
            transfer_rate: 4.0,
            consumer_rate: 2.0,
            credit_rate: 8.0,
        }
    }
}

/// Pipeline state: queue fills, available credits, credits in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipeState {
    /// Items in the push queue.
    pub q1: u8,
    /// Items in the pop queue.
    pub q2: u8,
    /// Credits available at the sender.
    pub credits: u8,
    /// Credits travelling back to the sender.
    pub returning: u8,
}

/// The functional skeleton of the performance model.
#[derive(Debug, Clone, Copy)]
pub struct PipeModel {
    /// Configuration (capacities only matter for the skeleton).
    pub config: PerfConfig,
}

impl Model for PipeModel {
    type State = PipeState;

    fn initial(&self) -> PipeState {
        PipeState { q1: 0, q2: 0, credits: self.config.pop_capacity, returning: 0 }
    }

    fn successors(&self, s: &PipeState) -> Vec<(String, PipeState)> {
        let c = &self.config;
        let mut out = Vec::new();
        if s.q1 < c.push_capacity {
            out.push(("push".to_owned(), PipeState { q1: s.q1 + 1, ..*s }));
        }
        if s.q1 > 0 && s.credits > 0 {
            out.push((
                "xfer".to_owned(),
                PipeState { q1: s.q1 - 1, q2: s.q2 + 1, credits: s.credits - 1, ..*s },
            ));
        }
        if s.q2 > 0 {
            out.push((
                "pop".to_owned(),
                PipeState { q2: s.q2 - 1, returning: s.returning + 1, ..*s },
            ));
        }
        if s.returning > 0 {
            out.push((
                "credit".to_owned(),
                PipeState { returning: s.returning - 1, credits: s.credits + 1, ..*s },
            ));
        }
        out
    }
}

/// Error from the performance analyses.
#[derive(Debug)]
pub enum PerfError {
    /// The functional state space exceeded its cap.
    Explosion(crate::common::ExplosionError),
    /// IMC → CTMC conversion failed.
    Conversion(ToCtmcError),
    /// A Markov solver failed.
    Solver(CtmcError),
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::Explosion(e) => write!(f, "{e}"),
            PerfError::Conversion(e) => write!(f, "{e}"),
            PerfError::Solver(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PerfError {}

impl From<crate::common::ExplosionError> for PerfError {
    fn from(e: crate::common::ExplosionError) -> Self {
        PerfError::Explosion(e)
    }
}

impl From<ToCtmcError> for PerfError {
    fn from(e: ToCtmcError) -> Self {
        PerfError::Conversion(e)
    }
}

impl From<CtmcError> for PerfError {
    fn from(e: CtmcError) -> Self {
        PerfError::Solver(e)
    }
}

/// The performance measures reported for one configuration.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Steady-state delivery throughput (pops per unit time).
    pub throughput: f64,
    /// Mean end-to-end latency of an item (by Little's law: mean items in
    /// the two queues divided by throughput).
    pub latency: f64,
    /// Steady-state distribution of the push-queue fill level
    /// (`occupancy_push[n]` = P(q1 = n)).
    pub occupancy_push: Vec<f64>,
    /// Steady-state distribution of the pop-queue fill level.
    pub occupancy_pop: Vec<f64>,
    /// Mean items in flight (q1 + q2).
    pub mean_items: f64,
    /// CTMC size used for the computation.
    pub ctmc_states: usize,
}

/// Explores the functional skeleton.
///
/// # Errors
///
/// Returns [`PerfError::Explosion`] if the cap is exceeded (capacities are
/// small, so this indicates a misconfiguration).
pub fn explore_pipeline(config: &PerfConfig) -> Result<ExploredModel<PipeState>, PerfError> {
    Ok(explore_model(&PipeModel { config: *config }, 1_000_000)?)
}

/// Runs the full §4 flow on the pipeline: decorate with exponential stage
/// delays, convert to a CTMC (with `pop` as a throughput probe), solve.
///
/// # Errors
///
/// Propagates exploration, conversion, and solver errors.
pub fn analyze(config: &PerfConfig) -> Result<PerfReport, PerfError> {
    analyze_with_delays(config, |label| {
        let rate = match label {
            "push" => config.producer_rate,
            "xfer" => config.transfer_rate,
            "pop" => config.consumer_rate,
            "credit" => config.credit_rate,
            _ => return None,
        };
        Some(Delay::Exponential { rate })
    })
}

/// The CTMC conversion underlying [`analyze`]: the decorated pipeline with
/// the four stage labels as probes. Exposed so the statistical engine and
/// the golden fixtures can run simulation and numerics on exactly the same
/// chain.
///
/// # Errors
///
/// Propagates exploration and conversion errors.
pub fn perf_conversion(config: &PerfConfig) -> Result<multival_imc::CtmcConversion, PerfError> {
    let explored = explore_pipeline(config)?;
    let imc = decorate_by_label(&explored.lts, |label| {
        let rate = match label {
            "push" => config.producer_rate,
            "xfer" => config.transfer_rate,
            "pop" => config.consumer_rate,
            "credit" => config.credit_rate,
            _ => return None,
        };
        Some(Delay::Exponential { rate })
    });
    Ok(to_ctmc(&imc, NondetPolicy::Reject, &["push", "xfer", "pop", "credit"])?)
}

/// Like [`analyze`], with an arbitrary per-label delay assignment — used by
/// the E7 bridge experiment where the NoC transfer is a *fixed* delay
/// approximated by Erlang-k phases (intermediate phase states are tangible
/// and their steady mass is attributed to the source functional state).
///
/// # Errors
///
/// Propagates exploration, conversion, and solver errors.
pub fn analyze_with_delays(
    config: &PerfConfig,
    rate_of: impl FnMut(&str) -> Option<Delay>,
) -> Result<PerfReport, PerfError> {
    let explored = explore_pipeline(config)?;
    let (imc, attribution) = decorate_by_label_with_map(&explored.lts, rate_of);
    // Decoration replaces each labeled transition by (phase chain; label),
    // so the label itself survives as an interactive transition: declare
    // all four as probes — they are then instantaneous bookkeeping events.
    let conv = to_ctmc(&imc, NondetPolicy::Reject, &["push", "xfer", "pop", "credit"])?;
    let pi = steady_state(&conv.ctmc, &SolveOptions::default())?;
    let tp = probe_throughputs(&conv, &SolveOptions::default())?;
    let throughput = tp.iter().find(|(l, _)| l == "pop").map(|&(_, t)| t).unwrap_or(0.0);

    // Map CTMC states back to queue fills through the attribution map:
    // phase states (tangible for multi-phase delays) contribute their
    // steady mass to the functional state their chain started from — an
    // item "in transfer" still occupies its source queue slot.
    let cap1 = config.push_capacity as usize;
    let cap2 = config.pop_capacity as usize;
    let mut occ1 = vec![0.0; cap1 + 1];
    let mut occ2 = vec![0.0; cap2 + 1];
    for (imc_state, ctmc_state) in conv.state_map.iter().enumerate() {
        let Some(c) = ctmc_state else { continue };
        let st = &explored.states[attribution[imc_state] as usize];
        occ1[st.q1 as usize] += pi[*c];
        occ2[st.q2 as usize] += pi[*c];
    }
    let mean_items: f64 = occ1.iter().enumerate().map(|(n, p)| n as f64 * p).sum::<f64>()
        + occ2.iter().enumerate().map(|(n, p)| n as f64 * p).sum::<f64>();
    let latency = if throughput > 0.0 { mean_items / throughput } else { f64::INFINITY };
    Ok(PerfReport {
        throughput,
        latency,
        occupancy_push: occ1,
        occupancy_pop: occ2,
        mean_items,
        ctmc_states: conv.ctmc.num_states(),
    })
}

/// Configuration of the scheduler-quantified pipeline variant: the NoC
/// offers a fast and a slow route, and an instantaneous arbiter picks one
/// per transfer. The arbiter is *not* decorated with a delay, so its choice
/// survives as genuine nondeterminism — the scheduler of the lifted CTMDP.
#[derive(Debug, Clone, Copy)]
pub struct NocBoundsConfig {
    /// The underlying pipeline (its `transfer_rate` is superseded by the
    /// per-route rates below).
    pub base: PerfConfig,
    /// Transfer rate over the fast route.
    pub fast_rate: f64,
    /// Transfer rate over the slow route.
    pub slow_rate: f64,
}

impl Default for NocBoundsConfig {
    fn default() -> Self {
        NocBoundsConfig { base: PerfConfig::default(), fast_rate: 8.0, slow_rate: 1.0 }
    }
}

/// Scheduler-quantified delivery throughput: the guaranteed floor (`min`),
/// the achievable ceiling (`max`), and the CTMDP accounting behind them.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputBounds {
    /// Throughput under the worst scheduler (every resolution is ≥ this).
    pub min: f64,
    /// Throughput under the best scheduler.
    pub max: f64,
    /// CTMDP states solved.
    pub ctmdp_states: usize,
    /// Instant (nondeterministic arbitration) states among them.
    pub instant_states: usize,
}

/// Which route the arbiter granted for the pending transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Route {
    Fast,
    Slow,
}

/// Pipeline state plus the granted route, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RoutedState {
    pipe: PipeState,
    route: Option<Route>,
}

/// The pipeline with a two-route NoC: `grab_*` transitions (instantaneous,
/// undecorated) commit a pending transfer to a route; the transfer then
/// proceeds at that route's rate while producer/consumer/credits continue
/// concurrently.
#[derive(Debug, Clone, Copy)]
struct RoutedModel {
    config: PerfConfig,
}

impl Model for RoutedModel {
    type State = RoutedState;

    fn initial(&self) -> RoutedState {
        RoutedState { pipe: PipeModel { config: self.config }.initial(), route: None }
    }

    fn successors(&self, s: &RoutedState) -> Vec<(String, RoutedState)> {
        let inner = PipeModel { config: self.config };
        let mut out = Vec::new();
        for (label, next) in inner.successors(&s.pipe) {
            match (label.as_str(), s.route) {
                ("xfer", Some(Route::Fast)) => {
                    out.push(("xfer_fast".to_owned(), RoutedState { pipe: next, route: None }));
                }
                ("xfer", Some(Route::Slow)) => {
                    out.push(("xfer_slow".to_owned(), RoutedState { pipe: next, route: None }));
                }
                ("xfer", None) => {
                    for (grab, route) in [("grab_fast", Route::Fast), ("grab_slow", Route::Slow)] {
                        out.push((
                            grab.to_owned(),
                            RoutedState { pipe: s.pipe, route: Some(route) },
                        ));
                    }
                }
                _ => out.push((label, RoutedState { pipe: next, ..*s })),
            }
        }
        out
    }
}

/// Min/max delivery throughput of the two-route pipeline over *every*
/// scheduler — the E13 spread for xSTream. Every concrete route policy
/// (always-fast, always-slow, any state-dependent mix) lands inside the
/// returned interval; always-fast and always-slow are its endpoints
/// because throughput is monotone in the granted rate.
///
/// # Errors
///
/// Propagates exploration, conversion, and solver errors.
pub fn throughput_bounds(config: &NocBoundsConfig) -> Result<ThroughputBounds, PerfError> {
    let c = config.base;
    let explored = explore_model(&RoutedModel { config: c }, 1_000_000)?;
    let imc = decorate_by_label(&explored.lts, |label| {
        let rate = match label {
            "push" => c.producer_rate,
            "xfer_fast" => config.fast_rate,
            "xfer_slow" => config.slow_rate,
            "pop" => c.consumer_rate,
            "credit" => c.credit_rate,
            // grab_* stay interactive: the arbiter's nondeterministic choice.
            _ => return None,
        };
        Some(Delay::Exponential { rate })
    });
    // Keep the delivery probe visible; the grabs and the other stage labels
    // become τ, so every pending grant is a nondeterministic instant state.
    let hidden = hide(&imc, ["push", "xfer_fast", "xfer_slow", "credit", "grab_fast", "grab_slow"]);
    let conv = to_ctmdp_lifted(&hidden, &["pop"]).map_err(PerfError::Conversion)?;
    let zeros = vec![0.0; conv.mdp.num_states()];
    let imp = &conv.probe_impulse[0].1;
    let min = conv
        .mdp
        .long_run_average(&zeros, Some(imp), Opt::Min, 1e-12, 1_000_000)
        .map_err(PerfError::Solver)?;
    let max = conv
        .mdp
        .long_run_average(&zeros, Some(imp), Opt::Max, 1e-12, 1_000_000)
        .map_err(PerfError::Solver)?;
    let instant_states = (0..conv.mdp.num_states()).filter(|&s| conv.mdp.is_instant(s)).count();
    Ok(ThroughputBounds { min, max, ctmdp_states: conv.mdp.num_states(), instant_states })
}

/// CDF of the time to the first delivery (`P(first pop ≤ t)` for each
/// requested time point) — the transient "figure" series of experiment E6,
/// computed by uniformization on the absorbing first-pop chain.
///
/// # Errors
///
/// Propagates exploration, conversion, and solver errors.
pub fn first_delivery_cdf(config: &PerfConfig, times: &[f64]) -> Result<Vec<f64>, PerfError> {
    let (conv, done) = first_pop_chain(config)?;
    let mut out = Vec::with_capacity(times.len());
    for &t in times {
        out.push(
            multival_ctmc::transient::transient_probability(
                &conv.ctmc,
                &done,
                t,
                &multival_ctmc::TransientOptions::default(),
            )
            .map_err(PerfError::Solver)?,
        );
    }
    Ok(out)
}

/// Mean time until the first item has been delivered, starting from the
/// empty pipeline — a transient "ramp-up latency" measure.
///
/// # Errors
///
/// Propagates exploration, conversion, and solver errors.
pub fn time_to_first_delivery(config: &PerfConfig) -> Result<f64, PerfError> {
    let (conv, done) = first_pop_chain(config)?;
    Ok(mean_time_to_target(&conv.ctmc, &done, &SolveOptions::default())?)
}

/// Builds the absorbing "first pop" chain shared by the transient measures:
/// the pipeline runs until the first `pop`, which absorbs.
fn first_pop_chain(
    config: &PerfConfig,
) -> Result<(multival_imc::CtmcConversion, Vec<usize>), PerfError> {
    // Absorbing variant: stop at the first pop.
    #[derive(Debug, Clone, Copy)]
    struct FirstPop {
        inner: PipeModel,
    }
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum S {
        Running(PipeState),
        Done,
    }
    impl Model for FirstPop {
        type State = S;
        fn initial(&self) -> S {
            S::Running(self.inner.initial())
        }
        fn successors(&self, s: &S) -> Vec<(String, S)> {
            match s {
                S::Done => Vec::new(),
                S::Running(p) => self
                    .inner
                    .successors(p)
                    .into_iter()
                    .map(|(l, n)| if l == "pop" { (l, S::Done) } else { (l, S::Running(n)) })
                    .collect(),
            }
        }
    }
    let model = FirstPop { inner: PipeModel { config: *config } };
    let explored = explore_model(&model, 1_000_000)?;
    let rate_of = |label: &str| -> Option<Delay> {
        let rate = match label {
            "push" => config.producer_rate,
            "xfer" => config.transfer_rate,
            "pop" => config.consumer_rate,
            "credit" => config.credit_rate,
            _ => return None,
        };
        Some(Delay::Exponential { rate })
    };
    let imc = decorate_by_label(&explored.lts, rate_of);
    let conv = to_ctmc(&imc, NondetPolicy::Reject, &["push", "xfer", "pop", "credit"])?;
    // Target: the CTMC images of Done states.
    let done_ids: Vec<usize> = explored
        .states_where(|s| matches!(s, S::Done))
        .into_iter()
        .filter_map(|i| conv.state_map[i as usize])
        .collect();
    Ok((conv, done_ids))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skeleton_state_count() {
        // q1 ∈ 0..=2, and (q2, credits, returning) with q2+credits+ret = 2:
        // 6 combos → 18 states.
        let e = explore_pipeline(&PerfConfig::default()).expect("explores");
        assert_eq!(e.lts.num_states(), 18);
    }

    #[test]
    fn flow_balance_and_sane_measures() {
        let r = analyze(&PerfConfig::default()).expect("analyzes");
        assert!(r.throughput > 0.0 && r.throughput < 1.0, "throughput {}", r.throughput);
        assert!(r.latency > 0.0);
        let total1: f64 = r.occupancy_push.iter().sum();
        let total2: f64 = r.occupancy_pop.iter().sum();
        assert!((total1 - 1.0).abs() < 1e-6, "push occupancy sums to {total1}");
        assert!((total2 - 1.0).abs() < 1e-6, "pop occupancy sums to {total2}");
    }

    #[test]
    fn bottleneck_caps_throughput() {
        // Slow consumer bounds throughput by μ (minus blocking effects).
        let cfg = PerfConfig { consumer_rate: 0.5, producer_rate: 10.0, ..Default::default() };
        let r = analyze(&cfg).expect("analyzes");
        assert!(r.throughput < 0.5 + 1e-9);
        assert!(r.throughput > 0.4, "should be close to the bottleneck: {}", r.throughput);
    }

    #[test]
    fn larger_queues_raise_throughput() {
        let small =
            analyze(&PerfConfig { push_capacity: 1, pop_capacity: 1, ..Default::default() })
                .expect("analyzes");
        let large =
            analyze(&PerfConfig { push_capacity: 6, pop_capacity: 6, ..Default::default() })
                .expect("analyzes");
        assert!(large.throughput > small.throughput);
    }

    #[test]
    fn occupancy_shifts_with_load() {
        // Fast producer: push queue mostly full. Slow producer: mostly empty.
        let fast =
            analyze(&PerfConfig { producer_rate: 20.0, ..Default::default() }).expect("analyzes");
        let slow =
            analyze(&PerfConfig { producer_rate: 0.1, ..Default::default() }).expect("analyzes");
        let full = fast.occupancy_push.last().copied().unwrap_or(0.0);
        let empty = slow.occupancy_push.first().copied().unwrap_or(0.0);
        assert!(full > 0.5, "fast producer should keep the queue full: {full}");
        assert!(empty > 0.9, "slow producer should keep it empty: {empty}");
    }

    #[test]
    fn erlang_transfer_reduces_occupancy_variance() {
        // Fixed-ish (Erlang-8) transfer time vs exponential with the same
        // mean: the deterministic-leaning service smooths the pipeline, so
        // throughput must not degrade and the analysis must stay consistent
        // (occupancies sum to 1 despite tangible phase states).
        let cfg = PerfConfig::default();
        let exp = analyze(&cfg).expect("exponential");
        let erl = analyze_with_delays(&cfg, |label| {
            let delay = match label {
                "push" => Delay::Exponential { rate: cfg.producer_rate },
                "xfer" => Delay::fixed(1.0 / cfg.transfer_rate, 8),
                "pop" => Delay::Exponential { rate: cfg.consumer_rate },
                "credit" => Delay::Exponential { rate: cfg.credit_rate },
                _ => return None,
            };
            Some(delay)
        })
        .expect("erlang");
        let total: f64 = erl.occupancy_push.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "occupancy must stay a distribution: {total}");
        assert!(erl.ctmc_states > exp.ctmc_states, "phases add states");
        assert!(
            (erl.throughput - exp.throughput).abs() < 0.2,
            "same-mean service keeps throughput in range: {} vs {}",
            erl.throughput,
            exp.throughput
        );
    }

    #[test]
    fn noc_route_bounds_bracket_the_fixed_route_pipelines() {
        let cfg = NocBoundsConfig::default();
        let b = throughput_bounds(&cfg).expect("bounds");
        assert!(b.instant_states > 0, "arbitration must survive as instant states");
        assert!(b.max > b.min + 1e-6, "route choice must matter: [{}, {}]", b.min, b.max);
        // Always-slow and always-fast are two concrete schedulers, so their
        // throughputs (computed by the plain CTMC flow on the single-route
        // pipeline) must land inside the interval — and, because throughput
        // is monotone in the granted rate, exactly at its endpoints.
        let slow = analyze(&PerfConfig { transfer_rate: cfg.slow_rate, ..cfg.base })
            .expect("slow pipeline");
        let fast = analyze(&PerfConfig { transfer_rate: cfg.fast_rate, ..cfg.base })
            .expect("fast pipeline");
        assert!(
            (b.min - slow.throughput).abs() < 1e-6,
            "floor {} vs always-slow {}",
            b.min,
            slow.throughput
        );
        assert!(
            (b.max - fast.throughput).abs() < 1e-6,
            "ceiling {} vs always-fast {}",
            b.max,
            fast.throughput
        );
    }

    #[test]
    fn equal_routes_collapse_onto_the_deterministic_pipeline() {
        let base = PerfConfig::default();
        let b = throughput_bounds(&NocBoundsConfig {
            base,
            fast_rate: base.transfer_rate,
            slow_rate: base.transfer_rate,
        })
        .expect("bounds");
        let r = analyze(&base).expect("analyzes");
        assert!((b.max - b.min).abs() < 1e-9, "identical routes: [{}, {}]", b.min, b.max);
        assert!((b.min - r.throughput).abs() < 1e-6, "{} vs {}", b.min, r.throughput);
    }

    #[test]
    fn first_delivery_cdf_is_a_cdf() {
        let cfg = PerfConfig::default();
        let times: Vec<f64> = (0..12).map(|i| i as f64 * 0.5).collect();
        let cdf = first_delivery_cdf(&cfg, &times).expect("solves");
        assert!(cdf[0].abs() < 1e-9, "P at t=0 is 0");
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "monotone: {cdf:?}");
        }
        assert!(*cdf.last().expect("nonempty") > 0.9, "eventually delivers");
        // Median consistency with the mean (same order of magnitude).
        let mean = time_to_first_delivery(&cfg).expect("solves");
        let p_at_mean = first_delivery_cdf(&cfg, &[mean]).expect("solves")[0];
        assert!((0.3..0.9).contains(&p_at_mean), "P(T <= mean) = {p_at_mean}");
    }

    #[test]
    fn first_delivery_time_decreases_with_rates() {
        let base = time_to_first_delivery(&PerfConfig::default()).expect("ok");
        let fast = time_to_first_delivery(&PerfConfig {
            producer_rate: 10.0,
            transfer_rate: 40.0,
            consumer_rate: 20.0,
            ..Default::default()
        })
        .expect("ok");
        assert!(fast < base, "faster stages deliver sooner: {fast} vs {base}");
    }
}
