//! The xSTream case study (STMicroelectronics): a multiprocessor dataflow
//! streaming architecture whose processing elements communicate through
//! hardware FIFO queues over a NoC with *credit-based flow control*.
//!
//! The paper reports two uses of the Multival flow on xSTream:
//! * functional verification found "two functional issues" (§3) —
//!   reproduced here as seeded bugs caught by deadlock detection and
//!   equivalence checking ([`queue`], experiment E2);
//! * performance evaluation predicted "latency, throughputs in the
//!   communication architecture, and occupancy within xSTream queues" (§4)
//!   — reproduced by the credit-based pipeline performance model
//!   ([`perf`], experiment E6).

pub mod perf;
pub mod pipeline;
pub mod queue;
pub mod tandem;
