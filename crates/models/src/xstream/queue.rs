//! Functional (mini-LOTOS) models of the xSTream queues.
//!
//! The data-carrying FIFO models verify *order preservation* by equivalence
//! with a reference queue; the credit-protocol models verify *deadlock
//! freedom*. Two seeded bugs reproduce the paper's "two functional issues
//! in xSTream have been highlighted" (experiment E2):
//!
//! * [`BUGGY_CREDIT_SPEC`] — the flow-control credit is consumed twice per
//!   transfer, so the credit pool drains and the pipeline deadlocks;
//! * [`buggy_lifo_spec`] — the queue hands elements back in LIFO order,
//!   caught by weak-trace comparison against the FIFO reference.

use multival_pa::{parse_spec, ParseError, Spec};

/// Mini-LOTOS source of a data-carrying FIFO queue of capacity 2 over a
/// small value domain, plus a same-capacity reference specification.
///
/// `Fifo2` is the implementation style used in the xSTream models: two
/// chained one-place buffers (a structural, bottom-up model). `FifoSpec`
/// is the top-down functional specification: a single process tracking the
/// queue contents. The two must be branching-equivalent after hiding the
/// internal hop gate.
pub const FIFO_SPEC: &str = r#"
-- One-place data buffer.
process Cell[put, get](x: int 0..2, full: bool) :=
    [not full] -> put ?v:int 0..2; Cell[put, get](v, true)
 [] [full]     -> get !x;          Cell[put, get](x, false)
endproc

-- Capacity-2 FIFO as two chained cells (structural model).
process Fifo2[put, get] :=
    hide mid in
      (Cell[put, mid](0, false) |[mid]| Cell[mid, get](0, false))
endproc

-- Capacity-2 FIFO as one process over explicit contents (functional model).
-- slots: n = fill level; a = head value, b = second value.
process FifoSpec[put, get](n: int 0..2, a: int 0..2, b: int 0..2) :=
    [n == 0] -> put ?v:int 0..2; FifoSpec[put, get](1, v, 0)
 [] [n == 1] -> put ?v:int 0..2; FifoSpec[put, get](2, a, v)
 [] [n == 1] -> get !a;          FifoSpec[put, get](0, 0, 0)
 [] [n == 2] -> get !a;          FifoSpec[put, get](1, b, 0)
endproc

behaviour Fifo2[put, get]
"#;

/// A LIFO (stack) variant of the capacity-2 queue — the seeded
/// order-violation bug. Weak-trace comparison against `FifoSpec` yields a
/// distinguishing trace (experiment E2b).
pub fn buggy_lifo_spec() -> &'static str {
    r#"
-- Capacity-2 LIFO: get returns the most recent value (BUG: should be FIFO).
process Lifo2[put, get](n: int 0..2, a: int 0..2, b: int 0..2) :=
    [n == 0] -> put ?v:int 0..2; Lifo2[put, get](1, v, 0)
 [] [n == 1] -> put ?v:int 0..2; Lifo2[put, get](2, a, v)
 [] [n == 1] -> get !a;          Lifo2[put, get](0, 0, 0)
 [] [n == 2] -> get !b;          Lifo2[put, get](1, a, 0)
endproc

behaviour Lifo2[put, get](0, 0, 0)
"#
}

/// Credit-based flow control between a push queue and a pop queue, correct
/// version: each transfer consumes one credit; each pop returns one.
///
/// Gates: `push` (producer), `xfer` (NoC transfer), `pop` (consumer),
/// `credit` (credit return over the NoC).
pub const CREDIT_SPEC: &str = r#"
-- Sender-side (push) queue of capacity 2.
process PushQ[push, xfer](n: int 0..2) :=
    [n < 2] -> push; PushQ[push, xfer](n + 1)
 [] [n > 0] -> xfer; PushQ[push, xfer](n - 1)
endproc

-- Receiver-side (pop) queue of capacity 2.
process PopQ[xfer, pop](n: int 0..2) :=
    [n < 2] -> xfer; PopQ[xfer, pop](n + 1)
 [] [n > 0] -> pop; PopQ[xfer, pop](n - 1)
endproc

-- Credit counter: transfers need a credit, pops give one back.
process Credits[xfer, credit](c: int 0..2) :=
    [c > 0] -> xfer;   Credits[xfer, credit](c - 1)
 [] [c < 2] -> credit; Credits[xfer, credit](c + 1)
endproc

-- Consumer returns a credit after each pop.
process Consumer[pop, credit] :=
    pop; credit; Consumer[pop, credit]
endproc

behaviour
  hide xfer, credit in
    ((PushQ[push, xfer](0) |[xfer]| PopQ[xfer, pop](0))
      |[xfer]| Credits[xfer, credit](2))
    |[pop, credit]| Consumer[pop, credit]
"#;

/// The seeded credit-protocol bug: the credit pool starts at 2 but each
/// pop returns a credit only every *other* time (the consumer loses one),
/// so the pool drains and the pipeline deadlocks (experiment E2a).
pub const BUGGY_CREDIT_SPEC: &str = r#"
process PushQ[push, xfer](n: int 0..2) :=
    [n < 2] -> push; PushQ[push, xfer](n + 1)
 [] [n > 0] -> xfer; PushQ[push, xfer](n - 1)
endproc

process PopQ[xfer, pop](n: int 0..2) :=
    [n < 2] -> xfer; PopQ[xfer, pop](n + 1)
 [] [n > 0] -> pop; PopQ[xfer, pop](n - 1)
endproc

process Credits[xfer, credit](c: int 0..2) :=
    [c > 0] -> xfer;   Credits[xfer, credit](c - 1)
 [] [c < 2] -> credit; Credits[xfer, credit](c + 1)
endproc

-- BUG: only one credit returned per two pops.
process LossyConsumer[pop, credit] :=
    pop; pop; credit; LossyConsumer[pop, credit]
endproc

behaviour
  hide xfer, credit in
    ((PushQ[push, xfer](0) |[xfer]| PopQ[xfer, pop](0))
      |[xfer]| Credits[xfer, credit](2))
    |[pop, credit]| LossyConsumer[pop, credit]
"#;

/// Parses the correct FIFO specification.
///
/// # Errors
///
/// Propagates parser errors (the constant is tested to parse).
pub fn fifo_spec() -> Result<Spec, ParseError> {
    parse_spec(FIFO_SPEC)
}

/// Parses the correct credit-protocol specification.
///
/// # Errors
///
/// Propagates parser errors (the constant is tested to parse).
pub fn credit_spec() -> Result<Spec, ParseError> {
    parse_spec(CREDIT_SPEC)
}

/// Parses the buggy credit-protocol specification.
///
/// # Errors
///
/// Propagates parser errors (the constant is tested to parse).
pub fn buggy_credit_spec() -> Result<Spec, ParseError> {
    parse_spec(BUGGY_CREDIT_SPEC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use multival_lts::analysis::deadlock_witness;
    use multival_lts::equiv::{equivalent, weak_trace_equivalent, Verdict};
    use multival_lts::minimize::Equivalence;
    use multival_lts::ops::hide;
    use multival_pa::{explore, parse_behaviour, ExploreOptions};

    #[test]
    fn fifo2_matches_functional_spec() {
        let spec = fifo_spec().expect("parses");
        let impl_lts = explore(&spec, &ExploreOptions::default()).expect("explores").lts;
        let spec_term = parse_behaviour("FifoSpec[put, get](0, 0, 0)", &spec).expect("parses");
        let spec_lts = multival_pa::explore_term(spec_term, &spec, &ExploreOptions::default())
            .expect("explores")
            .lts;
        // The structural model has an internal hop (τ): branching equivalence.
        assert!(equivalent(&impl_lts, &spec_lts, Equivalence::Branching).holds());
        // But not strong equivalence (the τ hop is visible to strong bisim).
        assert!(!equivalent(&impl_lts, &spec_lts, Equivalence::Strong).holds());
    }

    #[test]
    fn lifo_bug_caught_with_witness() {
        let spec = fifo_spec().expect("parses");
        let spec_term = parse_behaviour("FifoSpec[put, get](0, 0, 0)", &spec).expect("parses");
        let spec_lts = multival_pa::explore_term(spec_term, &spec, &ExploreOptions::default())
            .expect("explores")
            .lts;
        let lifo = parse_spec(buggy_lifo_spec()).expect("parses");
        let lifo_lts = explore(&lifo, &ExploreOptions::default()).expect("explores").lts;
        match weak_trace_equivalent(&spec_lts, &lifo_lts, 1 << 16) {
            Verdict::Inequivalent { witness: Some(w) } => {
                // Shortest distinguishing trace: push two distinct values,
                // then the wrong one comes out.
                assert!(w.len() >= 3, "witness: {w:?}");
                assert!(w.last().expect("nonempty").starts_with("get"));
            }
            v => panic!("LIFO must differ from FIFO: {v:?}"),
        }
    }

    #[test]
    fn correct_credit_protocol_deadlock_free() {
        let spec = credit_spec().expect("parses");
        let lts = explore(&spec, &ExploreOptions::default()).expect("explores").lts;
        assert!(deadlock_witness(&lts).is_none(), "correct protocol must not deadlock");
        assert!(lts.num_states() > 10, "interleaving should be nontrivial");
    }

    #[test]
    fn credit_bug_deadlocks_with_witness() {
        let spec = buggy_credit_spec().expect("parses");
        let lts = explore(&spec, &ExploreOptions::default()).expect("explores").lts;
        let w = deadlock_witness(&lts).expect("the lossy consumer must deadlock");
        // The witness ends when everything is stuck; it must contain pops.
        assert!(w.iter().any(|l| l == "pop"), "witness: {w:?}");
    }

    #[test]
    fn hidden_interface_reduces_further() {
        let spec = credit_spec().expect("parses");
        let lts = explore(&spec, &ExploreOptions::default()).expect("explores").lts;
        let external = hide(&lts, ["xfer", "credit"]);
        let (min, stats) = multival_lts::minimize::minimize(&external, Equivalence::Branching);
        assert!(min.num_states() < stats.states_before);
    }
}
