//! A parameterizable "counter ring" demo system for the on-the-fly
//! experiments: `n` independent cyclic counters that can jointly `HALT`
//! from their start position into an absorbing stop state.
//!
//! The full product has `len^n (+1)` states — it explodes geometrically —
//! while the one deadlock (everybody halted) sits a single step from the
//! initial state. Eager composition must materialize the whole product;
//! an on-the-fly deadlock search finds the halt immediately, which is the
//! gap the E1 "materialized vs. visited" column quantifies.

use multival_lts::ops::Sync;
use multival_lts::{Lts, LtsBuilder};

/// The gate on which all ring components synchronize to stop.
pub const HALT_GATE: &str = "HALT";

/// One cyclic counter of length `len` with private stepping labels
/// (`STEP_<id> !<pos>`) and a joint `HALT` from its start position into an
/// absorbing state.
///
/// # Panics
///
/// Panics if `len` is zero.
pub fn ring_component(id: usize, len: usize) -> Lts {
    assert!(len > 0, "ring length must be positive");
    let mut b = LtsBuilder::new();
    let states: Vec<_> = (0..len).map(|_| b.add_state()).collect();
    let halted = b.add_state();
    for (pos, &s) in states.iter().enumerate() {
        b.add_transition(s, &format!("STEP_{id} !{pos}"), states[(pos + 1) % len]);
    }
    b.add_transition(states[0], HALT_GATE, halted);
    b.build(states[0])
}

/// `n` ring components of length `len`, ready for `compose_all` or a
/// `LazyProduct` under [`ring_sync`].
pub fn ring_parts(n: usize, len: usize) -> Vec<Lts> {
    (0..n).map(|id| ring_component(id, len)).collect()
}

/// The synchronization discipline for the ring system: joint `HALT`,
/// everything else interleaved.
pub fn ring_sync() -> Sync {
    Sync::on([HALT_GATE])
}

/// The number of states of the *full* ring product: `len^n` free
/// combinations plus the halted state.
pub fn full_product_states(n: usize, len: usize) -> usize {
    len.pow(n as u32) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use multival_lts::ops::compose_all;
    use multival_lts::reach::{deadlock_search, materialize, ReachOptions};
    use multival_lts::ts::LazyProduct;

    #[test]
    fn eager_product_is_the_full_state_space() {
        let parts = ring_parts(3, 8);
        let refs: Vec<&Lts> = parts.iter().collect();
        let product = compose_all(&refs, &ring_sync());
        assert_eq!(product.num_states() as usize, full_product_states(3, 8));
    }

    #[test]
    fn deadlock_is_one_step_away() {
        let parts = ring_parts(3, 8);
        let refs: Vec<&Lts> = parts.iter().collect();
        let lazy = LazyProduct::new(&refs, &ring_sync());
        let outcome = deadlock_search(&lazy, &ReachOptions::default());
        assert_eq!(outcome.witness, Some(vec![HALT_GATE.to_owned()]));
        assert!(
            outcome.stats.visited < full_product_states(3, 8) / 10,
            "search visited {} of {} product states",
            outcome.stats.visited,
            full_product_states(3, 8)
        );
    }

    #[test]
    fn lazy_and_eager_products_agree() {
        let parts = ring_parts(2, 4);
        let refs: Vec<&Lts> = parts.iter().collect();
        let lazy = materialize(&LazyProduct::new(&refs, &ring_sync()));
        let eager = compose_all(&refs, &ring_sync());
        assert_eq!(multival_lts::io::write_aut(&lazy), multival_lts::io::write_aut(&eager));
    }
}
