//! A small generic explicit-state explorer for *programmatic* models
//! (models whose state is a Rust struct rather than a process-algebra
//! term). Used by the FAME2 coherence/MPI models and the xSTream
//! performance model.

use multival_lts::{Lts, LtsBuilder, StateId};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;

/// A programmatic model: a state type plus a successor function.
pub trait Model {
    /// The state type (must be hashable for the visited set).
    type State: Clone + Eq + Hash;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Labeled successors of a state.
    fn successors(&self, state: &Self::State) -> Vec<(String, Self::State)>;
}

/// Error from [`explore_model`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplosionError {
    /// States enumerated when the cap was hit.
    pub states: usize,
}

impl fmt::Display for ExplosionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model exploration exceeded the cap at {} states", self.states)
    }
}

impl std::error::Error for ExplosionError {}

/// The explored state space plus the state each id denotes.
#[derive(Debug, Clone)]
pub struct ExploredModel<S> {
    /// The LTS (ids in BFS discovery order, 0 initial).
    pub lts: Lts,
    /// `states[i]` is the model state with id `i`.
    pub states: Vec<S>,
}

impl<S> ExploredModel<S> {
    /// Ids of states satisfying a predicate on the model state.
    pub fn states_where(&self, mut pred: impl FnMut(&S) -> bool) -> Vec<StateId> {
        self.states.iter().enumerate().filter(|(_, s)| pred(s)).map(|(i, _)| i as StateId).collect()
    }
}

/// BFS-explores a [`Model`] into an LTS, capping at `max_states`.
///
/// # Errors
///
/// Returns [`ExplosionError`] when the cap is exceeded.
pub fn explore_model<M: Model>(
    model: &M,
    max_states: usize,
) -> Result<ExploredModel<M::State>, ExplosionError> {
    let mut builder = LtsBuilder::new();
    let mut index: HashMap<M::State, StateId> = HashMap::new();
    let mut states: Vec<M::State> = Vec::new();
    let mut queue: VecDeque<StateId> = VecDeque::new();

    let init = model.initial();
    let s0 = builder.add_state();
    index.insert(init.clone(), s0);
    states.push(init);
    queue.push_back(s0);

    while let Some(s) = queue.pop_front() {
        let current = states[s as usize].clone();
        for (label, next) in model.successors(&current) {
            let dst = match index.get(&next) {
                Some(&d) => d,
                None => {
                    if states.len() >= max_states {
                        return Err(ExplosionError { states: states.len() });
                    }
                    let d = builder.add_state();
                    index.insert(next.clone(), d);
                    states.push(next);
                    queue.push_back(d);
                    d
                }
            };
            builder.add_transition(s, &label, dst);
        }
    }
    Ok(ExploredModel { lts: builder.build(s0), states })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        max: u32,
    }

    impl Model for Counter {
        type State = u32;

        fn initial(&self) -> u32 {
            0
        }

        fn successors(&self, &s: &u32) -> Vec<(String, u32)> {
            let mut out = Vec::new();
            if s < self.max {
                out.push(("up".to_owned(), s + 1));
            }
            if s > 0 {
                out.push(("down".to_owned(), s - 1));
            }
            out
        }
    }

    #[test]
    fn counter_explores_linearly() {
        let e = explore_model(&Counter { max: 5 }, 1_000).expect("explores");
        assert_eq!(e.lts.num_states(), 6);
        assert_eq!(e.lts.num_transitions(), 10);
        assert_eq!(e.states_where(|&s| s == 3), vec![3]);
    }

    #[test]
    fn cap_enforced() {
        let err = explore_model(&Counter { max: 100 }, 10).expect_err("cap");
        assert_eq!(err.states, 10);
    }
}
