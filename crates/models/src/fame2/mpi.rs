//! The MPI software layer over the coherent shared memory.
//!
//! MPI send/receive are expressed as *programs* — sequences of memory
//! operations on shared cache lines — in two software implementations:
//!
//! * **eager**: the sender copies the payload into a mailbox buffer at the
//!   receiver and raises a flag; the receiver polls the flag, reads the
//!   mailbox, and copies the payload out into its user buffer (an extra
//!   copy, but only one synchronization);
//! * **rendezvous**: the sender posts a request-to-send, waits for the
//!   clear-to-send, writes the payload *directly* into the receiver's user
//!   buffer and raises a done flag (no extra copy, but three
//!   synchronizations).
//!
//! Every memory operation goes through the MSI/MESI protocol of
//! [`crate::fame2::coherence`], one line at a time, serialized by the
//! coherence fabric. All protocol messages appear as labels carrying
//! global node ids, so the benchmark layer can attach topology-dependent
//! delays.

use crate::common::Model;
use crate::fame2::coherence::{CacheState, CoherenceModel, Phase, Protocol, Txn, TxnKind};
use crate::fame2::topology::Topology;

/// Which MPI implementation the programs use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiImpl {
    /// Buffered send with one synchronization and an extra copy.
    Eager,
    /// Zero-copy send with a three-way handshake.
    Rendezvous,
}

impl std::fmt::Display for MpiImpl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiImpl::Eager => write!(f, "eager"),
            MpiImpl::Rendezvous => write!(f, "rendezvous"),
        }
    }
}

/// A shared cache line with a home node (whose memory controller serves
/// misses for it).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Line {
    /// Diagnostic name.
    pub name: String,
    /// Home node (global id).
    pub home: usize,
}

/// One memory operation of an MPI program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Load the line (hit or read transaction).
    Read(usize),
    /// Store `true` to the line (hit, upgrade, or write transaction).
    Write(usize),
    /// Store `false` to the line (same coherence cost as a write) — used to
    /// reset flags between rounds of a cyclic benchmark.
    Clear(usize),
    /// Spin-read until the line's value is `true`.
    PollSet(usize),
    /// Emit a visible marker label (no memory effect) — used as a
    /// throughput probe (`MARK !<name>`).
    Mark(&'static str),
}

/// Configuration of a two-party MPI exchange.
#[derive(Debug, Clone, Copy)]
pub struct MpiConfig {
    /// Interconnect (determines node placement and hop distances).
    pub topology: Topology,
    /// Coherence protocol.
    pub protocol: Protocol,
    /// MPI implementation.
    pub implementation: MpiImpl,
    /// Payload size in cache lines per message.
    pub payload: usize,
}

/// The two communicating ranks: rank 0 at node 0, rank 1 at the node
/// farthest from it in the topology.
pub fn participants(topology: &Topology) -> (usize, usize) {
    (0, topology.farthest_from(0))
}

/// The ping-pong programs: rank 0 sends `payload` lines to rank 1, which
/// replies with an equal-sized message. Returns `(lines, prog0, prog1)`.
pub fn ping_pong_programs(config: &MpiConfig) -> (Vec<Line>, Vec<Op>, Vec<Op>) {
    let (a, b) = participants(&config.topology);
    let mut lines: Vec<Line> = Vec::new();
    let mut line = |name: String, home: usize| -> usize {
        lines.push(Line { name, home });
        lines.len() - 1
    };
    let payload = config.payload;
    let mut prog_a: Vec<Op> = Vec::new();
    let mut prog_b: Vec<Op> = Vec::new();

    // Private source buffers, prepared read-modify-write (where MESI's E
    // state pays off: the read installs E, the write upgrades silently).
    let src_a: Vec<usize> = (0..payload).map(|i| line(format!("srcA{i}"), a)).collect();
    let src_b: Vec<usize> = (0..payload).map(|i| line(format!("srcB{i}"), b)).collect();

    match config.implementation {
        MpiImpl::Eager => {
            let mb_b: Vec<usize> = (0..payload).map(|i| line(format!("mbB{i}"), b)).collect();
            let mb_a: Vec<usize> = (0..payload).map(|i| line(format!("mbA{i}"), a)).collect();
            let dst_a: Vec<usize> = (0..payload).map(|i| line(format!("dstA{i}"), a)).collect();
            let dst_b: Vec<usize> = (0..payload).map(|i| line(format!("dstB{i}"), b)).collect();
            let flag_ab = line("flagAB".into(), b);
            let flag_ba = line("flagBA".into(), a);

            // Rank 0: prepare, copy into B's mailbox, flag; then receive.
            for &l in &src_a {
                prog_a.push(Op::Read(l));
                prog_a.push(Op::Write(l));
            }
            for &l in &mb_b {
                prog_a.push(Op::Write(l));
            }
            prog_a.push(Op::Write(flag_ab));
            prog_a.push(Op::PollSet(flag_ba));
            for &l in &mb_a {
                prog_a.push(Op::Read(l));
            }
            for &l in &dst_a {
                prog_a.push(Op::Write(l));
            }

            // Rank 1: receive, copy out; then prepare and send the reply.
            prog_b.push(Op::PollSet(flag_ab));
            for &l in &mb_b {
                prog_b.push(Op::Read(l));
            }
            for &l in &dst_b {
                prog_b.push(Op::Write(l));
            }
            for &l in &src_b {
                prog_b.push(Op::Read(l));
                prog_b.push(Op::Write(l));
            }
            for &l in &mb_a {
                prog_b.push(Op::Write(l));
            }
            prog_b.push(Op::Write(flag_ba));
        }
        MpiImpl::Rendezvous => {
            let usr_b: Vec<usize> = (0..payload).map(|i| line(format!("usrB{i}"), b)).collect();
            let usr_a: Vec<usize> = (0..payload).map(|i| line(format!("usrA{i}"), a)).collect();
            let rts_ab = line("rtsAB".into(), b);
            let cts_ba = line("ctsBA".into(), a);
            let done_ab = line("doneAB".into(), b);
            let rts_ba = line("rtsBA".into(), a);
            let cts_ab = line("ctsAB".into(), b);
            let done_ba = line("doneBA".into(), a);

            // Rank 0: prepare, handshake, write directly, done; then the
            // receive side of the reply.
            for &l in &src_a {
                prog_a.push(Op::Read(l));
                prog_a.push(Op::Write(l));
            }
            prog_a.push(Op::Write(rts_ab));
            prog_a.push(Op::PollSet(cts_ba));
            for &l in &usr_b {
                prog_a.push(Op::Write(l));
            }
            prog_a.push(Op::Write(done_ab));
            prog_a.push(Op::PollSet(rts_ba));
            prog_a.push(Op::Write(cts_ab));
            prog_a.push(Op::PollSet(done_ba));
            for &l in &usr_a {
                prog_a.push(Op::Read(l));
            }

            // Rank 1: receive side; then prepare and send the reply.
            prog_b.push(Op::PollSet(rts_ab));
            prog_b.push(Op::Write(cts_ba));
            prog_b.push(Op::PollSet(done_ab));
            for &l in &usr_b {
                prog_b.push(Op::Read(l));
            }
            for &l in &src_b {
                prog_b.push(Op::Read(l));
                prog_b.push(Op::Write(l));
            }
            prog_b.push(Op::Write(rts_ba));
            prog_b.push(Op::PollSet(cts_ab));
            for &l in &usr_a {
                prog_b.push(Op::Write(l));
            }
            prog_b.push(Op::Write(done_ba));
        }
    }
    (lines, prog_a, prog_b)
}

/// The cyclic variant of [`ping_pong_programs`]: flags are cleared by
/// their consumer, and rank 0 emits a `MARK !round` probe once per round
/// trip. Payload-line *values* are irrelevant in steady state (only the
/// coherence traffic matters), so payload writes/reads repeat as-is.
pub fn cyclic_ping_pong_programs(config: &MpiConfig) -> (Vec<Line>, Vec<Op>, Vec<Op>) {
    let (lines, mut prog_a, mut prog_b) = ping_pong_programs(&config.clone());
    // Insert a Clear immediately after every successful PollSet so the flag
    // is re-armed for the next round, and a round marker at the end of
    // rank 0's program.
    let add_clears = |prog: &mut Vec<Op>| {
        let mut i = 0;
        while i < prog.len() {
            if let Op::PollSet(l) = prog[i] {
                prog.insert(i + 1, Op::Clear(l));
                i += 1;
            }
            i += 1;
        }
    };
    add_clears(&mut prog_a);
    add_clears(&mut prog_b);
    prog_a.push(Op::Mark("round"));
    (lines, prog_a, prog_b)
}

/// State of the two-rank MPI execution over the coherent memory.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MpiState {
    /// Per line, the cache state at rank 0 and rank 1.
    pub caches: Vec<[CacheState; 2]>,
    /// Bit per line: has `true` been stored?
    pub values: u64,
    /// The in-flight coherence transaction (serialized fabric), plus its
    /// line; the rank is `txn.node` (participant index, 0 or 1).
    pub bus: Option<(u16, Txn)>,
    /// Program counters of the two ranks.
    pub pc: [u16; 2],
}

/// The combined MPI + coherence model.
#[derive(Debug, Clone)]
pub struct MpiModel {
    /// Configuration.
    pub config: MpiConfig,
    /// Shared lines.
    pub lines: Vec<Line>,
    /// Programs of the two ranks.
    pub programs: [Vec<Op>; 2],
    /// When set, program counters wrap around: the benchmark repeats
    /// forever (steady-state bandwidth mode, flags reset via [`Op::Clear`]).
    pub cyclic: bool,
    node_ids: [usize; 2],
    protocol: CoherenceModel,
}

impl MpiModel {
    /// Builds the single-round ping-pong model (absorbing; latency mode).
    pub fn ping_pong(config: MpiConfig) -> Self {
        let (lines, prog_a, prog_b) = ping_pong_programs(&config);
        let (a, b) = participants(&config.topology);
        MpiModel {
            config,
            lines,
            programs: [prog_a, prog_b],
            cyclic: false,
            node_ids: [a, b],
            protocol: CoherenceModel { nodes: 2, protocol: config.protocol },
        }
    }

    /// Builds the *cyclic* ping-pong model: flags are cleared after
    /// consumption, a `MARK !round` probe fires once per round trip, and
    /// the programs loop forever — the steady-state bandwidth benchmark.
    pub fn ping_pong_cyclic(config: MpiConfig) -> Self {
        let (lines, prog_a, prog_b) = cyclic_ping_pong_programs(&config);
        let (a, b) = participants(&config.topology);
        MpiModel {
            config,
            lines,
            programs: [prog_a, prog_b],
            cyclic: true,
            node_ids: [a, b],
            protocol: CoherenceModel { nodes: 2, protocol: config.protocol },
        }
    }

    fn advance(&self, st: &mut MpiState, p: usize) {
        st.pc[p] += 1;
        if self.cyclic && st.pc[p] as usize >= self.programs[p].len() {
            st.pc[p] = 0;
        }
    }

    /// Global node id of rank `p`.
    pub fn node_of(&self, p: usize) -> usize {
        self.node_ids[p]
    }

    /// Is the state terminal (both programs finished)?
    pub fn finished(&self, s: &MpiState) -> bool {
        (0..2).all(|p| s.pc[p] as usize >= self.programs[p].len())
    }

    fn value(&self, s: &MpiState, l: usize) -> bool {
        s.values & (1 << l) != 0
    }

    fn with_value(&self, s: &MpiState, l: usize) -> u64 {
        s.values | (1 << l)
    }
}

impl Model for MpiModel {
    type State = MpiState;

    fn initial(&self) -> MpiState {
        assert!(self.lines.len() <= 64, "value bitmap holds at most 64 lines");
        MpiState {
            caches: vec![[CacheState::I; 2]; self.lines.len()],
            values: 0,
            bus: None,
            pc: [0, 0],
        }
    }

    fn successors(&self, s: &MpiState) -> Vec<(String, MpiState)> {
        let mut out = Vec::new();
        match &s.bus {
            Some((l, txn)) => {
                // Progress the in-flight transaction on its line.
                let line = *l as usize;
                let caches = [s.caches[line][0], s.caches[line][1]];
                let suffix = format!(" !{line}");
                let mut steps = Vec::new();
                self.protocol.protocol_successors_mapped(
                    &caches,
                    &Some(*txn),
                    |_, _| false,
                    &self.node_ids,
                    &suffix,
                    &mut steps,
                );
                for (label, next) in steps {
                    let mut st = s.clone();
                    st.caches[line] = [next.caches[0], next.caches[1]];
                    st.bus = next.bus.map(|t| (*l, t));
                    if label.starts_with("GRANT") {
                        // The requesting rank's pending op completes.
                        let p = txn.node as usize;
                        self.complete_op(&mut st, p, line, txn.kind);
                    }
                    out.push((label, st));
                }
            }
            None => {
                // Each rank may attempt its next op; issues race.
                for p in 0..2 {
                    let pc = s.pc[p] as usize;
                    let Some(op) = self.programs[p].get(pc) else { continue };
                    let node = self.node_ids[p];
                    match *op {
                        Op::Mark(name) => {
                            let mut st = s.clone();
                            self.advance(&mut st, p);
                            out.push((format!("MARK !{name}"), st));
                        }
                        Op::Read(l) => {
                            if s.caches[l][p].readable() {
                                let mut st = s.clone();
                                self.advance(&mut st, p);
                                out.push((format!("RD_HIT !{node} !{l}"), st));
                            } else {
                                let mut st = s.clone();
                                st.bus = Some((
                                    l as u16,
                                    Txn { node: p as u8, kind: TxnKind::Read, phase: Phase::Snoop },
                                ));
                                out.push((format!("RD !{node} !{l}"), st));
                            }
                        }
                        Op::PollSet(l) => {
                            if s.caches[l][p].readable() {
                                if self.value(s, l) {
                                    let mut st = s.clone();
                                    self.advance(&mut st, p);
                                    out.push((format!("RD_HIT !{node} !{l}"), st));
                                } else {
                                    // Spin: reread the (coherent) copy.
                                    out.push((format!("POLL !{node} !{l}"), s.clone()));
                                }
                            } else {
                                let mut st = s.clone();
                                st.bus = Some((
                                    l as u16,
                                    Txn { node: p as u8, kind: TxnKind::Read, phase: Phase::Snoop },
                                ));
                                out.push((format!("RD !{node} !{l}"), st));
                            }
                        }
                        Op::Write(l) | Op::Clear(l) => {
                            let set = matches!(op, Op::Write(_));
                            if s.caches[l][p].writable(self.config.protocol) {
                                let mut st = s.clone();
                                if s.caches[l][p] == CacheState::E {
                                    st.caches[l][p] = CacheState::M;
                                }
                                st.values = if set {
                                    self.with_value(s, l)
                                } else {
                                    s.values & !(1u64 << l)
                                };
                                self.advance(&mut st, p);
                                out.push((format!("WR_HIT !{node} !{l}"), st));
                            } else {
                                let mut st = s.clone();
                                st.bus = Some((
                                    l as u16,
                                    Txn {
                                        node: p as u8,
                                        kind: TxnKind::Write,
                                        phase: Phase::Snoop,
                                    },
                                ));
                                out.push((format!("WR !{node} !{l}"), st));
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

impl MpiModel {
    /// Applies the effect of the completed (granted) operation of rank `p`
    /// on `line` and advances its program counter — except for a poll that
    /// read `false`, which retries.
    fn complete_op(&self, st: &mut MpiState, p: usize, line: usize, kind: TxnKind) {
        let pc = st.pc[p] as usize;
        let op = self.programs[p].get(pc).copied();
        match (op, kind) {
            (Some(Op::Write(l)), TxnKind::Write) if l == line => {
                st.values |= 1 << l;
                self.advance(st, p);
            }
            (Some(Op::Clear(l)), TxnKind::Write) if l == line => {
                st.values &= !(1u64 << l);
                self.advance(st, p);
            }
            (Some(Op::Read(l)), TxnKind::Read) if l == line => {
                self.advance(st, p);
            }
            (Some(Op::PollSet(l)), TxnKind::Read) if l == line => {
                if st.values & (1 << l) != 0 {
                    self.advance(st, p);
                }
                // else: keep polling (now with a valid S copy).
            }
            _ => unreachable!("grant without a matching pending op"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::explore_model;

    fn config(implementation: MpiImpl, protocol: Protocol) -> MpiConfig {
        MpiConfig { topology: Topology::Crossbar(2), protocol, implementation, payload: 1 }
    }

    #[test]
    fn eager_ping_pong_terminates() {
        let model = MpiModel::ping_pong(config(MpiImpl::Eager, Protocol::Msi));
        let e = explore_model(&model, 2_000_000).expect("explores");
        let done = e.states_where(|s| model.finished(s));
        assert!(!done.is_empty(), "the round trip must complete");
        // Terminal states are exactly the deadlocks of the LTS (the model
        // stops when both programs finish).
        let deadlocks = e.lts.deadlock_states();
        for d in &deadlocks {
            assert!(
                model.finished(&e.states[*d as usize]),
                "only completed rounds may be terminal"
            );
        }
        assert!(!deadlocks.is_empty());
    }

    #[test]
    fn rendezvous_ping_pong_terminates() {
        let model = MpiModel::ping_pong(config(MpiImpl::Rendezvous, Protocol::Mesi));
        let e = explore_model(&model, 2_000_000).expect("explores");
        let done = e.states_where(|s| model.finished(s));
        assert!(!done.is_empty());
        for d in e.lts.deadlock_states() {
            assert!(model.finished(&e.states[d as usize]));
        }
    }

    #[test]
    fn swmr_holds_along_mpi_execution() {
        use crate::fame2::coherence::swmr_holds;
        for proto in [Protocol::Msi, Protocol::Mesi] {
            for imp in [MpiImpl::Eager, MpiImpl::Rendezvous] {
                let model = MpiModel::ping_pong(config(imp, proto));
                let e = explore_model(&model, 2_000_000).expect("explores");
                for s in &e.states {
                    for lc in &s.caches {
                        assert!(swmr_holds(lc), "{proto} {imp}: violation in {s:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn mesi_uses_silent_upgrades_msi_does_not() {
        let count_upgrades = |proto: Protocol| -> usize {
            let model = MpiModel::ping_pong(config(MpiImpl::Eager, proto));
            let e = explore_model(&model, 2_000_000).expect("explores");
            e.lts
                .iter_transitions()
                .filter(|&(_, l, _)| e.lts.labels().name(l).starts_with("WR_HIT"))
                .count()
        };
        // MESI: the prepared source lines are written from E silently.
        assert!(count_upgrades(Protocol::Mesi) > 0);
    }

    #[test]
    fn msi_needs_more_bus_transactions_than_mesi() {
        let bus_txns = |proto: Protocol| -> usize {
            let model = MpiModel::ping_pong(config(MpiImpl::Eager, proto));
            let e = explore_model(&model, 2_000_000).expect("explores");
            // Count UPG/WR issue labels on the shortest terminating path?
            // Simpler structural proxy: number of distinct UPG labels used.
            e.lts
                .used_labels()
                .into_iter()
                .filter(|&l| e.lts.labels().name(l).starts_with("UPG"))
                .count()
        };
        assert!(
            bus_txns(Protocol::Msi) > bus_txns(Protocol::Mesi),
            "MSI must pay upgrade transactions where MESI goes silent"
        );
    }

    #[test]
    fn polling_spins_until_flag_set() {
        let model = MpiModel::ping_pong(config(MpiImpl::Eager, Protocol::Msi));
        let e = explore_model(&model, 2_000_000).expect("explores");
        // POLL self-loops exist (rank 1 polls before rank 0 flags).
        let has_poll = e
            .lts
            .iter_transitions()
            .any(|(s, l, t)| s == t && e.lts.labels().name(l).starts_with("POLL"));
        assert!(has_poll, "the receiver must be able to spin on the flag");
    }

    #[test]
    fn temporal_properties_of_the_protocol() {
        use multival_mcl::{check, parse_formula, patterns, ActionFormula};
        let model = MpiModel::ping_pong(config(MpiImpl::Eager, Protocol::Msi));
        let e = explore_model(&model, 2_000_000).expect("explores");
        // A grant can never precede the first issue (RD/WR) on the bus.
        let no_early_grant = patterns::no_before(
            ActionFormula::pattern("GRANT*"),
            ActionFormula::Or(
                Box::new(ActionFormula::pattern("RD !*")),
                Box::new(ActionFormula::pattern("WR !*")),
            ),
        );
        assert!(check(&e.lts, &no_early_grant).expect("mc").holds);
        // Under MSI with a 1-line payload every access is a first-touch
        // miss, so no HIT label ever fires; under MESI the prepared source
        // line is written from E silently — reachable as a WR_HIT.
        let hit_reachable = parse_formula("mu X. <\"WR_HIT*\"> true or <true> X").expect("parses");
        assert!(!check(&e.lts, &hit_reachable).expect("mc").holds, "MSI: all misses");
        let mesi = MpiModel::ping_pong(config(MpiImpl::Eager, Protocol::Mesi));
        let em = explore_model(&mesi, 2_000_000).expect("explores");
        assert!(check(&em.lts, &hit_reachable).expect("mc").holds, "MESI: silent upgrade");
        // Flushes only happen while a transaction is in flight: no FLUSH
        // directly from the initial (quiescent) state.
        let no_idle_flush = parse_formula("[\"FLUSH*\"] false").expect("parses");
        assert!(check(&e.lts, &no_idle_flush).expect("mc").holds);
    }

    #[test]
    fn payload_scales_program_length() {
        let small =
            MpiModel::ping_pong(MpiConfig { payload: 1, ..config(MpiImpl::Eager, Protocol::Msi) });
        let large =
            MpiModel::ping_pong(MpiConfig { payload: 3, ..config(MpiImpl::Eager, Protocol::Msi) });
        assert!(large.programs[0].len() > small.programs[0].len());
        assert!(large.lines.len() > small.lines.len());
    }
}
