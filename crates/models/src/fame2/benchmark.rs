//! The MPI ping-pong latency benchmark (experiment E5).
//!
//! "Bull was able to predict the latency of an MPI benchmark in different
//! topologies, different software implementations of the MPI primitives,
//! and different cache coherency protocols" (§4) — this module sweeps
//! exactly those three axes and reports the mean round-trip latency as the
//! expected first-passage time to program completion in the CTMC obtained
//! from the decorated MPI model.

use crate::common::explore_model;
use crate::fame2::coherence::Protocol;
use crate::fame2::mpi::{MpiConfig, MpiImpl, MpiModel};
use crate::fame2::topology::Topology;
use multival_ctmc::absorb::mean_time_to_target;
use multival_ctmc::mdp::Opt;
use multival_ctmc::steady::SolveOptions;
use multival_imc::decorate::decorate_by_label;
use multival_imc::ops::hide_all;
use multival_imc::phase_type::Delay;
use multival_imc::to_ctmc::{probe_throughputs, to_ctmc, to_ctmdp_lifted, NondetPolicy};
use multival_imc::Imc;
use std::fmt;

/// Rates of the memory-system events. All are events-per-microsecond-ish
/// scale parameters; distance-dependent events are divided by the hop
/// count, which is where the topology enters.
#[derive(Debug, Clone, Copy)]
pub struct RateConfig {
    /// Cache hit / spin-read service rate.
    pub cache_rate: f64,
    /// Transaction issue overhead rate.
    pub issue_rate: f64,
    /// Cache-to-cache transfer base rate (divided by hops).
    pub transfer_rate: f64,
    /// Invalidation base rate (divided by hops).
    pub invalidate_rate: f64,
    /// Memory fetch base rate (divided by 1 + hops to the home node).
    pub memory_rate: f64,
    /// Fabric control rate (upgrades, grants).
    pub bus_rate: f64,
}

impl Default for RateConfig {
    fn default() -> Self {
        RateConfig {
            cache_rate: 100.0,
            issue_rate: 200.0,
            transfer_rate: 20.0,
            invalidate_rate: 40.0,
            memory_rate: 10.0,
            bus_rate: 80.0,
        }
    }
}

/// Error from the latency analysis.
#[derive(Debug)]
pub enum BenchmarkError {
    /// State space exceeded the cap.
    Explosion(crate::common::ExplosionError),
    /// IMC → CTMC conversion failed.
    Conversion(multival_imc::ToCtmcError),
    /// Markov solver failed.
    Solver(multival_ctmc::CtmcError),
    /// The model never reaches completion (would give infinite latency).
    NoCompletion,
    /// An inline source model failed to parse or explore.
    Source(String),
}

impl fmt::Display for BenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchmarkError::Explosion(e) => write!(f, "{e}"),
            BenchmarkError::Conversion(e) => write!(f, "{e}"),
            BenchmarkError::Solver(e) => write!(f, "{e}"),
            BenchmarkError::NoCompletion => write!(f, "ping-pong never completes"),
            BenchmarkError::Source(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BenchmarkError {}

/// Parses a protocol label and returns its delay under `rates`/`topology`.
///
/// Labels: `RD_HIT !n !l`, `POLL !n !l`, `RD !n !l`, `WR !n !l`,
/// `WR_HIT !n !l`, `FLUSH !from !to !l`, `DOWNGRADE !from !to !l`,
/// `INV !from !to !l`, `MEM !n !l`, `UPG !n !l`, `GRANT !n !l`.
pub fn label_delay(
    label: &str,
    rates: &RateConfig,
    topology: &Topology,
    home_of_line: &dyn Fn(usize) -> usize,
) -> Option<Delay> {
    let mut parts = label.split_whitespace();
    let gate = parts.next()?;
    let args: Vec<usize> =
        parts.filter_map(|p| p.strip_prefix('!').and_then(|x| x.parse().ok())).collect();
    let rate = match (gate, args.as_slice()) {
        ("RD_HIT" | "WR_HIT" | "POLL", _) => rates.cache_rate,
        ("RD" | "WR", _) => rates.issue_rate,
        ("FLUSH" | "DOWNGRADE", [from, to, _line]) => {
            rates.transfer_rate / topology.hops(*from, *to).max(1) as f64
        }
        ("INV", [from, to, _line]) => {
            rates.invalidate_rate / topology.hops(*from, *to).max(1) as f64
        }
        ("MEM", [node, line]) => {
            rates.memory_rate / (1 + topology.hops(*node, home_of_line(*line))) as f64
        }
        ("UPG" | "GRANT", _) => rates.bus_rate,
        _ => return None,
    };
    Some(Delay::Exponential { rate })
}

/// One row of the latency table.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Interconnect.
    pub topology: Topology,
    /// Coherence protocol.
    pub protocol: Protocol,
    /// MPI implementation.
    pub implementation: MpiImpl,
    /// Payload lines per message.
    pub payload: usize,
    /// Mean round-trip latency (time units).
    pub latency: f64,
    /// Functional states explored.
    pub states: usize,
    /// CTMC states solved.
    pub ctmc_states: usize,
}

/// The absorbing round-trip chain underlying [`ping_pong_latency`].
#[derive(Debug)]
pub struct PingPongChain {
    /// IMC → CTMC conversion of the decorated benchmark.
    pub conv: multival_imc::CtmcConversion,
    /// CTMC states where the round trip has completed.
    pub done: Vec<usize>,
    /// Functional states explored before decoration.
    pub functional_states: usize,
}

/// Builds the decorated ping-pong CTMC and its completion states — the
/// chain [`ping_pong_latency`] solves, exposed so the statistical engine
/// and the golden fixtures can cross-validate on the same model.
///
/// # Errors
///
/// See [`BenchmarkError`].
pub fn ping_pong_chain(
    config: &MpiConfig,
    rates: &RateConfig,
) -> Result<PingPongChain, BenchmarkError> {
    let model = MpiModel::ping_pong(*config);
    let explored = explore_model(&model, 4_000_000).map_err(BenchmarkError::Explosion)?;
    let homes: Vec<usize> = model.lines.iter().map(|l| l.home).collect();
    let home_of = |l: usize| homes[l];
    let imc = decorate_by_label(&explored.lts, |label| {
        label_delay(label, rates, &config.topology, &home_of)
    });
    let conv =
        to_ctmc(&hide_all(&imc), NondetPolicy::Reject, &[]).map_err(BenchmarkError::Conversion)?;
    let done: Vec<usize> = explored
        .states_where(|s| model.finished(s))
        .into_iter()
        .filter_map(|i| conv.state_map[i as usize])
        .collect();
    if done.is_empty() {
        return Err(BenchmarkError::NoCompletion);
    }
    Ok(PingPongChain { conv, done, functional_states: explored.lts.num_states() })
}

/// Computes the mean ping-pong round-trip latency for one configuration.
///
/// # Errors
///
/// See [`BenchmarkError`].
pub fn ping_pong_latency(
    config: &MpiConfig,
    rates: &RateConfig,
) -> Result<LatencyRow, BenchmarkError> {
    let chain = ping_pong_chain(config, rates)?;
    let latency = mean_time_to_target(&chain.conv.ctmc, &chain.done, &SolveOptions::default())
        .map_err(BenchmarkError::Solver)?;
    Ok(LatencyRow {
        topology: config.topology,
        protocol: config.protocol,
        implementation: config.implementation,
        payload: config.payload,
        latency,
        states: chain.functional_states,
        ctmc_states: chain.conv.ctmc.num_states(),
    })
}

/// One row of the bandwidth (steady-state) table.
#[derive(Debug, Clone)]
pub struct BandwidthRow {
    /// Interconnect.
    pub topology: Topology,
    /// Coherence protocol.
    pub protocol: Protocol,
    /// MPI implementation.
    pub implementation: MpiImpl,
    /// Payload lines per message.
    pub payload: usize,
    /// Round trips per unit time at steady state.
    pub rounds_per_time: f64,
    /// Payload lines moved per unit time (2 messages per round).
    pub lines_per_time: f64,
    /// CTMC states solved.
    pub ctmc_states: usize,
}

/// Computes the steady-state ping-pong *bandwidth*: the benchmark loops
/// forever (flags cleared between rounds) and the rate of `MARK !round`
/// probes is the round-trip frequency.
///
/// # Errors
///
/// See [`BenchmarkError`].
pub fn ping_pong_bandwidth(
    config: &MpiConfig,
    rates: &RateConfig,
) -> Result<BandwidthRow, BenchmarkError> {
    let hidden = cyclic_probe_imc(config, rates)?;
    let conv = to_ctmc(&hidden, NondetPolicy::Uniform, &[ROUND_PROBE])
        .map_err(BenchmarkError::Conversion)?;
    let tp = probe_throughputs(&conv, &SolveOptions::default()).map_err(BenchmarkError::Solver)?;
    let rounds = tp.first().map(|&(_, t)| t).unwrap_or(0.0);
    Ok(BandwidthRow {
        topology: config.topology,
        protocol: config.protocol,
        implementation: config.implementation,
        payload: config.payload,
        rounds_per_time: rounds,
        lines_per_time: rounds * 2.0 * config.payload as f64,
        ctmc_states: conv.ctmc.num_states(),
    })
}

/// The round-trip throughput probe of the cyclic benchmark.
const ROUND_PROBE: &str = "MARK !round";

/// Builds the decorated cyclic ping-pong IMC with only [`ROUND_PROBE`]
/// visible — the interleaving of the two ranks' memory transactions
/// survives as τ-nondeterminism, shared by [`ping_pong_bandwidth`] (which
/// averages it away uniformly) and [`ping_pong_bandwidth_bounds`] (which
/// quantifies it).
fn cyclic_probe_imc(config: &MpiConfig, rates: &RateConfig) -> Result<Imc, BenchmarkError> {
    let model = MpiModel::ping_pong_cyclic(*config);
    let explored = explore_model(&model, 4_000_000).map_err(BenchmarkError::Explosion)?;
    let homes: Vec<usize> = model.lines.iter().map(|l| l.home).collect();
    let home_of = |l: usize| homes[l];
    let imc = decorate_by_label(&explored.lts, |label| {
        if label.starts_with("MARK") {
            None // instantaneous probe
        } else {
            label_delay(label, rates, &config.topology, &home_of)
        }
    });
    Ok(multival_imc::ops::relabel(&imc, |name| {
        if name == ROUND_PROBE {
            Some(name.to_owned())
        } else {
            None
        }
    }))
}

/// Scheduler-quantified bandwidth: the min/max round rate over *every*
/// resolution of the arbitration nondeterminism that
/// [`ping_pong_bandwidth`] resolves with the uniform policy.
#[derive(Debug, Clone)]
pub struct BandwidthBounds {
    /// Interconnect.
    pub topology: Topology,
    /// Coherence protocol.
    pub protocol: Protocol,
    /// MPI implementation.
    pub implementation: MpiImpl,
    /// Payload lines per message.
    pub payload: usize,
    /// Round rate under the worst fabric arbitration.
    pub min_rounds_per_time: f64,
    /// Round rate under the best fabric arbitration.
    pub max_rounds_per_time: f64,
    /// CTMDP states solved.
    pub ctmdp_states: usize,
    /// Instant (arbitration) states among them.
    pub instant_states: usize,
}

/// Computes [`BandwidthBounds`] for one configuration via the lifted
/// CTMDP — the E13 spread for FAME2.
///
/// # Errors
///
/// See [`BenchmarkError`].
pub fn ping_pong_bandwidth_bounds(
    config: &MpiConfig,
    rates: &RateConfig,
) -> Result<BandwidthBounds, BenchmarkError> {
    let hidden = cyclic_probe_imc(config, rates)?;
    let conv = to_ctmdp_lifted(&hidden, &[ROUND_PROBE]).map_err(BenchmarkError::Conversion)?;
    let (min, max, instant_states) = probe_rate_bounds(&conv)?;
    Ok(BandwidthBounds {
        topology: config.topology,
        protocol: config.protocol,
        implementation: config.implementation,
        payload: config.payload,
        min_rounds_per_time: min,
        max_rounds_per_time: max,
        ctmdp_states: conv.mdp.num_states(),
        instant_states,
    })
}

/// Min/max long-run rate of the (single) probe of a lifted conversion,
/// plus its instant-state count.
fn probe_rate_bounds(
    conv: &multival_imc::CtmdpConversion,
) -> Result<(f64, f64, usize), BenchmarkError> {
    let zeros = vec![0.0; conv.mdp.num_states()];
    let imp = &conv.probe_impulse[0].1;
    let min = conv
        .mdp
        .long_run_average(&zeros, Some(imp), Opt::Min, 1e-12, 1_000_000)
        .map_err(BenchmarkError::Solver)?;
    let max = conv
        .mdp
        .long_run_average(&zeros, Some(imp), Opt::Max, 1e-12, 1_000_000)
        .map_err(BenchmarkError::Solver)?;
    let instant = (0..conv.mdp.num_states()).filter(|&s| conv.mdp.is_instant(s)).count();
    Ok((min, max, instant))
}

/// Mini-LOTOS source of the *contended-fabric* round: each message is
/// serviced either by a cache-to-cache flush or by a fetch through the home
/// node, and the selection gates `c2c`/`home` are deliberately left without
/// rates — the fabric arbitration stays nondeterministic, so the model is a
/// genuine CTMDP once decorated. This is the FAME2 example fed to
/// `multival check --scheduler bounds` (the plain conversion rejects it).
#[must_use]
pub fn contended_fabric_source() -> String {
    "process Round[issue, c2c, home, flush, mem, consume, mark] :=
        issue; (   c2c; flush; consume; mark;
                       Round[issue, c2c, home, flush, mem, consume, mark]
                [] home; mem; consume; mark;
                       Round[issue, c2c, home, flush, mem, consume, mark] )
     endproc
     behaviour Round[issue, c2c, home, flush, mem, consume, mark]"
        .to_owned()
}

/// Scheduler-quantified round rate of the contended-fabric model.
#[derive(Debug, Clone, Copy)]
pub struct FabricBounds {
    /// Round rate when the fabric always routes through the home node.
    pub min_rounds_per_time: f64,
    /// Round rate when every miss is served cache-to-cache.
    pub max_rounds_per_time: f64,
    /// CTMDP states solved.
    pub ctmdp_states: usize,
    /// Instant (arbitration) states among them.
    pub instant_states: usize,
}

/// Min/max round rate of [`contended_fabric_source`] over every fabric
/// arbitration, with `flush`/`mem` slowed by the given hop distance —
/// the genuine-spread half of the FAME2 E13 section.
///
/// # Errors
///
/// See [`BenchmarkError`].
pub fn contended_fabric_bounds(
    rates: &RateConfig,
    hops: usize,
) -> Result<FabricBounds, BenchmarkError> {
    let spec = multival_pa::parse_spec(&contended_fabric_source())
        .map_err(|e| BenchmarkError::Source(e.to_string()))?;
    let explored = multival_pa::explore(&spec, &multival_pa::ExploreOptions::default())
        .map_err(|e| BenchmarkError::Source(e.to_string()))?;
    let hops = hops.max(1);
    let imc = decorate_by_label(&explored.lts, |label| {
        let rate = match label {
            "issue" => rates.issue_rate,
            "flush" => rates.transfer_rate / hops as f64,
            "mem" => rates.memory_rate / (1 + hops) as f64,
            "consume" => rates.cache_rate,
            // c2c/home (the arbitration) and mark (the probe) stay interactive.
            _ => return None,
        };
        Some(Delay::Exponential { rate })
    });
    let hidden =
        multival_imc::ops::relabel(
            &imc,
            |name| {
                if name == "mark" {
                    Some(name.to_owned())
                } else {
                    None
                }
            },
        );
    let conv = to_ctmdp_lifted(&hidden, &["mark"]).map_err(BenchmarkError::Conversion)?;
    let (min, max, instant_states) = probe_rate_bounds(&conv)?;
    Ok(FabricBounds {
        min_rounds_per_time: min,
        max_rounds_per_time: max,
        ctmdp_states: conv.mdp.num_states(),
        instant_states,
    })
}

/// Sweeps topologies × protocols × implementations for one payload size
/// (the E5 table).
///
/// # Errors
///
/// Propagates the first configuration failure.
pub fn latency_table(
    topologies: &[Topology],
    payload: usize,
    rates: &RateConfig,
) -> Result<Vec<LatencyRow>, BenchmarkError> {
    let mut rows = Vec::new();
    for &topology in topologies {
        for protocol in [Protocol::Msi, Protocol::Mesi] {
            for implementation in [MpiImpl::Eager, MpiImpl::Rendezvous] {
                let config = MpiConfig { topology, protocol, implementation, payload };
                rows.push(ping_pong_latency(&config, rates)?);
            }
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(topology: Topology, protocol: Protocol, implementation: MpiImpl) -> MpiConfig {
        MpiConfig { topology, protocol, implementation, payload: 1 }
    }

    #[test]
    fn latency_is_positive_and_finite() {
        let row = ping_pong_latency(
            &base(Topology::Crossbar(2), Protocol::Msi, MpiImpl::Eager),
            &RateConfig::default(),
        )
        .expect("analyzes");
        assert!(row.latency.is_finite() && row.latency > 0.0, "{}", row.latency);
    }

    #[test]
    fn farther_nodes_mean_higher_latency() {
        // Ring(8): peer is 4 hops away; crossbar: 1 hop.
        let rates = RateConfig::default();
        let near =
            ping_pong_latency(&base(Topology::Crossbar(8), Protocol::Msi, MpiImpl::Eager), &rates)
                .expect("analyzes");
        let far =
            ping_pong_latency(&base(Topology::Ring(8), Protocol::Msi, MpiImpl::Eager), &rates)
                .expect("analyzes");
        assert!(
            far.latency > near.latency,
            "ring {} must beat crossbar {}",
            far.latency,
            near.latency
        );
    }

    #[test]
    fn mesi_beats_msi() {
        let rates = RateConfig::default();
        let msi =
            ping_pong_latency(&base(Topology::Crossbar(2), Protocol::Msi, MpiImpl::Eager), &rates)
                .expect("analyzes");
        let mesi =
            ping_pong_latency(&base(Topology::Crossbar(2), Protocol::Mesi, MpiImpl::Eager), &rates)
                .expect("analyzes");
        assert!(
            mesi.latency < msi.latency,
            "MESI {} must beat MSI {} (silent upgrades)",
            mesi.latency,
            msi.latency
        );
    }

    #[test]
    fn eager_wins_small_messages() {
        let rates = RateConfig::default();
        let eager =
            ping_pong_latency(&base(Topology::Crossbar(2), Protocol::Mesi, MpiImpl::Eager), &rates)
                .expect("analyzes");
        let rdv = ping_pong_latency(
            &base(Topology::Crossbar(2), Protocol::Mesi, MpiImpl::Rendezvous),
            &rates,
        )
        .expect("analyzes");
        assert!(
            eager.latency < rdv.latency,
            "1-line payload: eager {} should beat rendezvous {}",
            eager.latency,
            rdv.latency
        );
    }

    #[test]
    fn bandwidth_is_positive_and_inverse_to_latency() {
        let rates = RateConfig::default();
        let fast = ping_pong_bandwidth(
            &base(Topology::Crossbar(2), Protocol::Mesi, MpiImpl::Eager),
            &rates,
        )
        .expect("analyzes");
        let slow = ping_pong_bandwidth(
            &base(Topology::Ring(8), Protocol::Msi, MpiImpl::Rendezvous),
            &rates,
        )
        .expect("analyzes");
        assert!(fast.rounds_per_time > 0.0);
        assert!(
            fast.rounds_per_time > slow.rounds_per_time,
            "faster config must move more rounds: {} vs {}",
            fast.rounds_per_time,
            slow.rounds_per_time
        );
        assert!((fast.lines_per_time - 2.0 * fast.rounds_per_time).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_exceeds_inverse_latency_via_pipelining() {
        // Steady-state round rate beats 1/latency for two reasons the model
        // captures: (a) the ranks pipeline — rank 0 prepares the next
        // message while rank 1 finishes consuming the reply; (b) caches are
        // warm, so cheap cache-to-cache FLUSHes replace the cold-start MEM
        // fetches that dominate the one-shot latency. It must still stay
        // within a small constant factor (the fabric serializes every
        // transaction).
        let rates = RateConfig::default();
        let cfg = base(Topology::Crossbar(2), Protocol::Mesi, MpiImpl::Eager);
        let lat = ping_pong_latency(&cfg, &rates).expect("latency");
        let bw = ping_pong_bandwidth(&cfg, &rates).expect("bandwidth");
        let inverse = 1.0 / lat.latency;
        assert!(
            bw.rounds_per_time > inverse,
            "pipelining + warm caches: {} vs 1/latency {}",
            bw.rounds_per_time,
            inverse
        );
        assert!(
            bw.rounds_per_time < inverse * 5.0,
            "bounded by fabric serialization: {} vs {}",
            bw.rounds_per_time,
            inverse
        );
    }

    #[test]
    fn bandwidth_bounds_validate_the_uniform_resolution() {
        // The cyclic benchmark's τ-nondeterminism turns out to be confluent:
        // every vanishing state resolves deterministically, so the interval
        // collapses to a point and the uniform policy the plain bandwidth
        // analysis relies on is *provably* harmless — the bounds flow turns
        // an assumption of the seed analysis into a theorem about the model.
        let rates = RateConfig::default();
        let cfg = base(Topology::Crossbar(2), Protocol::Msi, MpiImpl::Eager);
        let uniform = ping_pong_bandwidth(&cfg, &rates).expect("uniform");
        let b = ping_pong_bandwidth_bounds(&cfg, &rates).expect("bounds");
        assert!(
            (b.max_rounds_per_time - b.min_rounds_per_time).abs() < 1e-9,
            "confluent interleaving must give a point interval: [{}, {}]",
            b.min_rounds_per_time,
            b.max_rounds_per_time
        );
        assert!(
            (b.min_rounds_per_time - uniform.rounds_per_time).abs() < 1e-6,
            "the point must be the uniform answer: {} vs {}",
            b.min_rounds_per_time,
            uniform.rounds_per_time
        );
    }

    #[test]
    fn contended_fabric_bounds_have_a_genuine_spread() {
        let b = contended_fabric_bounds(&RateConfig::default(), 1).expect("bounds");
        assert!(b.instant_states > 0, "the arbitration must survive as instant states");
        // The endpoints are the two pure servicing policies: every round via
        // the cache-to-cache flush (fast) or via the home-memory fetch
        // (slow). Round time = issue + service + consume; at 1 hop the
        // memory rate halves.
        let rates = RateConfig::default();
        let fast =
            1.0 / (1.0 / rates.issue_rate + 1.0 / rates.transfer_rate + 1.0 / rates.cache_rate);
        let slow =
            1.0 / (1.0 / rates.issue_rate + 2.0 / rates.memory_rate + 1.0 / rates.cache_rate);
        assert!(
            (b.min_rounds_per_time - slow).abs() < 1e-6,
            "{} vs {}",
            b.min_rounds_per_time,
            slow
        );
        assert!(
            (b.max_rounds_per_time - fast).abs() < 1e-6,
            "{} vs {}",
            b.max_rounds_per_time,
            fast
        );
    }

    #[test]
    fn table_has_all_rows() {
        let rows =
            latency_table(&[Topology::Crossbar(2), Topology::Ring(4)], 1, &RateConfig::default())
                .expect("sweeps");
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| r.latency.is_finite()));
    }
}
