//! The FAME2 case study (Bull): a CC-NUMA multiprocessor for teraflops
//! mainframes — cache-coherency protocols, an MPI software layer, and MPI
//! benchmark applications (§2 of the paper).
//!
//! The paper reports (§4) that "Bull was able to predict the latency of an
//! MPI benchmark in different topologies, different software
//! implementations of the MPI primitives, and different cache coherency
//! protocols" — exactly the three axes reproduced here:
//!
//! * [`topology`] — ring / 2-D mesh / crossbar interconnects with
//!   hop-distance-dependent transfer latencies;
//! * [`coherence`] — snooping directory-style MSI and MESI protocols with
//!   exhaustive verification of the coherence invariants (single-writer /
//!   multiple-reader, no stale sharers);
//! * [`mpi`] — MPI send/receive in two software implementations (eager
//!   buffered vs. rendezvous zero-copy) expressed as memory-operation
//!   programs over the coherent memory;
//! * [`benchmark`] — the ping-pong latency benchmark evaluated through the
//!   IMC → CTMC flow (experiment E5).

pub mod benchmark;
pub mod coherence;
pub mod mpi;
pub mod network;
pub mod topology;
