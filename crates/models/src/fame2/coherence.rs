//! Directory-style cache-coherency protocols: MSI and MESI.
//!
//! The protocol is modeled at the transaction level with an explicit,
//! serializing coherence fabric ("bus"): a requesting node places a read
//! or write transaction; remote copies are flushed/downgraded/invalidated
//! one message at a time (each message is a labeled transition, so the
//! performance model can attach a topology-dependent delay to it); finally
//! the grant installs the new cache state.
//!
//! Functional verification (part of experiment E1/E3-style checks):
//! exhaustive exploration of N free agents on one cache line establishes
//! the **SWMR invariant** (at most one writable copy, never alongside
//! sharers) and deadlock freedom, for both protocols.

use crate::common::{explore_model, ExploredModel, ExplosionError, Model};

/// Which protocol variant the caches run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Modified / Shared / Invalid.
    Msi,
    /// Modified / Exclusive / Shared / Invalid (silent upgrade from E).
    Mesi,
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Protocol::Msi => write!(f, "MSI"),
            Protocol::Mesi => write!(f, "MESI"),
        }
    }
}

/// Per-node cache state of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CacheState {
    /// Invalid.
    I,
    /// Shared (clean, read-only).
    S,
    /// Exclusive (clean, sole copy — MESI only).
    E,
    /// Modified (dirty, sole copy).
    M,
}

impl CacheState {
    /// Can the node read without a bus transaction?
    pub fn readable(self) -> bool {
        self != CacheState::I
    }

    /// Can the node write without a bus transaction?
    pub fn writable(self, protocol: Protocol) -> bool {
        match self {
            CacheState::M => true,
            CacheState::E => protocol == Protocol::Mesi,
            _ => false,
        }
    }
}

/// Kind of bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// Read miss.
    Read,
    /// Write miss or upgrade.
    Write,
}

/// Phase of the in-flight transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Remote copies are being flushed/downgraded/invalidated.
    Snoop,
    /// Data is ready; the grant is pending.
    Grant,
}

/// An in-flight bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Txn {
    /// Requesting node.
    pub node: u8,
    /// Read or write.
    pub kind: TxnKind,
    /// Progress.
    pub phase: Phase,
}

/// State of the single-line free-agent verification model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CohState {
    /// Cache state per node.
    pub caches: Vec<CacheState>,
    /// The serializing fabric: at most one transaction in flight.
    pub bus: Option<Txn>,
}

/// The verification model: N free agents nondeterministically reading,
/// writing, and evicting one cache line.
#[derive(Debug, Clone, Copy)]
pub struct CoherenceModel {
    /// Number of caching agents.
    pub nodes: usize,
    /// Protocol variant.
    pub protocol: Protocol,
}

impl CoherenceModel {
    /// Computes the successors of a coherence state with identity node ids
    /// and no label suffix (the free-agent verification model).
    pub fn protocol_successors(
        &self,
        caches: &[CacheState],
        bus: &Option<Txn>,
        issue_allowed: impl Fn(usize, TxnKind) -> bool,
        out: &mut Vec<(String, CohState)>,
    ) {
        let ids: Vec<usize> = (0..self.nodes).collect();
        self.protocol_successors_mapped(caches, bus, issue_allowed, &ids, "", out);
    }

    /// Computes the successors of a coherence state. Exposed so the MPI
    /// model can reuse the exact same protocol step function per line:
    /// `node_ids` maps local cache indices to globally displayed node ids
    /// (for topology-dependent rates) and `suffix` is appended to every
    /// label (the line id).
    pub fn protocol_successors_mapped(
        &self,
        caches: &[CacheState],
        bus: &Option<Txn>,
        issue_allowed: impl Fn(usize, TxnKind) -> bool,
        node_ids: &[usize],
        suffix: &str,
        out: &mut Vec<(String, CohState)>,
    ) {
        let id = |n: usize| node_ids[n];
        use CacheState::*;
        match bus {
            None => {
                for n in 0..self.nodes {
                    let cs = caches[n];
                    // Issue a read miss.
                    if cs == I && issue_allowed(n, TxnKind::Read) {
                        out.push((
                            format!("RD !{}{suffix}", id(n)),
                            CohState {
                                caches: caches.to_vec(),
                                bus: Some(Txn {
                                    node: n as u8,
                                    kind: TxnKind::Read,
                                    phase: Phase::Snoop,
                                }),
                            },
                        ));
                    }
                    // Issue a write miss / upgrade.
                    if (cs == I || cs == S || (cs == E && self.protocol == Protocol::Msi))
                        && issue_allowed(n, TxnKind::Write)
                    {
                        out.push((
                            format!("WR !{}{suffix}", id(n)),
                            CohState {
                                caches: caches.to_vec(),
                                bus: Some(Txn {
                                    node: n as u8,
                                    kind: TxnKind::Write,
                                    phase: Phase::Snoop,
                                }),
                            },
                        ));
                    }
                    // MESI silent upgrade: E → M without a transaction.
                    if cs == E
                        && self.protocol == Protocol::Mesi
                        && issue_allowed(n, TxnKind::Write)
                    {
                        let mut c2 = caches.to_vec();
                        c2[n] = M;
                        out.push((
                            format!("WR_HIT !{}{suffix}", id(n)),
                            CohState { caches: c2, bus: None },
                        ));
                    }
                    // Write hit in M.
                    if cs == M && issue_allowed(n, TxnKind::Write) {
                        out.push((
                            format!("WR_HIT !{}{suffix}", id(n)),
                            CohState { caches: caches.to_vec(), bus: None },
                        ));
                    }
                }
            }
            Some(txn) => {
                let n = txn.node as usize;
                match txn.phase {
                    Phase::Snoop => {
                        // A dirty owner flushes first (cache-to-cache).
                        if let Some(owner) = (0..self.nodes).find(|&m| m != n && caches[m] == M) {
                            let mut c2 = caches.to_vec();
                            c2[owner] = match txn.kind {
                                TxnKind::Read => S,
                                TxnKind::Write => I,
                            };
                            out.push((
                                format!("FLUSH !{} !{}{suffix}", id(owner), id(n)),
                                CohState {
                                    caches: c2,
                                    bus: Some(Txn { phase: Phase::Grant, ..*txn }),
                                },
                            ));
                            return;
                        }
                        // A clean exclusive owner downgrades (read) or is
                        // invalidated (write) — data comes from it.
                        if let Some(owner) = (0..self.nodes).find(|&m| m != n && caches[m] == E) {
                            let mut c2 = caches.to_vec();
                            c2[owner] = match txn.kind {
                                TxnKind::Read => S,
                                TxnKind::Write => I,
                            };
                            out.push((
                                format!("DOWNGRADE !{} !{}{suffix}", id(owner), id(n)),
                                CohState {
                                    caches: c2,
                                    bus: Some(Txn { phase: Phase::Grant, ..*txn }),
                                },
                            ));
                            return;
                        }
                        // Writes invalidate sharers one message at a time.
                        if txn.kind == TxnKind::Write {
                            if let Some(sharer) =
                                (0..self.nodes).find(|&m| m != n && caches[m] == S)
                            {
                                let mut c2 = caches.to_vec();
                                c2[sharer] = I;
                                out.push((
                                    format!("INV !{} !{}{suffix}", id(n), id(sharer)),
                                    CohState { caches: c2, bus: Some(*txn) },
                                ));
                                return;
                            }
                        }
                        // No remote copies left: fetch data. An upgrading
                        // writer (already S) has the data — skip memory.
                        if txn.kind == TxnKind::Write && caches[n] == S {
                            out.push((
                                format!("UPG !{}{suffix}", id(n)),
                                CohState {
                                    caches: caches.to_vec(),
                                    bus: Some(Txn { phase: Phase::Grant, ..*txn }),
                                },
                            ));
                        } else {
                            out.push((
                                format!("MEM !{}{suffix}", id(n)),
                                CohState {
                                    caches: caches.to_vec(),
                                    bus: Some(Txn { phase: Phase::Grant, ..*txn }),
                                },
                            ));
                        }
                    }
                    Phase::Grant => {
                        let mut c2 = caches.to_vec();
                        c2[n] = match txn.kind {
                            TxnKind::Write => M,
                            TxnKind::Read => {
                                let alone = (0..self.nodes).all(|m| m == n || caches[m] == I);
                                if alone && self.protocol == Protocol::Mesi {
                                    E
                                } else {
                                    S
                                }
                            }
                        };
                        out.push((
                            format!("GRANT !{}{suffix}", id(n)),
                            CohState { caches: c2, bus: None },
                        ));
                    }
                }
            }
        }
    }
}

impl Model for CoherenceModel {
    type State = CohState;

    fn initial(&self) -> CohState {
        CohState { caches: vec![CacheState::I; self.nodes], bus: None }
    }

    fn successors(&self, s: &CohState) -> Vec<(String, CohState)> {
        let mut out = Vec::new();
        self.protocol_successors(&s.caches, &s.bus, |_, _| true, &mut out);
        // Free agents also evict: S/E silently, M via writeback.
        if s.bus.is_none() {
            for n in 0..self.nodes {
                match s.caches[n] {
                    CacheState::S | CacheState::E => {
                        let mut c2 = s.caches.clone();
                        c2[n] = CacheState::I;
                        out.push((format!("EVICT !{n}"), CohState { caches: c2, bus: None }));
                    }
                    CacheState::M => {
                        let mut c2 = s.caches.clone();
                        c2[n] = CacheState::I;
                        out.push((format!("WB !{n}"), CohState { caches: c2, bus: None }));
                    }
                    CacheState::I => {}
                }
            }
        }
        out
    }
}

/// Checks the SWMR invariant on one state: at most one M/E copy, and a
/// dirty/exclusive copy never coexists with any other valid copy.
pub fn swmr_holds(caches: &[CacheState]) -> bool {
    let owners = caches.iter().filter(|c| matches!(c, CacheState::M | CacheState::E)).count();
    if owners > 1 {
        return false;
    }
    if owners == 1 {
        let valid = caches.iter().filter(|c| **c != CacheState::I).count();
        return valid == 1;
    }
    true
}

/// The result of exhaustive coherence verification.
#[derive(Debug, Clone)]
pub struct CoherenceVerification {
    /// Protocol checked.
    pub protocol: Protocol,
    /// Agents.
    pub nodes: usize,
    /// States explored.
    pub states: usize,
    /// Transitions explored.
    pub transitions: usize,
    /// State ids violating SWMR (must be empty).
    pub swmr_violations: usize,
    /// Deadlock witness, if any (must be `None`).
    pub deadlock: Option<Vec<String>>,
}

/// Exhaustively verifies the protocol with `nodes` free agents.
///
/// # Errors
///
/// Returns [`ExplosionError`] if the cap is exceeded.
pub fn verify_coherence(
    nodes: usize,
    protocol: Protocol,
    max_states: usize,
) -> Result<CoherenceVerification, ExplosionError> {
    let model = CoherenceModel { nodes, protocol };
    let explored: ExploredModel<CohState> = explore_model(&model, max_states)?;
    let violations = explored.states_where(|s| !swmr_holds(&s.caches)).len();
    let deadlock = multival_lts::analysis::deadlock_witness(&explored.lts);
    Ok(CoherenceVerification {
        protocol,
        nodes,
        states: explored.lts.num_states(),
        transitions: explored.lts.num_transitions(),
        swmr_violations: violations,
        deadlock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msi_swmr_holds() {
        for nodes in [2, 3, 4] {
            let v = verify_coherence(nodes, Protocol::Msi, 1_000_000).expect("explores");
            assert_eq!(v.swmr_violations, 0, "MSI N={nodes}");
            assert!(v.deadlock.is_none(), "MSI N={nodes} deadlock: {:?}", v.deadlock);
        }
    }

    #[test]
    fn mesi_swmr_holds() {
        for nodes in [2, 3, 4] {
            let v = verify_coherence(nodes, Protocol::Mesi, 1_000_000).expect("explores");
            assert_eq!(v.swmr_violations, 0, "MESI N={nodes}");
            assert!(v.deadlock.is_none());
        }
    }

    #[test]
    fn mesi_reaches_exclusive_state() {
        let model = CoherenceModel { nodes: 2, protocol: Protocol::Mesi };
        let e = explore_model(&model, 100_000).expect("explores");
        let with_e = e.states_where(|s| s.caches.contains(&CacheState::E));
        assert!(!with_e.is_empty(), "a lone reader must be granted E under MESI");
    }

    #[test]
    fn msi_never_grants_exclusive() {
        let model = CoherenceModel { nodes: 3, protocol: Protocol::Msi };
        let e = explore_model(&model, 100_000).expect("explores");
        let with_e = e.states_where(|s| s.caches.contains(&CacheState::E));
        assert!(with_e.is_empty(), "MSI has no E state");
    }

    #[test]
    fn mesi_silent_upgrade_exists() {
        // Under MESI, a WR_HIT from an E state must occur somewhere.
        let model = CoherenceModel { nodes: 2, protocol: Protocol::Mesi };
        let e = explore_model(&model, 100_000).expect("explores");
        let hit = multival_lts::analysis::find_action(&e.lts, |l| l.starts_with("WR_HIT"));
        assert!(hit.is_some());
    }

    #[test]
    fn write_invalidates_all_sharers() {
        // In every reachable state where some node is M, no other node is
        // readable (stronger per-state form of SWMR for M).
        let model = CoherenceModel { nodes: 3, protocol: Protocol::Msi };
        let e = explore_model(&model, 1_000_000).expect("explores");
        for s in &e.states {
            if let Some(m) = s.caches.iter().position(|&c| c == CacheState::M) {
                for (n, &c) in s.caches.iter().enumerate() {
                    if n != m {
                        assert_eq!(c, CacheState::I, "stale copy next to M in {s:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn protocols_differ_in_state_count() {
        let msi = verify_coherence(3, Protocol::Msi, 1_000_000).expect("explores");
        let mesi = verify_coherence(3, Protocol::Mesi, 1_000_000).expect("explores");
        assert!(mesi.states > msi.states, "MESI adds E-states: {} vs {}", mesi.states, msi.states);
    }
}
