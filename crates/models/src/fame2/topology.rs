//! Interconnect topologies of the FAME2 CC-NUMA machine.
//!
//! The topology determines the hop distance between nodes, which scales
//! the rates of remote memory operations (cache-to-cache transfers,
//! invalidations, memory fetches) in the performance models.

use std::fmt;

/// An interconnect topology over a fixed set of nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// A unidirectional-addressed ring of `n` nodes (distance is the
    /// shorter way around).
    Ring(usize),
    /// A `w × h` 2-D mesh (Manhattan distance).
    Mesh(usize, usize),
    /// A full crossbar over `n` nodes (every pair one hop apart).
    Crossbar(usize),
    /// A `w × h` 2-D torus (mesh with wraparound links).
    Torus(usize, usize),
}

impl Topology {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        match *self {
            Topology::Ring(n) | Topology::Crossbar(n) => n,
            Topology::Mesh(w, h) | Topology::Torus(w, h) => w * h,
        }
    }

    /// Hop distance between nodes `a` and `b` (0 when equal).
    ///
    /// # Panics
    ///
    /// Panics if a node id is out of range.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let n = self.nodes();
        assert!(a < n && b < n, "node id out of range");
        if a == b {
            return 0;
        }
        match *self {
            Topology::Ring(n) => {
                let d = a.abs_diff(b);
                d.min(n - d)
            }
            Topology::Mesh(w, _) => {
                let (ax, ay) = (a % w, a / w);
                let (bx, by) = (b % w, b / w);
                ax.abs_diff(bx) + ay.abs_diff(by)
            }
            Topology::Torus(w, h) => {
                let (ax, ay) = (a % w, a / w);
                let (bx, by) = (b % w, b / w);
                let dx = ax.abs_diff(bx);
                let dy = ay.abs_diff(by);
                dx.min(w - dx) + dy.min(h - dy)
            }
            Topology::Crossbar(_) => 1,
        }
    }

    /// The node farthest from `a` (ties broken by smallest id) — used to
    /// place the ping-pong peer.
    pub fn farthest_from(&self, a: usize) -> usize {
        (0..self.nodes()).max_by_key(|&b| (self.hops(a, b), usize::MAX - b)).unwrap_or(a)
    }

    /// Network diameter (maximum hop distance).
    pub fn diameter(&self) -> usize {
        let n = self.nodes();
        (0..n).flat_map(|a| (0..n).map(move |b| self.hops(a, b))).max().unwrap_or(0)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Topology::Ring(n) => write!(f, "ring({n})"),
            Topology::Mesh(w, h) => write!(f, "mesh({w}x{h})"),
            Topology::Torus(w, h) => write!(f, "torus({w}x{h})"),
            Topology::Crossbar(n) => write!(f, "crossbar({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_distance_wraps() {
        let t = Topology::Ring(6);
        assert_eq!(t.hops(0, 3), 3);
        assert_eq!(t.hops(0, 5), 1);
        assert_eq!(t.hops(2, 2), 0);
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn mesh_distance_is_manhattan() {
        let t = Topology::Mesh(3, 2);
        assert_eq!(t.nodes(), 6);
        // Node 0 = (0,0), node 5 = (2,1).
        assert_eq!(t.hops(0, 5), 3);
        assert_eq!(t.hops(1, 4), 1);
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn crossbar_is_uniform() {
        let t = Topology::Crossbar(8);
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(t.hops(a, b), usize::from(a != b));
            }
        }
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn torus_wraps_both_dimensions() {
        let t = Topology::Torus(4, 4);
        // Node 0 = (0,0), node 15 = (3,3): wrapped distance 1+1.
        assert_eq!(t.hops(0, 15), 2);
        // Same-row wrap: (0,0) to (3,0) is 1 hop around.
        assert_eq!(t.hops(0, 3), 1);
        // Torus diameter is half the mesh diameter (per dimension).
        assert!(t.diameter() < Topology::Mesh(4, 4).diameter());
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn farthest_node() {
        assert_eq!(Topology::Ring(6).farthest_from(0), 3);
        assert_eq!(Topology::Mesh(2, 2).farthest_from(0), 3);
        assert_eq!(Topology::Crossbar(4).farthest_from(0), 1);
    }

    #[test]
    #[should_panic(expected = "node id out of range")]
    fn out_of_range_rejected() {
        Topology::Ring(4).hops(0, 4);
    }
}
