//! The FAME2 MPI ping-pong benchmark as a component network for the smart
//! reduction pipeline.
//!
//! The paper's FAME2 study models the MPI software layer on top of the
//! CC-NUMA interconnect; the eager implementation copies a message through
//! a chain of buffers (send buffer → interconnect hops → receive buffer)
//! while a window of outstanding sends bounds the in-flight traffic. This
//! module expresses exactly that structure in mini-LOTOS:
//!
//! * `Window` — the sender-side credit counter (up to `window` messages
//!   in flight before an acknowledgement must return);
//! * a forward chain of one-place buffers `snd → f1 → f2 → dlv` (the
//!   eager copy through the interconnect);
//! * `Echo` — the receiver: each delivered message immediately triggers
//!   the return message;
//! * a return chain `ret → r1 → ack` back to the sender.
//!
//! All interior hops are hidden; only `snd` and `ack` (the MPI-level
//! events whose latency E5 measures) stay visible. The monolithic product
//! grows with the product of all buffer occupancies, while the pipeline's
//! per-stage minimization collapses each partially-assembled chain to a
//! counting queue — the textbook compositional win, on the benchmark the
//! paper actually ran.

use multival_lts::pipeline::Network;
use multival_pa::{extract_network, parse_spec, ExploreOptions, ParseError, Spec};

/// Generates the mini-LOTOS source of the ping-pong network.
///
/// `window` is the eager-send window (1..=4): how many messages the
/// sender may have in flight before blocking on an acknowledgement.
pub fn ping_pong_source(window: usize) -> String {
    assert!((1..=4).contains(&window), "window must be in 1..=4");
    format!(
        "
        -- Sender-side window: up to {window} outstanding eager sends.
        process Window[snd, ack](w: int 0..4, k: int 1..4) :=
            [w < k] -> snd; Window[snd, ack](w + 1, k)
         [] [w > 0] -> ack; Window[snd, ack](w - 1, k)
        endproc

        -- One-place copy buffer (an interconnect hop or an MPI buffer).
        process Hop[inp, outp] := inp; outp; Hop[inp, outp] endproc

        -- Receiver: every delivery triggers the return message.
        process Echo[dlv, ret] := dlv; ret; Echo[dlv, ret] endproc

        behaviour
          hide f1, f2, dlv, ret, r1 in
            ( Window[snd, ack](0, {window})
              |[snd, ack]|
              ( ( Hop[snd, f1] |[f1]| ( Hop[f1, f2] |[f2]| Hop[f2, dlv] ) )
                |[dlv]|
                ( Echo[dlv, ret] |[ret]| ( Hop[ret, r1] |[r1]| Hop[r1, ack] ) ) ) )
        "
    )
}

/// Parses the ping-pong source.
///
/// # Errors
///
/// Propagates parser errors (the generator is tested).
pub fn ping_pong_spec(window: usize) -> Result<Spec, ParseError> {
    parse_spec(&ping_pong_source(window))
}

/// Extracts the ping-pong benchmark as a pipeline [`Network`].
///
/// # Panics
///
/// Panics only if the embedded source stops parsing or extracting
/// (covered by tests).
pub fn ping_pong_network(window: usize) -> Network {
    let spec = ping_pong_spec(window).expect("embedded ping-pong source parses");
    extract_network(&spec, &ExploreOptions::default())
        .unwrap_or_else(|e| panic!("embedded ping-pong source must extract: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use multival_lts::io::write_aut;
    use multival_lts::minimize::Equivalence;
    use multival_lts::pipeline::{monolithic, run_pipeline, Order, PipelineOptions};
    use multival_lts::Workers;

    #[test]
    fn network_extracts_with_the_expected_shape() {
        let net = ping_pong_network(2);
        assert_eq!(net.components().len(), 7);
        let gates: Vec<&str> = net.sync_gates().iter().map(String::as_str).collect();
        assert_eq!(gates, ["ack", "dlv", "f1", "f2", "r1", "ret", "snd"]);
        let hidden: Vec<&str> = net.hidden().iter().map(String::as_str).collect();
        assert_eq!(hidden, ["dlv", "f1", "f2", "r1", "ret"]);
    }

    #[test]
    fn pipeline_beats_the_monolithic_product_and_agrees() {
        let net = ping_pong_network(2);
        let mono = monolithic(&net, Equivalence::Branching, Workers::default());
        let run = run_pipeline(&net, &PipelineOptions::default());
        assert!(run.complete());
        assert_eq!(write_aut(&run.lts), write_aut(&mono.lts));
        assert!(
            run.peak_states() < mono.product_states,
            "pipeline peak {} must undercut the monolithic product {}",
            run.peak_states(),
            mono.product_states
        );
        // The reduced benchmark is the window counter on snd/ack: with a
        // window of 2 and 5 interior buffers, a 3-state counting queue...
        // except in-flight messages also occupy the hidden hops; the
        // observable behaviour stays a small counting structure.
        assert!(run.lts.num_states() <= 8, "reduced size: {}", run.lts.num_states());
    }

    #[test]
    fn order_seeds_agree_on_the_canonical_result() {
        let net = ping_pong_network(1);
        let reference = run_pipeline(&net, &PipelineOptions::default());
        for seed in [1u64, 2, 3] {
            let run = run_pipeline(
                &net,
                &PipelineOptions { order: Order::Seeded(seed), ..PipelineOptions::default() },
            );
            assert_eq!(write_aut(&run.lts), write_aut(&reference.lts), "seed {seed}");
        }
    }
}
