//! # multival-models — the three industrial case studies
//!
//! Synthesized reproductions of the architectures studied in the Multival
//! project (DATE'08), built on the `multival-pa`/`lts`/`mcl`/`imc`/`ctmc`
//! stack:
//!
//! * [`xstream`] — STMicroelectronics' dataflow streaming fabric: credit-
//!   based flow-control queues; functional verification (including the two
//!   seeded "functional issues") and the latency/throughput/occupancy
//!   performance model;
//! * [`faust`] — CEA/Leti's NoC platform: the asynchronous XY router and
//!   the isochronous-fork study;
//! * [`fame2`] — Bull's CC-NUMA machine: MSI/MESI cache coherency over
//!   ring/mesh/crossbar interconnects, the MPI software layer (eager and
//!   rendezvous), and the ping-pong latency benchmark;
//! * [`common`] — a generic explicit-state explorer for programmatic
//!   models;
//! * [`rings`] — a parameterizable counter-ring system whose product
//!   explodes geometrically while its single deadlock is one step deep,
//!   used to demonstrate on-the-fly vs. eager exploration (E1);
//! * [`xmas`] — an xMAS fabric workbench: a typed primitive algebra with
//!   a compiler onto the process-algebra layer, a seeded topology
//!   generator, and a minimizing shrinker, turning the fixed case studies
//!   into an unbounded differential-testing workload family.
//!
//! The models are *synthesized* — the industrial RTL is proprietary — but
//! preserve the axes of variation the paper's results depend on (see
//! DESIGN.md §3).

pub mod common;
pub mod fame2;
pub mod faust;
pub mod rings;
pub mod xmas;
pub mod xstream;
