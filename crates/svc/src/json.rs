//! Minimal JSON codec for the wire layer, in the spirit of `compat/`: no
//! external dependencies, deterministic output.
//!
//! Two properties matter for the service:
//!
//! * **Determinism** — objects keep insertion order, floats print with
//!   Rust's shortest-round-trip formatting, and there is exactly one byte
//!   encoding per value, so identical results serialize to identical bodies.
//! * **Totality** — the parser never panics, enforces a nesting-depth cap,
//!   and rejects non-finite numbers (JSON has no NaN/Infinity, and a cache
//!   key must never contain one).

use std::fmt;
use std::fmt::Write as _;

/// A JSON value. Object members keep their insertion order so that
/// serialization is a pure function of construction order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

/// Error produced when parsing JSON fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input position.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Deepest allowed nesting; prevents stack exhaustion on adversarial input.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinity — the service never produces those, and
    /// they have no JSON encoding.
    #[must_use]
    pub fn num(x: f64) -> Json {
        assert!(x.is_finite(), "JSON cannot encode {x}");
        Json::Num(x)
    }

    /// Object member lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, when it is one.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, when it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The value with all object keys sorted recursively: the canonical
    /// form hashed for content addressing, so member order in a request
    /// never changes its cache key.
    #[must_use]
    pub fn canonicalized(&self) -> Json {
        match self {
            Json::Arr(items) => Json::Arr(items.iter().map(Json::canonicalized).collect()),
            Json::Obj(members) => {
                let mut sorted: Vec<(String, Json)> =
                    members.iter().map(|(k, v)| (k.clone(), v.canonicalized())).collect();
                sorted.sort_by(|a, b| a.0.cmp(&b.0));
                Json::Obj(sorted)
            }
            other => other.clone(),
        }
    }
}

/// `Display` is the serializer: `value.to_string()` yields the unique
/// compact encoding.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Writes a finite number: integers without a fraction, everything else via
/// Rust's shortest-round-trip `{}` formatting (deterministic across
/// platforms and thread counts).
fn write_num(out: &mut String, x: f64) {
    debug_assert!(x.is_finite(), "JSON cannot encode {x}");
    if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input, nesting deeper than 64 levels,
/// or numbers that overflow to infinity.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { pos: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value(depth + 1)?;
                    members.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let x: f64 = text.parse().map_err(|_| self.err(format!("invalid number `{text}`")))?;
        if !x.is_finite() {
            // e.g. 1e999: the grammar is fine but f64 overflows; NaN and
            // Infinity literals never reach here (rejected by the grammar).
            return Err(self.err(format!("number `{text}` is out of range")));
        }
        Ok(Json::Num(x))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always well-formed).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("5", Json::Num(5.0)),
            ("-3.25", Json::Num(-3.25)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(text).expect(text), v);
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn roundtrips_structures() {
        let v = Json::Obj(vec![
            ("b".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("a".into(), Json::Str("x\"y\\z\n".into())),
        ]);
        let text = v.to_string();
        assert_eq!(text, "{\"b\":[1,null],\"a\":\"x\\\"y\\\\z\\n\"}");
        assert_eq!(parse(&text).expect("parses"), v);
    }

    #[test]
    fn canonical_sorts_keys_recursively() {
        let v = parse("{\"b\":1,\"a\":{\"d\":2,\"c\":3}}").expect("parses");
        assert_eq!(v.canonicalized().to_string(), "{\"a\":{\"c\":3,\"d\":2},\"b\":1}");
    }

    #[test]
    fn rejects_nan_and_infinity() {
        assert!(parse("NaN").is_err());
        assert!(parse("Infinity").is_err());
        assert!(parse("-Infinity").is_err());
        assert!(parse("1e999").is_err(), "overflow to inf must be rejected");
    }

    #[test]
    fn rejects_malformed() {
        for bad in
            ["", "{", "[1,", "{\"a\"}", "\"\\x\"", "\"unterminated", "01x", "{}extra", "\u{7}"]
        {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse("\"\\u0041\"").expect("parses"), Json::Str("A".into()));
        assert_eq!(parse("\"\\ud83d\\ude00\"").expect("parses"), Json::Str("😀".into()));
        assert!(parse("\"\\ud83d\"").is_err(), "unpaired surrogate");
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::num(42.0).to_string(), "42");
        assert_eq!(Json::num(0.5).to_string(), "0.5");
        assert_eq!(Json::num(-0.0).to_string(), "0");
    }

    #[test]
    #[should_panic(expected = "cannot encode")]
    fn num_constructor_rejects_nan() {
        let _ = Json::num(f64::NAN);
    }
}
