//! Service observability: lock-free counters plus a fixed-bucket latency
//! histogram with percentile extraction — everything `/v1/metrics` reports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Fixed logarithmic bucket upper bounds, in microseconds. The last bucket
/// is open-ended.
const BOUNDS_US: [u64; 16] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000, 30_000_000,
];

/// A fixed-bucket latency histogram. Recording is one atomic increment;
/// percentiles walk the cumulative counts and report the bucket's upper
/// bound (a conservative estimate, stable across runs).
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; BOUNDS_US.len() + 1],
    total: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let idx = BOUNDS_US.iter().position(|&b| us <= b).unwrap_or(BOUNDS_US.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed).checked_div(self.count()).unwrap_or(0)
    }

    /// The upper bound (µs) of the bucket containing the `p`-th percentile
    /// (`p` in `[0, 100]`); 0 when empty. The open-ended last bucket
    /// reports its lower bound.
    #[must_use]
    pub fn percentile_us(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return BOUNDS_US.get(i).copied().unwrap_or(BOUNDS_US[BOUNDS_US.len() - 1]);
            }
        }
        BOUNDS_US[BOUNDS_US.len() - 1]
    }
}

/// Job-lifecycle counters, shared between the engine and the HTTP layer.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs accepted (queued + cache-served + coalesced + recovered).
    pub accepted: AtomicU64,
    /// Accepted jobs that actually entered the evaluation queue.
    pub queued: AtomicU64,
    /// Accepted jobs served straight from the result cache (born done).
    pub cache_served: AtomicU64,
    /// Accepted jobs coalesced behind an identical in-flight evaluation.
    pub coalesced: AtomicU64,
    /// Jobs replayed from the journal on restart.
    pub recovered: AtomicU64,
    /// Evaluations actually executed by the worker pool.
    pub evaluated: AtomicU64,
    /// Jobs finished successfully (including cache-served ones).
    pub done: AtomicU64,
    /// Jobs that failed.
    pub failed: AtomicU64,
    /// Submissions rejected because the bounded queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Submissions rejected because the engine was shutting down.
    pub rejected_shutdown: AtomicU64,
    /// Jobs cancelled while still queued.
    pub cancelled: AtomicU64,
    /// End-to-end latency (submit → finished), cache hits included.
    pub latency: Histogram,
}

impl Metrics {
    /// Relaxed load of one counter.
    pub(crate) fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Relaxed increment of one counter.
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Total rejections across all causes (the pre-split `rejected` view).
    #[must_use]
    pub fn rejected(&self) -> u64 {
        Metrics::get(&self.rejected_queue_full) + Metrics::get(&self.rejected_shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_walk_buckets() {
        let h = Histogram::default();
        assert_eq!(h.percentile_us(99.0), 0);
        for _ in 0..99 {
            h.record(Duration::from_micros(80)); // bucket ≤ 100
        }
        h.record(Duration::from_millis(40)); // bucket ≤ 50_000
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile_us(50.0), 100);
        assert_eq!(h.percentile_us(99.0), 100);
        assert_eq!(h.percentile_us(100.0), 50_000);
        assert!(h.mean_us() >= 80);
    }

    #[test]
    fn histogram_clamps_huge_samples() {
        let h = Histogram::default();
        h.record(Duration::from_secs(3600));
        assert_eq!(h.percentile_us(100.0), BOUNDS_US[BOUNDS_US.len() - 1]);
    }

    #[test]
    fn counters_bump() {
        let m = Metrics::default();
        Metrics::bump(&m.accepted);
        Metrics::bump(&m.accepted);
        assert_eq!(Metrics::get(&m.accepted), 2);
        assert_eq!(Metrics::get(&m.failed), 0);
    }

    #[test]
    fn rejected_sums_both_causes() {
        let m = Metrics::default();
        Metrics::bump(&m.rejected_queue_full);
        Metrics::bump(&m.rejected_queue_full);
        Metrics::bump(&m.rejected_shutdown);
        assert_eq!(m.rejected(), 3);
    }
}
