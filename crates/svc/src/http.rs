//! A deliberately small HTTP/1.1 codec: just enough to parse one request
//! from a buffered stream and write one `Connection: close` JSON response.
//!
//! The server speaks one-request-per-connection (simple, robust under
//! concurrent load tests) and enforces hard caps on header and body sizes
//! so a misbehaving client cannot balloon memory.

use std::io::{self, BufRead, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes (uploaded `.aut` texts fit).
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/v1/jobs/7`.
    pub path: String,
    /// Decoded body (`Content-Length` framing only).
    pub body: String,
}

/// Why a request could not be parsed; carries the status code to answer
/// with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status to send back.
    pub status: u16,
    /// Human-readable cause.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError { status, message: message.into() }
    }
}

fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(HttpError::new(431, "header line too long"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::new(400, format!("read failed: {e}"))),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::new(400, "header is not UTF-8"))
}

/// Reads and parses one request from `reader`.
///
/// # Errors
///
/// Returns an [`HttpError`] carrying the proper status code (400 for
/// malformed framing, 413 for oversized bodies, 431 for oversized
/// headers).
pub fn read_request(reader: &mut impl BufRead) -> Result<HttpRequest, HttpError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(HttpError::new(400, format!("malformed request line `{request_line}`")));
    };
    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let line = read_line(reader)?;
        if line.is_empty() {
            let mut body_bytes = vec![0u8; content_length];
            reader
                .read_exact(&mut body_bytes)
                .map_err(|e| HttpError::new(400, format!("body truncated: {e}")))?;
            let body = String::from_utf8(body_bytes)
                .map_err(|_| HttpError::new(400, "body is not UTF-8"))?;
            return Ok(HttpRequest { method: method.to_owned(), path: path.to_owned(), body });
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| HttpError::new(400, "bad Content-Length"))?;
                if content_length > MAX_BODY {
                    return Err(HttpError::new(413, "body too large"));
                }
            }
        }
    }
    Err(HttpError::new(431, "too many headers"))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one JSON response and flushes. Always `Connection: close`.
///
/// # Errors
///
/// Propagates I/O failures from the underlying stream.
pub fn write_response(writer: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<HttpRequest, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert_eq!(req.body, "");
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req = parse(
            "POST /v1/jobs HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 13\r\n\r\n{\"kind\":\"x\"}Z",
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, "{\"kind\":\"x\"}Z");
    }

    #[test]
    fn tolerates_bare_lf_line_endings() {
        let req = parse("GET /v1/metrics HTTP/1.1\nHost: x\n\n").expect("parses");
        assert_eq!(req.path, "/v1/metrics");
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        assert_eq!(parse("GARBAGE\r\n\r\n").expect_err("malformed").status, 400);
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n").expect_err("huge").status,
            413
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").expect_err("bad").status,
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").expect_err("trunc").status,
            400
        );
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_LINE + 1));
        assert_eq!(parse(&long).expect_err("long line").status, 431);
    }

    #[test]
    fn response_has_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}").expect("writes");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
