//! A deliberately small HTTP/1.1 codec built around an *incremental*
//! parser state machine: bytes arrive in arbitrary fragments (the event
//! loop reads whatever the socket has), and [`Parser::feed`] consumes them
//! until one full request materializes.
//!
//! The server speaks one-request-per-connection (simple, robust under
//! concurrent load tests) and enforces hard caps on header and body sizes
//! so a misbehaving client cannot balloon memory: oversized lines answer
//! `431`, oversized bodies `413`, and a connection that stalls past its
//! read deadline (a slowloris) gets `408` from the event loop instead of
//! holding a slot forever.

use std::io::{self, BufRead, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes (uploaded `.aut` texts fit).
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/v1/jobs/7`.
    pub path: String,
    /// Decoded body (`Content-Length` framing only).
    pub body: String,
}

/// Why a request could not be parsed; carries the status code to answer
/// with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status to send back.
    pub status: u16,
    /// Human-readable cause.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError { status, message: message.into() }
    }
}

/// One response: status, extra headers (beyond the always-present
/// `Content-Type`/`Content-Length`/`Connection: close`), and a JSON body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// Extra response headers, e.g. `Retry-After` on `429`.
    pub headers: Vec<(String, String)>,
    /// JSON body.
    pub body: String,
}

impl Reply {
    /// A headerless reply.
    #[must_use]
    pub fn new(status: u16, body: impl Into<String>) -> Reply {
        Reply { status, headers: Vec::new(), body: body.into() }
    }

    /// Adds one extra header.
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Reply {
        self.headers.push((name.into(), value.into()));
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParseState {
    RequestLine,
    Headers,
    Body,
    Done,
}

/// The incremental request parser: feed it byte fragments as they arrive;
/// it yields the request once framing completes. Tolerates any split of
/// the input — one byte at a time parses identically to one big read.
#[derive(Debug)]
pub struct Parser {
    state: ParseState,
    buf: Vec<u8>,
    consumed: usize,
    method: String,
    path: String,
    headers_seen: usize,
    content_length: usize,
}

impl Default for Parser {
    fn default() -> Parser {
        Parser {
            state: ParseState::RequestLine,
            buf: Vec::new(),
            consumed: 0,
            method: String::new(),
            path: String::new(),
            headers_seen: 0,
            content_length: 0,
        }
    }
}

impl Parser {
    /// Whether any bytes have arrived yet (distinguishes an idle probe
    /// connection from a stalled mid-request one when timing out).
    #[must_use]
    pub fn started(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Consumes one fragment. Returns `Ok(Some(_))` once the request is
    /// complete, `Ok(None)` while more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns an [`HttpError`] carrying the proper status code (400 for
    /// malformed framing, 413 for oversized bodies, 431 for oversized
    /// headers) as soon as the violation is visible — without waiting for
    /// the rest of the request.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<HttpRequest>, HttpError> {
        self.buf.extend_from_slice(bytes);
        loop {
            match self.state {
                ParseState::RequestLine => {
                    let Some(line) = self.take_line()? else { return Ok(None) };
                    let mut parts = line.split_whitespace();
                    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
                        return Err(HttpError::new(
                            400,
                            format!("malformed request line `{line}`"),
                        ));
                    };
                    self.method = method.to_owned();
                    self.path = path.to_owned();
                    self.state = ParseState::Headers;
                }
                ParseState::Headers => {
                    let Some(line) = self.take_line()? else { return Ok(None) };
                    if line.is_empty() {
                        self.state = ParseState::Body;
                        continue;
                    }
                    self.headers_seen += 1;
                    if self.headers_seen > MAX_HEADERS {
                        return Err(HttpError::new(431, "too many headers"));
                    }
                    if let Some((name, value)) = line.split_once(':') {
                        if name.eq_ignore_ascii_case("content-length") {
                            self.content_length = value
                                .trim()
                                .parse()
                                .map_err(|_| HttpError::new(400, "bad Content-Length"))?;
                            if self.content_length > MAX_BODY {
                                return Err(HttpError::new(413, "body too large"));
                            }
                        }
                    }
                }
                ParseState::Body => {
                    if self.buf.len() - self.consumed < self.content_length {
                        return Ok(None);
                    }
                    let body_bytes = &self.buf[self.consumed..self.consumed + self.content_length];
                    let body = String::from_utf8(body_bytes.to_vec())
                        .map_err(|_| HttpError::new(400, "body is not UTF-8"))?;
                    self.state = ParseState::Done;
                    return Ok(Some(HttpRequest {
                        method: std::mem::take(&mut self.method),
                        path: std::mem::take(&mut self.path),
                        body,
                    }));
                }
                ParseState::Done => {
                    return Err(HttpError::new(400, "request already complete"));
                }
            }
        }
    }

    /// Extracts the next CRLF- (or bare-LF-) terminated line, or `None`
    /// when the terminator has not arrived yet.
    fn take_line(&mut self) -> Result<Option<String>, HttpError> {
        let pending = &self.buf[self.consumed..];
        let Some(nl) = pending.iter().position(|&b| b == b'\n') else {
            if pending.len() > MAX_LINE {
                return Err(HttpError::new(431, "header line too long"));
            }
            return Ok(None);
        };
        let mut line = &pending[..nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        if line.len() > MAX_LINE {
            return Err(HttpError::new(431, "header line too long"));
        }
        let text = std::str::from_utf8(line)
            .map_err(|_| HttpError::new(400, "header is not UTF-8"))?
            .to_owned();
        self.consumed += nl + 1;
        Ok(Some(text))
    }
}

/// Reads and parses one request from a blocking reader (the non-event-loop
/// entry point, shared by tests and the portable fallback server).
///
/// # Errors
///
/// Returns an [`HttpError`] carrying the proper status code.
pub fn read_request(reader: &mut impl BufRead) -> Result<HttpRequest, HttpError> {
    let mut parser = Parser::default();
    let mut chunk = [0u8; 4096];
    loop {
        let n = match reader.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::new(400, format!("read failed: {e}"))),
        };
        if n == 0 {
            return Err(HttpError::new(400, "request truncated"));
        }
        if let Some(req) = parser.feed(&chunk[..n])? {
            return Ok(req);
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Renders one complete JSON response (status line, headers, body) as the
/// byte buffer the event loop writes incrementally. Always
/// `Connection: close`.
#[must_use]
pub fn format_response(reply: &Reply) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        reply.status,
        reason(reply.status),
        reply.body.len(),
    );
    for (name, value) in &reply.headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("Connection: close\r\n\r\n");
    out.push_str(&reply.body);
    out.into_bytes()
}

/// Writes one headerless JSON response and flushes.
///
/// # Errors
///
/// Propagates I/O failures from the underlying stream.
pub fn write_response(writer: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    writer.write_all(&format_response(&Reply::new(status, body)))?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<HttpRequest, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert_eq!(req.body, "");
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req = parse(
            "POST /v1/jobs HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 13\r\n\r\n{\"kind\":\"x\"}Z",
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, "{\"kind\":\"x\"}Z");
    }

    #[test]
    fn tolerates_bare_lf_line_endings() {
        let req = parse("GET /v1/metrics HTTP/1.1\nHost: x\n\n").expect("parses");
        assert_eq!(req.path, "/v1/metrics");
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        assert_eq!(parse("GARBAGE\r\n\r\n").expect_err("malformed").status, 400);
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n").expect_err("huge").status,
            413
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").expect_err("bad").status,
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").expect_err("trunc").status,
            400
        );
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_LINE + 1));
        assert_eq!(parse(&long).expect_err("long line").status, 431);
    }

    #[test]
    fn byte_at_a_time_feed_matches_single_feed() {
        let raw = "POST /v1/jobs HTTP/1.1\r\nHost: a\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let mut whole = Parser::default();
        let expected = whole.feed(raw.as_bytes()).expect("parses").expect("complete");
        let mut dribble = Parser::default();
        let mut got = None;
        for b in raw.as_bytes() {
            assert!(got.is_none(), "request completed early");
            got = dribble.feed(std::slice::from_ref(b)).expect("parses");
        }
        assert_eq!(got.expect("complete at last byte"), expected);
    }

    #[test]
    fn incremental_parser_reports_progress_and_violations_early() {
        let mut p = Parser::default();
        assert!(!p.started());
        assert_eq!(p.feed(b"POST /v1/jobs HT").expect("partial"), None);
        assert!(p.started());
        assert_eq!(p.feed(b"TP/1.1\r\nContent-Le").expect("partial"), None);
        // The oversized Content-Length is rejected the moment the header
        // line completes, long before any body bytes arrive.
        let err = p.feed(b"ngth: 99999999\r\n").expect_err("too big");
        assert_eq!(err.status, 413);

        // An endless header line is rejected without a terminator.
        let mut p = Parser::default();
        assert_eq!(p.feed(b"GET / HTTP/1.1\r\n").expect("line"), None);
        let err = p.feed(&vec![b'x'; MAX_LINE + 2]).expect_err("unterminated line");
        assert_eq!(err.status, 431);

        // Too many headers.
        let mut p = Parser::default();
        p.feed(b"GET / HTTP/1.1\r\n").expect("line");
        let mut err = None;
        for i in 0..=MAX_HEADERS {
            match p.feed(format!("H{i}: v\r\n").as_bytes()) {
                Ok(None) => {}
                Ok(Some(_)) => panic!("never completes"),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err.expect("rejected").status, 431);
    }

    #[test]
    fn response_has_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}").expect("writes");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn formatted_reply_carries_extra_headers() {
        let reply = Reply::new(429, "{\"error\":\"queue full\"}").with_header("Retry-After", "1");
        let text = String::from_utf8(format_response(&reply)).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n\r\n{\"error\":\"queue full\"}"), "{text}");
    }
}
