//! `svc::journal` — the append-only, crash-recoverable job journal.
//!
//! Every job-lifecycle event (submit, start, finish, cancel) is one
//! checksummed record appended to `journal.mvj` under the `--journal`
//! directory. On restart the file is replayed: completed jobs are restored
//! (their bodies come from the journal-backed disk cache), accepted-but-
//! unfinished jobs are re-enqueued under their original ids, and a torn
//! tail (a record cut short by the crash) is detected by its checksum and
//! truncated away.
//!
//! The wire format reuses the `lts::io` idioms: LEB128 varints
//! ([`multival_lts::vbyte`]) for lengths and ids, and an FNV-1a-64
//! checksum trailer per record —
//! `varint(payload_len) ‖ payload ‖ fnv1a64(payload) as 8 LE bytes`.
//!
//! Durability is batched: [`Journal::append`] buffers under a mutex and
//! returns a sequence number; [`Journal::sync`] group-commits — the first
//! waiter becomes the leader, writes *everything* pending, and issues one
//! `fdatasync` on behalf of every record buffered so far, so N concurrent
//! submissions pay ~1 fsync, not N.

use crate::hash::fnv1a64;
use multival_lts::vbyte::{read_uv, write_uv};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// File magic: format name + version byte + newline (pager-friendly).
const MAGIC: &[u8] = b"MVJRNL1\n";
/// Journal file name inside the `--journal` directory.
pub const FILE_NAME: &str = "journal.mvj";

/// Why a finished job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Evaluated successfully; the body lives in the disk cache under the
    /// job's canonical key.
    Done,
    /// Evaluation failed with this message (failures are never cached, so
    /// the message travels in the journal).
    Failed(String),
}

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A job was accepted: id plus the canonical request text (itself a
    /// parseable request — replay re-evaluates from it).
    Submit {
        /// Job id (stable across restarts).
        id: u64,
        /// Canonical request serialization (also the cache key).
        canonical: String,
    },
    /// A worker began evaluating the job (informational; a crash between
    /// start and finish re-enqueues the job).
    Start {
        /// Job id.
        id: u64,
    },
    /// The job reached a terminal evaluated state.
    Finish {
        /// Job id.
        id: u64,
        /// How it ended.
        outcome: Outcome,
    },
    /// The job was cancelled while still queued.
    Cancel {
        /// Job id.
        id: u64,
    },
}

const TAG_SUBMIT: u8 = 1;
const TAG_START: u8 = 2;
const TAG_FINISH: u8 = 3;
const TAG_CANCEL: u8 = 4;

fn encode_payload(record: &Record) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        Record::Submit { id, canonical } => {
            out.push(TAG_SUBMIT);
            write_uv(&mut out, *id);
            write_uv(&mut out, canonical.len() as u64);
            out.extend_from_slice(canonical.as_bytes());
        }
        Record::Start { id } => {
            out.push(TAG_START);
            write_uv(&mut out, *id);
        }
        Record::Finish { id, outcome } => {
            out.push(TAG_FINISH);
            write_uv(&mut out, *id);
            match outcome {
                Outcome::Done => out.push(0),
                Outcome::Failed(message) => {
                    out.push(1);
                    write_uv(&mut out, message.len() as u64);
                    out.extend_from_slice(message.as_bytes());
                }
            }
        }
        Record::Cancel { id } => {
            out.push(TAG_CANCEL);
            write_uv(&mut out, *id);
        }
    }
    out
}

fn decode_payload(payload: &[u8]) -> Option<Record> {
    let mut pos = 1usize;
    let tag = *payload.first()?;
    let id = read_uv(payload, &mut pos)?;
    let record = match tag {
        TAG_SUBMIT => {
            let len = read_uv(payload, &mut pos)? as usize;
            let bytes = payload.get(pos..pos + len)?;
            pos += len;
            Record::Submit { id, canonical: String::from_utf8(bytes.to_vec()).ok()? }
        }
        TAG_START => Record::Start { id },
        TAG_FINISH => {
            let outcome = match *payload.get(pos)? {
                0 => {
                    pos += 1;
                    Outcome::Done
                }
                1 => {
                    pos += 1;
                    let len = read_uv(payload, &mut pos)? as usize;
                    let bytes = payload.get(pos..pos + len)?;
                    pos += len;
                    Outcome::Failed(String::from_utf8(bytes.to_vec()).ok()?)
                }
                _ => return None,
            };
            Record::Finish { id, outcome }
        }
        TAG_CANCEL => Record::Cancel { id },
        _ => return None,
    };
    (pos == payload.len()).then_some(record)
}

/// Frames one record: `varint(len) ‖ payload ‖ fnv64(payload)`.
fn encode_record(record: &Record) -> Vec<u8> {
    let payload = encode_payload(record);
    let mut out = Vec::with_capacity(payload.len() + 12);
    write_uv(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out
}

/// Decodes the record at `*pos`, advancing it past the frame. `None` on
/// truncation, checksum mismatch, or a malformed payload — the replay
/// treats all three as the torn tail and stops.
fn decode_record(bytes: &[u8], pos: &mut usize) -> Option<Record> {
    let mut cursor = *pos;
    let len = read_uv(bytes, &mut cursor)? as usize;
    let payload = bytes.get(cursor..cursor.checked_add(len)?)?;
    cursor += len;
    let trailer = bytes.get(cursor..cursor + 8)?;
    cursor += 8;
    if fnv1a64(payload).to_le_bytes() != *trailer {
        return None;
    }
    let record = decode_payload(payload)?;
    *pos = cursor;
    Some(record)
}

struct JournalState {
    /// Encoded-but-unsynced record bytes.
    pending: Vec<u8>,
    /// Sequence of the last appended record.
    appended: u64,
    /// Sequence through which records are durable.
    flushed: u64,
    /// A leader is currently writing + fsyncing.
    flushing: bool,
}

/// The append-only journal handle. All methods take `&self`; appends
/// serialize on an internal mutex and syncs group-commit.
pub struct Journal {
    file: File,
    state: Mutex<JournalState>,
    flushed_cv: Condvar,
    records_appended: AtomicU64,
    fsyncs: AtomicU64,
}

impl Journal {
    /// Opens (creating if needed) the journal under `dir` and replays
    /// every intact record. A torn tail is truncated away so subsequent
    /// appends start from a clean record boundary.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created, the file cannot be
    /// opened, or an existing file does not start with the format magic.
    pub fn open(dir: &Path) -> io::Result<(Journal, Vec<Record>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(FILE_NAME);
        let mut records = Vec::new();
        let mut good = MAGIC.len();
        let mut fresh = true;
        if let Ok(bytes) = std::fs::read(&path) {
            if !bytes.is_empty() {
                if !bytes.starts_with(MAGIC) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{} is not a multival job journal", path.display()),
                    ));
                }
                fresh = false;
                let mut pos = MAGIC.len();
                while let Some(record) = decode_record(&bytes, &mut pos) {
                    records.push(record);
                    good = pos;
                }
                if good < bytes.len() {
                    // Torn tail: drop the partial record the crash left.
                    let file = OpenOptions::new().write(true).open(&path)?;
                    file.set_len(good as u64)?;
                    file.sync_data()?;
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if fresh {
            (&file).write_all(MAGIC)?;
            file.sync_data()?;
        }
        let journal = Journal {
            file,
            state: Mutex::new(JournalState {
                pending: Vec::new(),
                appended: 0,
                flushed: 0,
                flushing: false,
            }),
            flushed_cv: Condvar::new(),
            records_appended: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        };
        Ok((journal, records))
    }

    /// Buffers one record and returns its sequence number (pass to
    /// [`Journal::sync`] for durability). Cheap: an encode plus a mutexed
    /// buffer append, no I/O.
    pub fn append(&self, record: &Record) -> u64 {
        let bytes = encode_record(record);
        let mut st = self.state.lock().expect("journal state poisoned");
        st.pending.extend_from_slice(&bytes);
        st.appended += 1;
        self.records_appended.fetch_add(1, Ordering::Relaxed);
        st.appended
    }

    /// Blocks until every record up to `seq` is on disk. Group commit:
    /// the first caller becomes the leader and writes + fsyncs the whole
    /// pending buffer; concurrent callers ride the same fsync.
    pub fn sync(&self, seq: u64) {
        let mut st = self.state.lock().expect("journal state poisoned");
        loop {
            if st.flushed >= seq {
                return;
            }
            if st.flushing {
                st = self.flushed_cv.wait(st).expect("journal state poisoned");
                continue;
            }
            st.flushing = true;
            let buf = std::mem::take(&mut st.pending);
            let upto = st.appended;
            drop(st);
            // I/O outside the lock: appends keep landing in `pending`.
            let _ = (&self.file).write_all(&buf);
            let _ = self.file.sync_data();
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            st = self.state.lock().expect("journal state poisoned");
            st.flushing = false;
            st.flushed = st.flushed.max(upto);
            self.flushed_cv.notify_all();
        }
    }

    /// Appends one record and waits for it to be durable.
    pub fn append_sync(&self, record: &Record) {
        let seq = self.append(record);
        self.sync(seq);
    }

    /// Flushes whatever is pending (used on shutdown).
    pub fn sync_all(&self) {
        let seq = self.state.lock().expect("journal state poisoned").appended;
        self.sync(seq);
    }

    /// Total records appended since open (excludes replayed history).
    #[must_use]
    pub fn records_appended(&self) -> u64 {
        self.records_appended.load(Ordering::Relaxed)
    }

    /// Number of `fdatasync` calls issued; with group commit this is
    /// typically far below [`Journal::records_appended`] under load.
    #[must_use]
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("multival-svc-journal-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Submit { id: 1, canonical: "{\"kind\":\"explore\"}".to_owned() },
            Record::Start { id: 1 },
            Record::Finish { id: 1, outcome: Outcome::Done },
            Record::Submit { id: 2, canonical: "{\"kind\":\"check\"}".to_owned() },
            Record::Cancel { id: 2 },
            Record::Submit { id: 3, canonical: String::new() },
            Record::Finish { id: 3, outcome: Outcome::Failed("parse error: line 1".to_owned()) },
        ]
    }

    #[test]
    fn records_survive_reopen() {
        let dir = temp_dir("reopen");
        {
            let (journal, replayed) = Journal::open(&dir).expect("open");
            assert!(replayed.is_empty());
            for r in sample_records() {
                journal.append_sync(&r);
            }
        }
        let (journal, replayed) = Journal::open(&dir).expect("reopen");
        assert_eq!(replayed, sample_records());
        // Appending after a replay keeps extending the same file.
        journal.append_sync(&Record::Start { id: 3 });
        drop(journal);
        let (_, replayed) = Journal::open(&dir).expect("third open");
        assert_eq!(replayed.len(), sample_records().len() + 1);
        assert_eq!(replayed.last(), Some(&Record::Start { id: 3 }));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let dir = temp_dir("torn");
        {
            let (journal, _) = Journal::open(&dir).expect("open");
            for r in sample_records() {
                journal.append_sync(&r);
            }
        }
        let path = dir.join(FILE_NAME);
        let full = std::fs::read(&path).expect("read");
        // Chop the last record mid-frame — every truncation point inside
        // the final record must replay the prefix, not error or garbage.
        let tail_start = {
            let mut pos = MAGIC.len();
            let mut last = pos;
            while decode_record(&full, &mut pos).is_some() {
                if pos < full.len() {
                    last = pos;
                }
            }
            last
        };
        for cut in tail_start + 1..full.len() {
            std::fs::write(&path, &full[..cut]).expect("write truncated");
            let (journal, replayed) = Journal::open(&dir).expect("open truncated");
            assert_eq!(replayed.len(), sample_records().len() - 1, "cut at {cut}");
            // The torn tail was physically truncated: appends go to a
            // clean boundary and replay cleanly again.
            journal.append_sync(&Record::Cancel { id: 9 });
            drop(journal);
            let (_, replayed) = Journal::open(&dir).expect("reopen");
            assert_eq!(replayed.last(), Some(&Record::Cancel { id: 9 }), "cut at {cut}");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupted_byte_stops_replay_at_the_previous_record() {
        let dir = temp_dir("corrupt");
        {
            let (journal, _) = Journal::open(&dir).expect("open");
            for r in sample_records() {
                journal.append_sync(&r);
            }
        }
        let path = dir.join(FILE_NAME);
        let mut bytes = std::fs::read(&path).expect("read");
        let n = bytes.len();
        bytes[n - 3] ^= 0xff; // inside the last record's checksum
        std::fs::write(&path, &bytes).expect("write corrupted");
        let (_, replayed) = Journal::open(&dir).expect("open corrupted");
        assert_eq!(replayed.len(), sample_records().len() - 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn group_commit_batches_fsyncs_and_loses_nothing() {
        let dir = temp_dir("group");
        let (journal, _) = Journal::open(&dir).expect("open");
        let journal = Arc::new(journal);
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 50;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let journal = Arc::clone(&journal);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        journal.append_sync(&Record::Start { id: t * PER_THREAD + i });
                    }
                });
            }
        });
        assert_eq!(journal.records_appended(), THREADS * PER_THREAD);
        // Group commit must have merged concurrent syncs (strictly fewer
        // fsyncs than records is overwhelmingly likely with 8 threads; the
        // open-magic fsync is not counted by the counter).
        assert!(journal.fsyncs() <= THREADS * PER_THREAD);
        drop(journal);
        let (_, replayed) = Journal::open(&dir).expect("reopen");
        assert_eq!(replayed.len(), (THREADS * PER_THREAD) as usize, "every record durable");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejects_a_foreign_file() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join(FILE_NAME), b"not a journal").expect("write");
        assert!(Journal::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }
}
