//! The job engine: a bounded submission queue drained by a fixed worker
//! pool, with cancellation for queued jobs and a graceful drain on
//! shutdown.
//!
//! Submissions check the result cache first — a hit produces a job that is
//! born `done` without ever touching the queue. Misses enqueue; when the
//! queue is full the submission is *rejected* (backpressure surfaces to the
//! HTTP layer as `429`), never silently dropped. `shutdown_and_drain`
//! stops intake, lets the workers finish every accepted job, and joins
//! them — accepted work is never lost.

use crate::cache::ResultCache;
use crate::metrics::Metrics;
use crate::request::JobRequest;
use multival_par::Workers;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is evaluating it.
    Running,
    /// Finished; the result body is available.
    Done,
    /// Evaluation failed; the error message is available.
    Failed,
    /// Cancelled while still queued.
    Cancelled,
}

impl JobState {
    /// The wire name used in status responses.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// A point-in-time copy of one job's externally visible state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSnapshot {
    /// Current lifecycle state.
    pub state: JobState,
    /// Deterministic result JSON (done jobs only).
    pub result: Option<String>,
    /// Failure message (failed jobs only).
    pub error: Option<String>,
    /// Whether the result came from the cache.
    pub cached: bool,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; retry later.
    QueueFull,
    /// The engine is shutting down.
    ShuttingDown,
}

struct Job {
    request: JobRequest,
    canonical: String,
    state: JobState,
    result: Option<String>,
    error: Option<String>,
    cached: bool,
    submitted: Instant,
}

struct EngineState {
    jobs: HashMap<u64, Job>,
    queue: VecDeque<u64>,
    shutting_down: bool,
}

struct Inner {
    state: Mutex<EngineState>,
    work_ready: Condvar,
    queue_cap: usize,
    cache: Arc<ResultCache>,
    metrics: Arc<Metrics>,
    mc_workers: usize,
}

/// The engine: owns the queue, the worker pool, and the jobs table.
pub struct JobEngine {
    inner: Arc<Inner>,
    next_id: AtomicU64,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl JobEngine {
    /// Starts `workers` evaluation threads over a queue holding at most
    /// `queue_cap` waiting jobs. `mc_workers` sizes the Monte-Carlo pool
    /// *inside* each evaluation (estimates are identical for any value).
    #[must_use]
    pub fn new(
        workers: usize,
        queue_cap: usize,
        mc_workers: usize,
        cache: Arc<ResultCache>,
        metrics: Arc<Metrics>,
    ) -> JobEngine {
        let inner = Arc::new(Inner {
            state: Mutex::new(EngineState {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                shutting_down: false,
            }),
            work_ready: Condvar::new(),
            queue_cap: queue_cap.max(1),
            cache,
            metrics,
            mc_workers: mc_workers.max(1),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("svc-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn svc worker")
            })
            .collect();
        JobEngine { inner, next_id: AtomicU64::new(1), workers: Mutex::new(handles) }
    }

    /// Submits a request. A cache hit returns a job that is already
    /// `done`; a miss enqueues it for the worker pool.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after [`JobEngine::shutdown_and_drain`]
    /// has begun.
    pub fn submit(&self, request: JobRequest) -> Result<u64, SubmitError> {
        let canonical = request.canonical();
        let now = Instant::now();
        let hit = self.inner.cache.get(&canonical);
        let mut st = self.inner.state.lock().expect("engine state poisoned");
        if st.shutting_down {
            Metrics::bump(&self.inner.metrics.rejected);
            return Err(SubmitError::ShuttingDown);
        }
        if hit.is_none() && st.queue.len() >= self.inner.queue_cap {
            Metrics::bump(&self.inner.metrics.rejected);
            return Err(SubmitError::QueueFull);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Metrics::bump(&self.inner.metrics.accepted);
        let mut job = Job {
            request,
            canonical,
            state: JobState::Queued,
            result: None,
            error: None,
            cached: false,
            submitted: now,
        };
        if let Some(body) = hit {
            job.state = JobState::Done;
            job.result = Some(body);
            job.cached = true;
            Metrics::bump(&self.inner.metrics.done);
            self.inner.metrics.latency.record(now.elapsed());
            st.jobs.insert(id, job);
        } else {
            st.jobs.insert(id, job);
            st.queue.push_back(id);
            self.inner.work_ready.notify_one();
        }
        Ok(id)
    }

    /// Snapshot of one job, or `None` for unknown ids.
    #[must_use]
    pub fn status(&self, id: u64) -> Option<JobSnapshot> {
        let st = self.inner.state.lock().expect("engine state poisoned");
        st.jobs.get(&id).map(|j| JobSnapshot {
            state: j.state,
            result: j.result.clone(),
            error: j.error.clone(),
            cached: j.cached,
        })
    }

    /// Cancels a job that is still queued. Running or finished jobs are
    /// not cancellable; returns whether the cancellation took effect.
    pub fn cancel(&self, id: u64) -> bool {
        let mut st = self.inner.state.lock().expect("engine state poisoned");
        let Some(job) = st.jobs.get_mut(&id) else { return false };
        if job.state != JobState::Queued {
            return false;
        }
        job.state = JobState::Cancelled;
        st.queue.retain(|&q| q != id);
        Metrics::bump(&self.inner.metrics.cancelled);
        true
    }

    /// Number of jobs waiting in the queue right now.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().expect("engine state poisoned").queue.len()
    }

    /// Stops intake, waits for every accepted job to finish, and joins the
    /// worker pool. Idempotent.
    pub fn shutdown_and_drain(&self) {
        {
            let mut st = self.inner.state.lock().expect("engine state poisoned");
            st.shutting_down = true;
            self.inner.work_ready.notify_all();
        }
        let handles = std::mem::take(&mut *self.workers.lock().expect("worker handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for JobEngine {
    fn drop(&mut self) {
        self.shutdown_and_drain();
    }
}

fn worker_loop(inner: &Inner) {
    let mc = Workers::new(inner.mc_workers);
    loop {
        let (id, request, canonical, submitted) = {
            let mut st = inner.state.lock().expect("engine state poisoned");
            loop {
                if let Some(id) = st.queue.pop_front() {
                    let job = st.jobs.get_mut(&id).expect("queued job exists");
                    job.state = JobState::Running;
                    break (id, job.request.clone(), job.canonical.clone(), job.submitted);
                }
                if st.shutting_down {
                    return;
                }
                st = inner.work_ready.wait(st).expect("engine state poisoned");
            }
        };
        // Evaluation runs outside the lock; this is the expensive part.
        let outcome = request.evaluate(mc).map(|json| json.to_string());
        let mut st = inner.state.lock().expect("engine state poisoned");
        let job = st.jobs.get_mut(&id).expect("running job exists");
        match outcome {
            Ok(body) => {
                // Only successful results enter the cache: errors and
                // tripped budgets must re-run on resubmission.
                inner.cache.put(&canonical, &body);
                job.state = JobState::Done;
                job.result = Some(body);
                Metrics::bump(&inner.metrics.done);
            }
            Err(message) => {
                job.state = JobState::Failed;
                job.error = Some(message);
                Metrics::bump(&inner.metrics.failed);
            }
        }
        inner.metrics.latency.record(submitted.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn engine(workers: usize, queue_cap: usize) -> (JobEngine, Arc<ResultCache>, Arc<Metrics>) {
        let cache = Arc::new(ResultCache::new(64, None).expect("cache"));
        let metrics = Arc::new(Metrics::default());
        (
            JobEngine::new(workers, queue_cap, 1, Arc::clone(&cache), Arc::clone(&metrics)),
            cache,
            metrics,
        )
    }

    fn explore_request() -> JobRequest {
        JobRequest::from_json_text(r#"{"kind":"explore","model":{"builtin":"xstream_pipeline"}}"#)
            .expect("request")
    }

    fn wait_done(engine: &JobEngine, id: u64) -> JobSnapshot {
        for _ in 0..2000 {
            let snap = engine.status(id).expect("job exists");
            if !matches!(snap.state, JobState::Queued | JobState::Running) {
                return snap;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("job {id} never finished");
    }

    #[test]
    fn submit_evaluate_and_cache_on_resubmit() {
        let (engine, cache, metrics) = engine(2, 8);
        let first = engine.submit(explore_request()).expect("accepted");
        let snap = wait_done(&engine, first);
        assert_eq!(snap.state, JobState::Done);
        assert!(!snap.cached);
        let body = snap.result.expect("result body");

        let second = engine.submit(explore_request()).expect("accepted");
        let snap2 = engine.status(second).expect("job exists");
        assert_eq!(snap2.state, JobState::Done, "cache hits are born done");
        assert!(snap2.cached);
        assert_eq!(snap2.result.as_deref(), Some(body.as_str()), "byte-identical");
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(Metrics::get(&metrics.done), 2);
    }

    #[test]
    fn failures_are_reported_and_not_cached() {
        let (engine, cache, metrics) = engine(1, 8);
        let req = JobRequest::from_json_text(
            r#"{"kind":"explore","model":{"source":"behaviour undefined_gate_syntax ->"}}"#,
        )
        .expect("request parses; model is bad");
        let id = engine.submit(req.clone()).expect("accepted");
        let snap = wait_done(&engine, id);
        assert_eq!(snap.state, JobState::Failed);
        assert!(snap.error.is_some());
        assert_eq!(cache.stats().resident, 0, "errors never enter the cache");
        assert_eq!(Metrics::get(&metrics.failed), 1);

        let again = engine.submit(req).expect("accepted");
        let snap = wait_done(&engine, again);
        assert_eq!(snap.state, JobState::Failed, "failures re-run, not served stale");
    }

    #[test]
    fn full_queue_rejects_but_never_drops() {
        let (engine, _cache, metrics) = engine(1, 1);
        // Flood one worker with distinct requests (the varying seed keeps
        // them out of the cache): submissions far outpace evaluation, so
        // the bounded queue must reject some — and every *accepted* job
        // must still finish.
        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        for seed in 0..64 {
            let req = JobRequest::from_json_text(&format!(
                r#"{{"kind":"explore","model":{{"builtin":"xstream_pipeline"}},"seed":{seed}}}"#
            ))
            .expect("request");
            match engine.submit(req) {
                Ok(id) => accepted.push(id),
                Err(SubmitError::QueueFull) => rejected += 1,
                Err(SubmitError::ShuttingDown) => panic!("not shutting down"),
            }
        }
        assert!(rejected > 0, "a bounded queue of 1 must reject under a flood");
        assert_eq!(Metrics::get(&metrics.rejected), rejected);
        for id in accepted {
            assert_eq!(wait_done(&engine, id).state, JobState::Done, "accepted jobs finish");
        }
    }

    #[test]
    fn cancel_only_affects_queued_jobs() {
        let (engine, _cache, metrics) = engine(1, 8);
        let slow = JobRequest::from_json_text(
            r#"{"kind":"explore","model":{"builtin":"fame2_ping_pong"}}"#,
        )
        .expect("request");
        let running = engine.submit(slow).expect("accepted");
        let queued = engine.submit(explore_request()).expect("accepted");
        let cancelled = engine.cancel(queued);
        let done = wait_done(&engine, running);
        assert_eq!(done.state, JobState::Done);
        if cancelled {
            assert_eq!(engine.status(queued).expect("exists").state, JobState::Cancelled);
            assert_eq!(Metrics::get(&metrics.cancelled), 1);
            assert!(!engine.cancel(queued), "cancel is not idempotent-true");
        } else {
            // The worker grabbed it first; it must then run to completion.
            let snap = wait_done(&engine, queued);
            assert_eq!(snap.state, JobState::Done);
        }
        assert!(!engine.cancel(running), "finished jobs cannot be cancelled");
        assert!(!engine.cancel(999_999), "unknown ids cannot be cancelled");
    }

    #[test]
    fn drain_finishes_accepted_work_then_rejects() {
        let (engine, _cache, metrics) = engine(2, 16);
        let ids: Vec<u64> =
            (0..6).map(|_| engine.submit(explore_request()).expect("accepted")).collect();
        engine.shutdown_and_drain();
        for id in ids {
            let snap = engine.status(id).expect("job exists");
            assert_eq!(snap.state, JobState::Done, "drain must finish accepted jobs");
        }
        assert_eq!(engine.submit(explore_request()), Err(SubmitError::ShuttingDown));
        assert_eq!(Metrics::get(&metrics.done), 6);
        assert_eq!(engine.queue_depth(), 0);
    }
}
