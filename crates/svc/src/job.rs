//! The job engine: a bounded submission queue drained by a fixed worker
//! pool, with in-flight request coalescing, an optional crash-recovery
//! journal, cancellation for queued jobs, and a graceful drain on
//! shutdown.
//!
//! Submissions check the result cache first — a hit produces a job that is
//! born `done` without ever touching the queue. A miss whose canonical key
//! matches an evaluation already queued or running *coalesces*: the new
//! job becomes a follower of that primary and every follower wakes with a
//! byte-identical result when the one evaluation completes. Only genuinely
//! new work enqueues; when the queue is full the submission is *rejected*
//! (backpressure surfaces to the HTTP layer as `429`), never silently
//! dropped. `shutdown_and_drain` stops intake, lets the workers finish
//! every accepted job, and joins them — accepted work is never lost.
//!
//! With a [`Journal`] attached, every lifecycle transition is appended as
//! a checksummed record and submissions are acknowledged only after their
//! `Submit` record is fsynced (group-committed, so concurrent submissions
//! share one fsync). [`JobEngine::with_journal`] replays the previous
//! incarnation's records: finished jobs are restored from the disk cache,
//! accepted-but-unfinished ones are re-enqueued under their original ids,
//! and determinism makes the re-evaluated bodies byte-identical.

use crate::cache::ResultCache;
use crate::journal::{Journal, Outcome, Record};
use crate::metrics::Metrics;
use crate::request::JobRequest;
use multival_par::Workers;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is evaluating it.
    Running,
    /// Finished; the result body is available.
    Done,
    /// Evaluation failed; the error message is available.
    Failed,
    /// Cancelled while still queued.
    Cancelled,
}

impl JobState {
    /// The wire name used in status responses.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// A point-in-time copy of one job's externally visible state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSnapshot {
    /// Current lifecycle state.
    pub state: JobState,
    /// Deterministic result JSON (done jobs only).
    pub result: Option<String>,
    /// Failure message (failed jobs only).
    pub error: Option<String>,
    /// Whether the result came from the cache.
    pub cached: bool,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; retry later.
    QueueFull,
    /// The engine is shutting down.
    ShuttingDown,
}

struct Job {
    request: JobRequest,
    canonical: String,
    state: JobState,
    result: Option<String>,
    error: Option<String>,
    cached: bool,
    submitted: Instant,
    /// Jobs coalesced behind this one (primary side).
    followers: Vec<u64>,
    /// The primary this job coalesced behind (follower side).
    coalesced_into: Option<u64>,
}

impl Job {
    fn new(request: JobRequest, canonical: String, submitted: Instant) -> Job {
        Job {
            request,
            canonical,
            state: JobState::Queued,
            result: None,
            error: None,
            cached: false,
            submitted,
            followers: Vec::new(),
            coalesced_into: None,
        }
    }
}

struct EngineState {
    jobs: HashMap<u64, Job>,
    queue: VecDeque<u64>,
    /// canonical key → primary job id, for every evaluation queued or
    /// running right now. Entries are removed when the primary finishes,
    /// *after* its result entered the cache — so under this lock a miss in
    /// both the cache and this map means genuinely new work.
    in_flight: HashMap<String, u64>,
    shutting_down: bool,
}

struct Inner {
    state: Mutex<EngineState>,
    work_ready: Condvar,
    queue_cap: usize,
    cache: Arc<ResultCache>,
    metrics: Arc<Metrics>,
    journal: Option<Arc<Journal>>,
    mc_workers: usize,
}

impl Inner {
    /// Buffers a journal record; returns the sequence to pass to
    /// [`Inner::journal_sync`] (0 when no journal is attached).
    fn journal_append(&self, record: &Record) -> u64 {
        self.journal.as_ref().map_or(0, |j| j.append(record))
    }

    /// Waits until the journal is durable through `seq`.
    fn journal_sync(&self, seq: u64) {
        if let Some(j) = &self.journal {
            j.sync(seq);
        }
    }
}

/// The engine: owns the queue, the worker pool, and the jobs table.
pub struct JobEngine {
    inner: Arc<Inner>,
    next_id: AtomicU64,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl JobEngine {
    /// Starts `workers` evaluation threads over a queue holding at most
    /// `queue_cap` waiting jobs. `mc_workers` sizes the Monte-Carlo pool
    /// *inside* each evaluation (estimates are identical for any value).
    #[must_use]
    pub fn new(
        workers: usize,
        queue_cap: usize,
        mc_workers: usize,
        cache: Arc<ResultCache>,
        metrics: Arc<Metrics>,
    ) -> JobEngine {
        JobEngine::with_journal(workers, queue_cap, mc_workers, cache, metrics, None, Vec::new())
    }

    /// Like [`JobEngine::new`], but with an optional journal for durability
    /// and the records replayed from it. Replayed jobs keep their original
    /// ids: terminal ones are restored in place (done bodies come from the
    /// disk cache), accepted-but-unfinished ones re-enqueue — coalescing by
    /// canonical key as they go — and are evaluated again, which is safe
    /// because evaluation is deterministic.
    #[must_use]
    pub fn with_journal(
        workers: usize,
        queue_cap: usize,
        mc_workers: usize,
        cache: Arc<ResultCache>,
        metrics: Arc<Metrics>,
        journal: Option<Arc<Journal>>,
        replayed: Vec<Record>,
    ) -> JobEngine {
        let mut state = EngineState {
            jobs: HashMap::new(),
            queue: VecDeque::new(),
            in_flight: HashMap::new(),
            shutting_down: false,
        };
        let max_id = replay(&mut state, &cache, &metrics, replayed);
        let inner = Arc::new(Inner {
            state: Mutex::new(state),
            work_ready: Condvar::new(),
            queue_cap: queue_cap.max(1),
            cache,
            metrics,
            journal,
            mc_workers: mc_workers.max(1),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("svc-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn svc worker")
            })
            .collect();
        JobEngine { inner, next_id: AtomicU64::new(max_id + 1), workers: Mutex::new(handles) }
    }

    /// Submits a request. A cache hit returns a job that is already
    /// `done`; a key matching an in-flight evaluation coalesces behind it;
    /// otherwise the job enqueues for the worker pool. With a journal
    /// attached, this returns only after the job's `Submit` record is on
    /// disk.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after [`JobEngine::shutdown_and_drain`]
    /// has begun. Coalesced submissions bypass the queue-capacity check —
    /// they consume no queue slot.
    pub fn submit(&self, request: JobRequest) -> Result<u64, SubmitError> {
        let canonical = request.canonical();
        let now = Instant::now();
        let mut st = self.inner.state.lock().expect("engine state poisoned");
        if st.shutting_down {
            Metrics::bump(&self.inner.metrics.rejected_shutdown);
            return Err(SubmitError::ShuttingDown);
        }
        // The cache probe happens under the engine lock on purpose: a
        // finishing primary publishes to the cache *before* it removes its
        // in_flight entry (also under this lock), so a submission can never
        // slip between the two and re-evaluate work that just completed.
        if let Some(body) = self.inner.cache.get(&canonical) {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            Metrics::bump(&self.inner.metrics.accepted);
            Metrics::bump(&self.inner.metrics.cache_served);
            Metrics::bump(&self.inner.metrics.done);
            self.inner.metrics.latency.record(now.elapsed());
            let mut job = Job::new(request, canonical.clone(), now);
            job.state = JobState::Done;
            job.result = Some(body);
            job.cached = true;
            st.jobs.insert(id, job);
            self.inner.journal_append(&Record::Submit { id, canonical });
            let seq = self.inner.journal_append(&Record::Finish { id, outcome: Outcome::Done });
            drop(st);
            self.inner.journal_sync(seq);
            return Ok(id);
        }
        if let Some(&primary) = st.in_flight.get(&canonical) {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            Metrics::bump(&self.inner.metrics.accepted);
            Metrics::bump(&self.inner.metrics.coalesced);
            let mut job = Job::new(request, canonical.clone(), now);
            job.coalesced_into = Some(primary);
            st.jobs.get_mut(&primary).expect("in-flight primary exists").followers.push(id);
            st.jobs.insert(id, job);
            let seq = self.inner.journal_append(&Record::Submit { id, canonical });
            drop(st);
            self.inner.journal_sync(seq);
            return Ok(id);
        }
        if st.queue.len() >= self.inner.queue_cap {
            Metrics::bump(&self.inner.metrics.rejected_queue_full);
            return Err(SubmitError::QueueFull);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Metrics::bump(&self.inner.metrics.accepted);
        Metrics::bump(&self.inner.metrics.queued);
        st.jobs.insert(id, Job::new(request, canonical.clone(), now));
        st.in_flight.insert(canonical.clone(), id);
        st.queue.push_back(id);
        self.inner.work_ready.notify_one();
        // The Submit record is buffered before the lock drops (so a fast
        // worker's later records cannot precede it in the file), and made
        // durable before the caller can acknowledge the job.
        let seq = self.inner.journal_append(&Record::Submit { id, canonical });
        drop(st);
        self.inner.journal_sync(seq);
        Ok(id)
    }

    /// Snapshot of one job, or `None` for unknown ids. A queued follower
    /// reports `running` while its primary runs — externally the two are
    /// one evaluation.
    #[must_use]
    pub fn status(&self, id: u64) -> Option<JobSnapshot> {
        let st = self.inner.state.lock().expect("engine state poisoned");
        let job = st.jobs.get(&id)?;
        let mut state = job.state;
        if state == JobState::Queued {
            if let Some(primary) = job.coalesced_into {
                if st.jobs.get(&primary).is_some_and(|p| p.state == JobState::Running) {
                    state = JobState::Running;
                }
            }
        }
        Some(JobSnapshot {
            state,
            result: job.result.clone(),
            error: job.error.clone(),
            cached: job.cached,
        })
    }

    /// Cancels a job that is still queued. Running or finished jobs are
    /// not cancellable; returns whether the cancellation took effect.
    ///
    /// Cancelling a coalesced follower detaches only that follower — the
    /// shared evaluation keeps running for everyone else. Cancelling a
    /// queued primary with followers promotes the first follower into the
    /// primary's queue slot, so the remaining submissions still evaluate
    /// exactly once.
    pub fn cancel(&self, id: u64) -> bool {
        let mut st = self.inner.state.lock().expect("engine state poisoned");
        let Some(job) = st.jobs.get(&id) else { return false };
        if job.state != JobState::Queued {
            return false;
        }
        if let Some(primary) = job.coalesced_into {
            // A follower: its primary may already be running — that is
            // fine, only this follower detaches.
            if let Some(p) = st.jobs.get_mut(&primary) {
                p.followers.retain(|&f| f != id);
            }
            let job = st.jobs.get_mut(&id).expect("job exists");
            job.state = JobState::Cancelled;
            job.coalesced_into = None;
        } else {
            // A queued primary. Promote its first follower in place so
            // coalesced submissions behind it are not orphaned.
            let (canonical, mut followers) = {
                let job = st.jobs.get_mut(&id).expect("job exists");
                job.state = JobState::Cancelled;
                (job.canonical.clone(), std::mem::take(&mut job.followers))
            };
            if followers.is_empty() {
                st.queue.retain(|&q| q != id);
                st.in_flight.remove(&canonical);
            } else {
                let heir = followers.remove(0);
                for &f in &followers {
                    st.jobs.get_mut(&f).expect("follower exists").coalesced_into = Some(heir);
                }
                {
                    let h = st.jobs.get_mut(&heir).expect("follower exists");
                    h.coalesced_into = None;
                    h.followers = followers;
                }
                for slot in &mut st.queue {
                    if *slot == id {
                        *slot = heir;
                    }
                }
                st.in_flight.insert(canonical, heir);
            }
        }
        Metrics::bump(&self.inner.metrics.cancelled);
        let seq = self.inner.journal_append(&Record::Cancel { id });
        drop(st);
        self.inner.journal_sync(seq);
        true
    }

    /// Number of jobs waiting in the queue right now.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().expect("engine state poisoned").queue.len()
    }

    /// Stops intake, waits for every accepted job to finish, and joins the
    /// worker pool. Idempotent. With a journal attached, flushes it last.
    pub fn shutdown_and_drain(&self) {
        {
            let mut st = self.inner.state.lock().expect("engine state poisoned");
            st.shutting_down = true;
            self.inner.work_ready.notify_all();
        }
        let handles = std::mem::take(&mut *self.workers.lock().expect("worker handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
        if let Some(j) = &self.inner.journal {
            j.sync_all();
        }
    }
}

impl Drop for JobEngine {
    fn drop(&mut self) {
        self.shutdown_and_drain();
    }
}

/// Rebuilds engine state from replayed journal records. Returns the
/// largest job id seen, so fresh ids continue after it.
fn replay(
    state: &mut EngineState,
    cache: &ResultCache,
    metrics: &Metrics,
    records: Vec<Record>,
) -> u64 {
    let mut order: Vec<u64> = Vec::new();
    let mut max_id = 0u64;
    for record in records {
        match record {
            Record::Submit { id, canonical } => {
                max_id = max_id.max(id);
                let job = match JobRequest::from_json_text(&canonical) {
                    Ok(request) => Job::new(request, canonical, Instant::now()),
                    Err(message) => {
                        // Canonical text is produced by us; failing to
                        // parse it back means the journal predates the
                        // current format. Surface that as a failed job
                        // rather than dropping the id.
                        let mut job = Job::new(
                            JobRequest::from_json_text(
                                "{\"kind\":\"explore\",\"model\":{\"builtin\":\"xstream_pipeline\"}}",
                            )
                            .expect("minimal request parses"),
                            String::new(),
                            Instant::now(),
                        );
                        job.state = JobState::Failed;
                        job.error = Some(format!("journal replay: {message}"));
                        job
                    }
                };
                if job.state != JobState::Failed {
                    order.push(id);
                }
                state.jobs.insert(id, job);
            }
            // A Start without a Finish means the crash interrupted the
            // evaluation; the job stays queued and re-runs.
            Record::Start { .. } => {}
            Record::Finish { id, outcome } => {
                if let Some(job) = state.jobs.get_mut(&id) {
                    match outcome {
                        Outcome::Done => job.state = JobState::Done,
                        Outcome::Failed(message) => {
                            job.state = JobState::Failed;
                            job.error = Some(message);
                        }
                    }
                }
            }
            Record::Cancel { id } => {
                if let Some(job) = state.jobs.get_mut(&id) {
                    job.state = JobState::Cancelled;
                }
            }
        }
    }
    // Resolve bodies and re-enqueue, in original submission order.
    for id in order {
        Metrics::bump(&metrics.recovered);
        let canonical = {
            let job = state.jobs.get_mut(&id).expect("replayed job exists");
            if job.state == JobState::Done || job.state == JobState::Queued {
                if let Some(body) = cache.get(&job.canonical) {
                    // The disk tier survived the crash: restore in place.
                    job.state = JobState::Done;
                    job.result = Some(body);
                    job.cached = true;
                } else if job.state == JobState::Done {
                    // Finished before the crash but the body is gone —
                    // re-evaluate; determinism reproduces it byte for byte.
                    job.state = JobState::Queued;
                }
            }
            job.canonical.clone()
        };
        match state.jobs.get(&id).expect("replayed job exists").state {
            JobState::Queued => {
                if let Some(&primary) = state.in_flight.get(&canonical) {
                    Metrics::bump(&metrics.coalesced);
                    state.jobs.get_mut(&id).expect("job exists").coalesced_into = Some(primary);
                    state.jobs.get_mut(&primary).expect("primary exists").followers.push(id);
                } else {
                    Metrics::bump(&metrics.queued);
                    state.in_flight.insert(canonical, id);
                    state.queue.push_back(id);
                }
            }
            JobState::Done => Metrics::bump(&metrics.done),
            JobState::Failed => Metrics::bump(&metrics.failed),
            JobState::Cancelled => Metrics::bump(&metrics.cancelled),
            JobState::Running => unreachable!("replay never leaves a job running"),
        }
    }
    max_id
}

fn worker_loop(inner: &Inner) {
    let mc = Workers::new(inner.mc_workers);
    loop {
        let (id, request, canonical) = {
            let mut st = inner.state.lock().expect("engine state poisoned");
            loop {
                if let Some(id) = st.queue.pop_front() {
                    let job = st.jobs.get_mut(&id).expect("queued job exists");
                    job.state = JobState::Running;
                    inner.journal_append(&Record::Start { id });
                    break (id, job.request.clone(), job.canonical.clone());
                }
                if st.shutting_down {
                    return;
                }
                st = inner.work_ready.wait(st).expect("engine state poisoned");
            }
        };
        // Evaluation runs outside the lock; this is the expensive part.
        let outcome = request.evaluate(mc).map(|json| json.to_string());
        Metrics::bump(&inner.metrics.evaluated);
        if let Ok(body) = &outcome {
            // Only successful results enter the cache: errors and tripped
            // budgets must re-run on resubmission. Publishing *before*
            // taking the lock (and before the in_flight entry goes away)
            // is what lets `submit` treat cache-miss + in-flight-miss as
            // proof of new work.
            inner.cache.put(&canonical, body);
        }
        let mut st = inner.state.lock().expect("engine state poisoned");
        st.in_flight.remove(&canonical);
        let followers = {
            let job = st.jobs.get_mut(&id).expect("running job exists");
            std::mem::take(&mut job.followers)
        };
        let mut last_seq = 0u64;
        for &member in std::iter::once(&id).chain(followers.iter()) {
            let job = st.jobs.get_mut(&member).expect("coalesced job exists");
            match &outcome {
                Ok(body) => {
                    job.state = JobState::Done;
                    job.result = Some(body.clone());
                    Metrics::bump(&inner.metrics.done);
                }
                Err(message) => {
                    job.state = JobState::Failed;
                    job.error = Some(message.clone());
                    Metrics::bump(&inner.metrics.failed);
                }
            }
            job.coalesced_into = None;
            inner.metrics.latency.record(job.submitted.elapsed());
            let rec_outcome = match &outcome {
                Ok(_) => Outcome::Done,
                Err(message) => Outcome::Failed(message.clone()),
            };
            last_seq = inner.journal_append(&Record::Finish { id: member, outcome: rec_outcome });
        }
        drop(st);
        // Terminal records are not ACKed to anyone, but flushing them now
        // keeps restart-after-crash from re-running finished work.
        inner.journal_sync(last_seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::time::Duration;

    fn engine(workers: usize, queue_cap: usize) -> (JobEngine, Arc<ResultCache>, Arc<Metrics>) {
        let cache = Arc::new(ResultCache::new(64, None).expect("cache"));
        let metrics = Arc::new(Metrics::default());
        (
            JobEngine::new(workers, queue_cap, 1, Arc::clone(&cache), Arc::clone(&metrics)),
            cache,
            metrics,
        )
    }

    fn explore_request() -> JobRequest {
        JobRequest::from_json_text(r#"{"kind":"explore","model":{"builtin":"xstream_pipeline"}}"#)
            .expect("request")
    }

    fn slow_request() -> JobRequest {
        JobRequest::from_json_text(r#"{"kind":"explore","model":{"builtin":"fame2_ping_pong"}}"#)
            .expect("request")
    }

    fn wait_done(engine: &JobEngine, id: u64) -> JobSnapshot {
        for _ in 0..2000 {
            let snap = engine.status(id).expect("job exists");
            if !matches!(snap.state, JobState::Queued | JobState::Running) {
                return snap;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("job {id} never finished");
    }

    #[test]
    fn submit_evaluate_and_cache_on_resubmit() {
        let (engine, cache, metrics) = engine(2, 8);
        let first = engine.submit(explore_request()).expect("accepted");
        let snap = wait_done(&engine, first);
        assert_eq!(snap.state, JobState::Done);
        assert!(!snap.cached);
        let body = snap.result.expect("result body");

        let second = engine.submit(explore_request()).expect("accepted");
        let snap2 = engine.status(second).expect("job exists");
        assert_eq!(snap2.state, JobState::Done, "cache hits are born done");
        assert!(snap2.cached);
        assert_eq!(snap2.result.as_deref(), Some(body.as_str()), "byte-identical");
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(Metrics::get(&metrics.done), 2);
        assert_eq!(Metrics::get(&metrics.cache_served), 1);
        assert_eq!(Metrics::get(&metrics.evaluated), 1);
    }

    #[test]
    fn failures_are_reported_and_not_cached() {
        let (engine, cache, metrics) = engine(1, 8);
        let req = JobRequest::from_json_text(
            r#"{"kind":"explore","model":{"source":"behaviour undefined_gate_syntax ->"}}"#,
        )
        .expect("request parses; model is bad");
        let id = engine.submit(req.clone()).expect("accepted");
        let snap = wait_done(&engine, id);
        assert_eq!(snap.state, JobState::Failed);
        assert!(snap.error.is_some());
        assert_eq!(cache.stats().resident, 0, "errors never enter the cache");
        assert_eq!(Metrics::get(&metrics.failed), 1);

        let again = engine.submit(req).expect("accepted");
        let snap = wait_done(&engine, again);
        assert_eq!(snap.state, JobState::Failed, "failures re-run, not served stale");
    }

    #[test]
    fn full_queue_rejects_but_never_drops() {
        let (engine, _cache, metrics) = engine(1, 1);
        // Flood one worker with distinct requests (the varying seed keeps
        // them out of the cache): submissions far outpace evaluation, so
        // the bounded queue must reject some — and every *accepted* job
        // must still finish.
        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        for seed in 0..64 {
            let req = JobRequest::from_json_text(&format!(
                r#"{{"kind":"explore","model":{{"builtin":"xstream_pipeline"}},"seed":{seed}}}"#
            ))
            .expect("request");
            match engine.submit(req) {
                Ok(id) => accepted.push(id),
                Err(SubmitError::QueueFull) => rejected += 1,
                Err(SubmitError::ShuttingDown) => panic!("not shutting down"),
            }
        }
        assert!(rejected > 0, "a bounded queue of 1 must reject under a flood");
        assert_eq!(Metrics::get(&metrics.rejected_queue_full), rejected);
        assert_eq!(metrics.rejected(), rejected);
        for id in accepted {
            assert_eq!(wait_done(&engine, id).state, JobState::Done, "accepted jobs finish");
        }
    }

    #[test]
    fn identical_submissions_coalesce_into_one_evaluation() {
        let (engine, _cache, metrics) = engine(1, 4);
        // Pin the single worker on a slow distinct job, then pile identical
        // submissions behind it: the first takes the queue slot, the rest
        // coalesce (bypassing the queue cap of 4 would not even be needed —
        // but with 8 submissions it is exercised too).
        let blocker = engine.submit(slow_request()).expect("accepted");
        for _ in 0..2000 {
            if engine.status(blocker).expect("exists").state == JobState::Running {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let ids: Vec<u64> = (0..8)
            .map(|_| engine.submit(explore_request()).expect("coalesced, never 429"))
            .collect();
        assert_eq!(Metrics::get(&metrics.coalesced), 7, "one primary, seven followers");
        assert!(engine.queue_depth() <= 1, "followers consume no queue slots");
        let bodies: Vec<String> = ids
            .iter()
            .map(|&id| {
                let snap = wait_done(&engine, id);
                assert_eq!(snap.state, JobState::Done);
                snap.result.expect("body")
            })
            .collect();
        assert!(bodies.windows(2).all(|w| w[0] == w[1]), "byte-identical bodies");
        wait_done(&engine, blocker);
        assert_eq!(
            Metrics::get(&metrics.evaluated),
            2,
            "blocker + exactly one evaluation for all eight"
        );
    }

    #[test]
    fn cancel_only_affects_queued_jobs() {
        let (engine, _cache, metrics) = engine(1, 8);
        let running = engine.submit(slow_request()).expect("accepted");
        let queued = engine.submit(explore_request()).expect("accepted");
        let cancelled = engine.cancel(queued);
        let done = wait_done(&engine, running);
        assert_eq!(done.state, JobState::Done);
        if cancelled {
            assert_eq!(engine.status(queued).expect("exists").state, JobState::Cancelled);
            assert_eq!(Metrics::get(&metrics.cancelled), 1);
            assert!(!engine.cancel(queued), "cancel is not idempotent-true");
        } else {
            // The worker grabbed it first; it must then run to completion.
            let snap = wait_done(&engine, queued);
            assert_eq!(snap.state, JobState::Done);
        }
        assert!(!engine.cancel(running), "finished jobs cannot be cancelled");
        assert!(!engine.cancel(999_999), "unknown ids cannot be cancelled");
    }

    #[test]
    fn cancelling_a_follower_leaves_the_shared_evaluation_alone() {
        let (engine, _cache, metrics) = engine(1, 8);
        let blocker = engine.submit(slow_request()).expect("accepted");
        let primary = engine.submit(explore_request()).expect("accepted");
        let follower = engine.submit(explore_request()).expect("accepted");
        let keeper = engine.submit(explore_request()).expect("accepted");
        assert_eq!(Metrics::get(&metrics.coalesced), 2);
        assert!(engine.cancel(follower), "queued follower is cancellable");
        assert_eq!(engine.status(follower).expect("exists").state, JobState::Cancelled);
        for id in [blocker, primary, keeper] {
            let snap = wait_done(&engine, id);
            assert_eq!(snap.state, JobState::Done);
        }
        assert_eq!(
            engine.status(follower).expect("exists").state,
            JobState::Cancelled,
            "a finished primary must not resurrect a cancelled follower"
        );
        assert!(engine.status(follower).expect("exists").result.is_none());
    }

    #[test]
    fn cancelling_a_queued_primary_promotes_its_first_follower() {
        let (engine, _cache, metrics) = engine(1, 8);
        let blocker = engine.submit(slow_request()).expect("accepted");
        let primary = engine.submit(explore_request()).expect("accepted");
        let f1 = engine.submit(explore_request()).expect("accepted");
        let f2 = engine.submit(explore_request()).expect("accepted");
        if !engine.cancel(primary) {
            // The worker already grabbed the primary (blocker finished
            // first) — nothing to promote; everyone just completes.
            for id in [blocker, primary, f1, f2] {
                assert_eq!(wait_done(&engine, id).state, JobState::Done);
            }
            return;
        }
        assert_eq!(engine.status(primary).expect("exists").state, JobState::Cancelled);
        let s1 = wait_done(&engine, f1);
        let s2 = wait_done(&engine, f2);
        assert_eq!(s1.state, JobState::Done, "promoted follower still evaluates");
        assert_eq!(s2.state, JobState::Done);
        assert_eq!(s1.result, s2.result, "byte-identical");
        wait_done(&engine, blocker);
        assert_eq!(
            Metrics::get(&metrics.evaluated),
            2,
            "promotion keeps it at one shared evaluation"
        );
    }

    #[test]
    fn drain_finishes_accepted_work_then_rejects() {
        let (engine, _cache, metrics) = engine(2, 16);
        // Distinct seeds so drain exercises real queue work, not coalescing.
        let ids: Vec<u64> = (0..6)
            .map(|seed| {
                let req = JobRequest::from_json_text(&format!(
                    r#"{{"kind":"explore","model":{{"builtin":"xstream_pipeline"}},"seed":{seed}}}"#
                ))
                .expect("request");
                engine.submit(req).expect("accepted")
            })
            .collect();
        engine.shutdown_and_drain();
        for id in ids {
            let snap = engine.status(id).expect("job exists");
            assert_eq!(snap.state, JobState::Done, "drain must finish accepted jobs");
        }
        assert_eq!(engine.submit(explore_request()), Err(SubmitError::ShuttingDown));
        assert_eq!(Metrics::get(&metrics.rejected_shutdown), 1);
        assert_eq!(Metrics::get(&metrics.done), 6);
        assert_eq!(engine.queue_depth(), 0);
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("multival-svc-job-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journal_replay_restores_done_jobs_and_reruns_interrupted_ones() {
        let dir = temp_dir("replay");
        let cache_dir = dir.join("cache");
        let done_body;
        let done_id;
        let pending_id;
        {
            // First incarnation: one job completes, one is accepted but
            // "crashes" before a worker touches it (we simulate the crash
            // by writing its Submit record without ever enqueuing it).
            let cache = Arc::new(ResultCache::new(16, Some(cache_dir.clone())).expect("cache"));
            let metrics = Arc::new(Metrics::default());
            let (journal, replayed) = Journal::open(&dir).expect("journal");
            assert!(replayed.is_empty());
            let journal = Arc::new(journal);
            let engine = JobEngine::with_journal(
                1,
                8,
                1,
                cache,
                metrics,
                Some(Arc::clone(&journal)),
                Vec::new(),
            );
            done_id = engine.submit(explore_request()).expect("accepted");
            let snap = wait_done(&engine, done_id);
            assert_eq!(snap.state, JobState::Done);
            done_body = snap.result.expect("body");
            pending_id = done_id + 1;
            journal.append_sync(&Record::Submit {
                id: pending_id,
                canonical: slow_request().canonical(),
            });
            engine.shutdown_and_drain();
        }
        // Second incarnation: same journal dir, same cache dir.
        let cache = Arc::new(ResultCache::new(16, Some(cache_dir)).expect("cache"));
        let metrics = Arc::new(Metrics::default());
        let (journal, replayed) = Journal::open(&dir).expect("journal");
        assert!(!replayed.is_empty());
        let engine = JobEngine::with_journal(
            1,
            8,
            1,
            cache,
            Arc::clone(&metrics),
            Some(Arc::new(journal)),
            replayed,
        );
        assert_eq!(Metrics::get(&metrics.recovered), 2);
        let restored = engine.status(done_id).expect("done job survives restart");
        assert_eq!(restored.state, JobState::Done);
        assert!(restored.cached, "restored from the disk cache tier");
        assert_eq!(restored.result.as_deref(), Some(done_body.as_str()), "byte-identical");
        let rerun = wait_done(&engine, pending_id);
        assert_eq!(rerun.state, JobState::Done, "interrupted job re-runs to completion");
        // Fresh ids continue past the replayed ones.
        let fresh = engine.submit(explore_request()).expect("accepted");
        assert!(fresh > pending_id);
        let _ = std::fs::remove_dir_all(dir);
    }
}
