//! The `explore-space` sweep driver: expand a design-space spec into
//! canonical `sweep` job requests, evaluate them through the job engine —
//! in-process or against a live `serve` endpoint over the HTTP API — and
//! report per-point measures plus the accuracy-vs-peak-states Pareto front.
//!
//! Determinism contract: the expansion order, the per-point result bodies,
//! and the rendered report are byte-identical across worker counts, across
//! in-process vs HTTP submission, and across cache states (results carry no
//! timestamps). Re-running a sweep therefore re-hits the content-addressed
//! cache point by point: give the driver a `--cache-dir` (or point it at a
//! long-lived `serve`) and a resumed sweep only computes new points.
//!
//! Spec format: a TOML subset (`key = value` lines, `[base]` / `[axes]`
//! tables, strings/numbers/booleans and single-line arrays, `#` comments)
//! or the equivalent JSON object. `axes` entries are swept as a full cross
//! product, last axis fastest, axes in alphabetical key order:
//!
//! ```toml
//! name = "tiny"
//! model = "xstream_pipeline"
//!
//! [base]
//! transfer_rate = 4.0
//!
//! [axes]
//! delay = ["erlang:1", "erlang:2"]
//! push_capacity = [1, 2]
//! ```

use crate::cache::ResultCache;
use crate::job::{JobEngine, JobState, SubmitError};
use crate::json::{parse, Json};
use crate::metrics::Metrics;
use crate::request::JobRequest;
use multival::cli::CmdStatus;
use multival::report::{SweepReport, SweepRow, SweepRowStatus};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// The sweepable parameter keys, in canonical (alphabetical) order.
pub const PARAM_KEYS: [&str; 8] = [
    "consumer_rate",
    "credit_rate",
    "delay",
    "pop_capacity",
    "producer_rate",
    "push_capacity",
    "scheduler",
    "transfer_rate",
];

/// A validated sweep spec: base configuration plus axes to cross.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Spec name (reported, not part of any cache key).
    pub name: String,
    /// Swept model; only `xstream_pipeline` today.
    pub model: String,
    /// Fixed parameter assignments, sorted by key.
    pub base: Vec<(String, Json)>,
    /// Axes to cross, sorted by key; each axis is a non-empty value list
    /// swept in the order written.
    pub axes: Vec<(String, Vec<Json>)>,
}

/// One expanded point: its human label (the axis assignments) and the
/// canonical job request it evaluates to.
#[derive(Debug, Clone)]
pub struct SweepPointSpec {
    /// Axis assignments in axis order, e.g. `delay=erlang:4 push_capacity=2`.
    pub label: String,
    /// The fully resolved request (the cache key is its canonical text).
    pub request: JobRequest,
}

/// One evaluated point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Axis assignments, as in [`SweepPointSpec`].
    pub label: String,
    /// Canonical request text (the cache key).
    pub canonical: String,
    /// The result body, or the evaluation error (budget trips carry the
    /// `Budget exceeded:` prefix).
    pub outcome: Result<Json, String>,
}

/// How to evaluate the expanded points.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Evaluation threads for the in-process engine (min 1).
    pub workers: usize,
    /// Submit over HTTP to this `host:port` instead of in-process.
    pub endpoint: Option<String>,
    /// Disk tier for the in-process result cache — re-running the sweep
    /// with the same dir only computes new points.
    pub cache_dir: Option<PathBuf>,
    /// Per-point CTMC state cap; a tripped point reports as partial and the
    /// run exits 3.
    pub max_states: Option<usize>,
}

/// The outcome of one driver run.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Spec name.
    pub name: String,
    /// Points in expansion order.
    pub points: Vec<PointResult>,
    /// Indices of the accuracy-vs-peak-states Pareto front.
    pub front: Vec<usize>,
    /// Worst per-point status: budget trips exit 3, other failures exit 2.
    pub status: CmdStatus,
    /// Jobs actually evaluated by the in-process engine (0 over HTTP —
    /// read the server's `/v1/metrics` instead).
    pub evaluated: u64,
    /// In-process cache hits (memory + disk).
    pub cache_hits: u64,
}

impl SweepSpec {
    /// Parses and validates a spec from TOML-subset or JSON text (JSON if
    /// the first non-space character is `{`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line or field.
    pub fn parse(text: &str) -> Result<SweepSpec, String> {
        let v = if text.trim_start().starts_with('{') {
            parse(text).map_err(|e| e.to_string())?
        } else {
            toml_to_json(text)?
        };
        let Json::Obj(members) = &v else {
            return Err("spec must be a table/object".to_owned());
        };
        for (k, _) in members {
            if !matches!(k.as_str(), "name" | "model" | "base" | "axes") {
                return Err(format!("unknown spec key `{k}` (expected name, model, base, axes)"));
            }
        }
        let name = match v.get("name") {
            None => "sweep".to_owned(),
            Some(Json::Str(s)) if !s.is_empty() => s.clone(),
            Some(_) => return Err("`name` must be a non-empty string".to_owned()),
        };
        let model = match v.get("model") {
            None => "xstream_pipeline".to_owned(),
            Some(Json::Str(s)) => s.clone(),
            Some(_) => return Err("`model` must be a string".to_owned()),
        };
        if model != "xstream_pipeline" {
            return Err(format!(
                "explore-space sweeps the `xstream_pipeline` model only, got `{model}`"
            ));
        }
        let mut base: Vec<(String, Json)> = Vec::new();
        if let Some(bv) = v.get("base") {
            let Json::Obj(bm) = bv else { return Err("`base` must be a table".to_owned()) };
            for (k, val) in bm {
                check_param(k)?;
                check_scalar(k, val)?;
                base.push((k.clone(), val.clone()));
            }
        }
        base.sort_by(|a, b| a.0.cmp(&b.0));
        let axes_v = v.get("axes").ok_or("`axes` is required (a table of key = [values])")?;
        let Json::Obj(am) = axes_v else { return Err("`axes` must be a table".to_owned()) };
        let mut axes: Vec<(String, Vec<Json>)> = Vec::new();
        for (k, val) in am {
            check_param(k)?;
            if base.iter().any(|(bk, _)| bk == k) {
                return Err(format!("`{k}` appears in both `base` and `axes`"));
            }
            let Json::Arr(items) = val else {
                return Err(format!("axis `{k}` must be an array of values"));
            };
            if items.is_empty() {
                return Err(format!("axis `{k}` must not be empty"));
            }
            for item in items {
                check_scalar(k, item)?;
            }
            axes.push((k.clone(), items.clone()));
        }
        if axes.is_empty() {
            return Err("`axes` must name at least one axis".to_owned());
        }
        axes.sort_by(|a, b| a.0.cmp(&b.0));
        for w in axes.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(format!("axis `{}` is listed twice", w[0].0));
            }
        }
        Ok(SweepSpec { name, model, base, axes })
    }

    /// Size of the cross product.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.axes.iter().map(|(_, vs)| vs.len()).product()
    }

    /// Expands the cross product into canonical job requests, in
    /// deterministic order: axes alphabetical, last axis fastest.
    ///
    /// # Errors
    ///
    /// Returns the request-layer validation message for a bad point (e.g.
    /// an out-of-range capacity in an axis value).
    pub fn points(&self, max_states: Option<usize>) -> Result<Vec<SweepPointSpec>, String> {
        let total = self.num_points();
        let mut out = Vec::with_capacity(total);
        for idx in 0..total {
            let mut sweep: Vec<(String, Json)> = self.base.clone();
            let mut label = String::new();
            let mut divisor = total;
            for (key, vals) in &self.axes {
                divisor /= vals.len();
                let value = &vals[(idx / divisor) % vals.len()];
                sweep.push((key.clone(), value.clone()));
                if !label.is_empty() {
                    label.push(' ');
                }
                label.push_str(key);
                label.push('=');
                label.push_str(&scalar_label(value));
            }
            let mut members = vec![
                ("kind".to_owned(), Json::str("sweep")),
                (
                    "model".to_owned(),
                    Json::Obj(vec![("builtin".to_owned(), Json::str(self.model.clone()))]),
                ),
                ("sweep".to_owned(), Json::Obj(sweep)),
            ];
            if let Some(cap) = max_states {
                members.push(("max_states".to_owned(), Json::num(cap as f64)));
            }
            let request = JobRequest::from_json(&Json::Obj(members))
                .map_err(|e| format!("point `{label}`: {e}"))?;
            out.push(SweepPointSpec { label, request });
        }
        Ok(out)
    }
}

fn check_param(key: &str) -> Result<(), String> {
    if PARAM_KEYS.contains(&key) {
        Ok(())
    } else {
        Err(format!("unknown parameter `{key}` (expected one of {})", PARAM_KEYS.join(", ")))
    }
}

fn check_scalar(key: &str, v: &Json) -> Result<(), String> {
    match v {
        Json::Str(_) | Json::Num(_) | Json::Bool(_) => Ok(()),
        _ => Err(format!("`{key}` values must be scalars")),
    }
}

fn scalar_label(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

/// Parses the spec's TOML subset into the equivalent JSON object: top-level
/// `key = value` lines plus `[section]` tables; values are quoted strings
/// (no escapes), numbers, booleans, and single-line arrays thereof.
fn toml_to_json(text: &str) -> Result<Json, String> {
    let mut top: Vec<(String, Json)> = Vec::new();
    let mut sections: Vec<(String, Vec<(String, Json)>)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("line {}: {msg}", i + 1);
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or_else(|| at("unterminated section header".to_owned()))?
                .trim();
            if name.is_empty() {
                return Err(at("empty section name".to_owned()));
            }
            sections.push((name.to_owned(), Vec::new()));
            continue;
        }
        let (key, value) =
            line.split_once('=').ok_or_else(|| at("expected `key = value`".to_owned()))?;
        let key = key.trim();
        if key.is_empty() {
            return Err(at("empty key".to_owned()));
        }
        let value = parse_toml_value(value.trim()).map_err(at)?;
        match sections.last_mut() {
            None => top.push((key.to_owned(), value)),
            Some((_, members)) => members.push((key.to_owned(), value)),
        }
    }
    for (name, members) in sections {
        top.push((name, Json::Obj(members)));
    }
    Ok(Json::Obj(top))
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_toml_value(s: &str) -> Result<Json, String> {
    if let Some(rest) = s.strip_prefix('[') {
        let inner = rest.strip_suffix(']').ok_or("unterminated array")?;
        let mut items = Vec::new();
        for part in split_commas(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_toml_scalar(part)?);
        }
        return Ok(Json::Arr(items));
    }
    parse_toml_scalar(s)
}

fn parse_toml_scalar(s: &str) -> Result<Json, String> {
    if let Some(rest) = s.strip_prefix('"') {
        let inner = rest.strip_suffix('"').ok_or(format!("unterminated string `{s}`"))?;
        if inner.contains('"') {
            return Err(format!("escapes/embedded quotes unsupported in `{s}`"));
        }
        return Ok(Json::str(inner));
    }
    match s {
        "true" => Ok(Json::Bool(true)),
        "false" => Ok(Json::Bool(false)),
        _ => {
            let x: f64 = s.parse().map_err(|_| format!("bad value `{s}`"))?;
            if !x.is_finite() {
                return Err(format!("non-finite value `{s}`"));
            }
            Ok(Json::num(x))
        }
    }
}

fn split_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut in_str = false;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Runs a sweep end to end: expand, evaluate (in-process or over HTTP),
/// compute the Pareto front and the overall status.
///
/// # Errors
///
/// Returns a message for infrastructure failures (bad spec point, engine
/// construction, endpoint unreachable). Per-*point* evaluation failures are
/// not errors: they land in [`PointResult::outcome`] and the run status.
pub fn run_explore_space(spec: &SweepSpec, options: &SweepOptions) -> Result<SweepRun, String> {
    let point_specs = spec.points(options.max_states)?;
    let (points, evaluated, cache_hits) = match &options.endpoint {
        None => run_in_process(&point_specs, options)?,
        Some(addr) => (run_against_endpoint(&point_specs, addr)?, 0, 0),
    };
    let front = pareto_front(&points);
    let mut status = CmdStatus::Ok;
    for p in &points {
        if let Err(e) = &p.outcome {
            status = status.worst(if e.starts_with("Budget exceeded") {
                CmdStatus::BudgetExceeded
            } else {
                CmdStatus::NotConverged
            });
        }
    }
    Ok(SweepRun { name: spec.name.clone(), points, front, status, evaluated, cache_hits })
}

/// Evaluates the points through a private in-process [`JobEngine`], so
/// identical points coalesce and an optional disk cache tier survives
/// re-runs.
fn run_in_process(
    points: &[SweepPointSpec],
    options: &SweepOptions,
) -> Result<(Vec<PointResult>, u64, u64), String> {
    let cache = Arc::new(
        ResultCache::new(points.len().max(64), options.cache_dir.clone())
            .map_err(|e| format!("cache: {e}"))?,
    );
    let metrics = Arc::new(Metrics::default());
    let workers = options.workers.max(1);
    let engine = JobEngine::new(
        workers,
        points.len() + 1,
        workers,
        Arc::clone(&cache),
        Arc::clone(&metrics),
    );
    let mut ids = Vec::with_capacity(points.len());
    for p in points {
        let id = engine.submit(p.request.clone()).map_err(|e| match e {
            SubmitError::QueueFull => "submit: queue full".to_owned(),
            SubmitError::ShuttingDown => "submit: shutting down".to_owned(),
        })?;
        ids.push(id);
    }
    let mut out = Vec::with_capacity(points.len());
    for (p, id) in points.iter().zip(&ids) {
        let snap = loop {
            let snap = engine.status(*id).expect("submitted job is known");
            match snap.state {
                JobState::Done | JobState::Failed | JobState::Cancelled => break snap,
                JobState::Queued | JobState::Running => {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        };
        let outcome = match snap.state {
            JobState::Done => {
                parse(snap.result.as_deref().unwrap_or("null")).map_err(|e| e.to_string())
            }
            _ => Err(snap.error.unwrap_or_else(|| "evaluation failed".to_owned())),
        };
        out.push(PointResult { label: p.label.clone(), canonical: p.request.canonical(), outcome });
    }
    engine.shutdown_and_drain();
    let stats = cache.stats();
    Ok((out, Metrics::get(&metrics.evaluated), stats.mem_hits + stats.disk_hits))
}

/// Evaluates the points against a live `serve` endpoint: submit everything
/// first (the server coalesces and caches), then poll each job to a
/// terminal state.
fn run_against_endpoint(points: &[SweepPointSpec], addr: &str) -> Result<Vec<PointResult>, String> {
    let mut ids = Vec::with_capacity(points.len());
    for p in points {
        let (status, body) = http(addr, "POST", "/v1/jobs", &p.request.canonical())?;
        if status != 200 && status != 202 {
            return Err(format!("submit `{}`: HTTP {status}: {body}", p.label));
        }
        let id = parse(&body)
            .ok()
            .and_then(|v| v.get("id").and_then(Json::as_num))
            .ok_or_else(|| format!("submit `{}`: malformed response {body}", p.label))?;
        ids.push(id as u64);
    }
    let mut out = Vec::with_capacity(points.len());
    for (p, id) in points.iter().zip(&ids) {
        let outcome = loop {
            let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), "")?;
            if status != 200 {
                return Err(format!("poll `{}`: HTTP {status}: {body}", p.label));
            }
            let v = parse(&body).map_err(|e| format!("poll `{}`: {e}", p.label))?;
            match v.get("status").and_then(Json::as_str) {
                Some("done") => {
                    break Ok(v.get("result").cloned().unwrap_or(Json::Null));
                }
                Some("failed") | Some("cancelled") => {
                    break Err(v
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("evaluation failed")
                        .to_owned());
                }
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        };
        out.push(PointResult { label: p.label.clone(), canonical: p.request.canonical(), outcome });
    }
    Ok(out)
}

/// One blocking HTTP/1.1 exchange over a fresh connection.
fn http(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(300))).ok();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: sweep\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| format!("read from {addr}: {e}"))?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line from {addr}: {raw}"))?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    Ok((status, body))
}

/// Pareto membership on the two *deterministic* objectives, both minimized:
/// accuracy error and CTMC states. Wall time is deliberately excluded — it
/// would make front membership depend on machine load and cache state,
/// breaking the byte-identical report contract (timings are printed in a
/// separate, explicitly non-deterministic section).
fn pareto_front(points: &[PointResult]) -> Vec<usize> {
    let vals: Vec<Option<(f64, f64)>> = points
        .iter()
        .map(|p| {
            let o = p.outcome.as_ref().ok()?;
            Some((
                o.get("accuracy_error").and_then(Json::as_num)?,
                o.get("ctmc_states").and_then(Json::as_num)?,
            ))
        })
        .collect();
    let mut front = Vec::new();
    for (i, v) in vals.iter().enumerate() {
        let Some((ai, si)) = v else { continue };
        let dominated = vals.iter().enumerate().any(|(j, w)| {
            if i == j {
                return false;
            }
            let Some((aj, sj)) = w else { return false };
            (aj <= ai && sj < si) || (aj < ai && sj <= si)
        });
        if !dominated {
            front.push(i);
        }
    }
    front
}

impl SweepRun {
    /// Converts the run into the deterministic report (see
    /// [`SweepReport::render`]).
    pub fn report(&self) -> SweepReport {
        let rows = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let num = |o: &Json, key: &str| o.get(key).and_then(Json::as_num);
                match &p.outcome {
                    Ok(o) => SweepRow {
                        label: p.label.clone(),
                        delay: o.get("delay").and_then(Json::as_str).unwrap_or("?").to_owned(),
                        fit_k: num(o, "fit_k").map(|k| k as usize),
                        accuracy_error: num(o, "accuracy_error"),
                        ctmc_states: num(o, "ctmc_states").map(|s| s as usize),
                        throughput: num(o, "throughput"),
                        latency: num(o, "latency"),
                        tolerance_met: o
                            .get("fit_tolerance_met")
                            .and_then(Json::as_bool)
                            .unwrap_or(true),
                        on_front: self.front.contains(&i),
                        status: SweepRowStatus::Ok,
                    },
                    Err(e) => SweepRow {
                        label: p.label.clone(),
                        delay: "-".to_owned(),
                        fit_k: None,
                        accuracy_error: None,
                        ctmc_states: None,
                        throughput: None,
                        latency: None,
                        tolerance_met: true,
                        on_front: false,
                        status: if e.starts_with("Budget exceeded") {
                            SweepRowStatus::Partial(e.clone())
                        } else {
                            SweepRowStatus::Failed(e.clone())
                        },
                    },
                }
            })
            .collect();
        SweepReport { name: self.name.clone(), rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"
name = "tiny"
model = "xstream_pipeline"  # the only swept model today

[base]
transfer_rate = 4.0

[axes]
delay = ["erlang:1", "erlang:2"]
push_capacity = [1, 2]
"#;

    #[test]
    fn toml_spec_parses_and_expands_deterministically() {
        let spec = SweepSpec::parse(TINY).expect("parses");
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.num_points(), 4);
        let points = spec.points(None).expect("expands");
        let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        // Axes alphabetical (delay before push_capacity), last axis fastest.
        assert_eq!(
            labels,
            [
                "delay=erlang:1 push_capacity=1",
                "delay=erlang:1 push_capacity=2",
                "delay=erlang:2 push_capacity=1",
                "delay=erlang:2 push_capacity=2",
            ]
        );
        assert!(points[0].request.canonical().contains("\"transfer_rate\":4"));
    }

    #[test]
    fn json_spec_is_equivalent_to_toml() {
        let json = r#"{"name":"tiny","model":"xstream_pipeline",
            "base":{"transfer_rate":4},
            "axes":{"delay":["erlang:1","erlang:2"],"push_capacity":[1,2]}}"#;
        let a = SweepSpec::parse(TINY).expect("toml");
        let b = SweepSpec::parse(json).expect("json");
        assert_eq!(a, b);
    }

    #[test]
    fn spec_rejects_malformed() {
        for bad in [
            "",                                                                  // no axes
            "[axes]\n",                                                          // empty axes table
            "[axes]\nbogus = [1]\n",          // unknown parameter
            "[axes]\ndelay = []\n",           // empty axis
            "[axes]\ndelay = \"erlang:1\"\n", // not an array
            "[base]\ndelay = \"exponential\"\n[axes]\ndelay = [\"erlang:1\"]\n", // both
            "typo = 1\n[axes]\ndelay = [\"erlang:1\"]\n", // unknown top-level
            "model = \"fame2_ping_pong\"\n[axes]\ndelay = [\"erlang:1\"]\n", // wrong model
            "[axes\ndelay = [\"erlang:1\"]\n", // bad header
            "[axes]\ndelay = [\"erlang:1\"\n", // unterminated array
        ] {
            assert!(SweepSpec::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn comments_and_strings_interact_correctly() {
        let spec = SweepSpec::parse(
            "[axes]\ndelay = [\"erlang:1\"] # trailing comment\n# full-line comment\n",
        )
        .expect("parses");
        assert_eq!(spec.num_points(), 1);
    }

    #[test]
    fn tiny_sweep_runs_in_process_and_finds_the_front() {
        let spec = SweepSpec::parse(TINY).expect("parses");
        let run = run_explore_space(&spec, &SweepOptions { workers: 2, ..Default::default() })
            .expect("runs");
        assert_eq!(run.status, CmdStatus::Ok);
        assert_eq!(run.points.len(), 4);
        assert!(run.points.iter().all(|p| p.outcome.is_ok()));
        assert!(!run.front.is_empty(), "some point is non-dominated");
        let text = run.report().render();
        assert!(text.contains("Pareto front"), "{text}");
        assert!(text.contains("4 points (4 ok, 0 partial, 0 failed)"), "{text}");
    }

    #[test]
    fn budget_trips_mark_points_partial_and_exit_3() {
        let spec = SweepSpec::parse(TINY).expect("parses");
        // erlang:2 at push_capacity 2 needs the most states; cap below it.
        let full = run_explore_space(&spec, &SweepOptions { workers: 1, ..Default::default() })
            .expect("runs");
        let sizes: Vec<f64> = full
            .points
            .iter()
            .map(|p| {
                p.outcome
                    .as_ref()
                    .expect("ok")
                    .get("ctmc_states")
                    .and_then(Json::as_num)
                    .expect("states")
            })
            .collect();
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        let cap = (max - 1.0) as usize;
        let run = run_explore_space(
            &spec,
            &SweepOptions { workers: 1, max_states: Some(cap), ..Default::default() },
        )
        .expect("runs");
        assert_eq!(run.status, CmdStatus::BudgetExceeded);
        let partial = run.points.iter().filter(|p| p.outcome.is_err()).count();
        assert!(partial >= 1 && partial < run.points.len(), "partial {partial}");
        let text = run.report().render();
        assert!(text.contains("partial"), "{text}");
        assert!(text.contains("Budget exceeded"), "{text}");
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        let mk = |label: &str, err: f64, states: f64| PointResult {
            label: label.to_owned(),
            canonical: String::new(),
            outcome: Ok(Json::Obj(vec![
                ("accuracy_error".to_owned(), Json::num(err)),
                ("ctmc_states".to_owned(), Json::num(states)),
            ])),
        };
        let points = vec![
            mk("a", 0.1, 10.0),  // front
            mk("b", 0.05, 20.0), // front
            mk("c", 0.1, 20.0),  // dominated by both
            PointResult {
                label: "d".to_owned(),
                canonical: String::new(),
                outcome: Err("Budget exceeded: too big".to_owned()),
            },
        ];
        assert_eq!(pareto_front(&points), vec![0, 1]);
    }
}
