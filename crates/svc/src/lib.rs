//! `multival-svc` — the long-running evaluation service for the multival
//! flow.
//!
//! The library layers, bottom up:
//!
//! 1. [`hash`] + [`json`] — FNV-1a content addressing over a canonical,
//!    deterministic JSON codec (no external dependencies).
//! 2. [`cache`] — a sharded in-memory LRU tier over an optional on-disk
//!    tier, keyed by canonical request bytes.
//! 3. [`request`] + [`job`] — parsed job requests, the bounded submission
//!    queue, the worker pool, in-flight coalescing, cancellation, and
//!    graceful drain.
//! 4. [`journal`] — the append-only, checksummed job journal that makes
//!    accepted work survive a crash (`multival serve --journal`).
//! 5. [`http`] + [`evloop`] + [`server`] — a std-only HTTP/1.1 JSON API
//!    (`POST /v1/jobs`, `GET /v1/jobs/{id}`, `GET /v1/metrics`,
//!    `GET /v1/healthz`) served by a readiness-based `poll(2)` event loop.
//! 6. [`sweep`] — the `explore-space` design-space driver: expand a sweep
//!    spec into canonical `sweep` jobs, evaluate them in-process or against
//!    a live endpoint, report the accuracy-vs-peak-states Pareto front.
//!
//! The crate also owns the `multival` binary: the service needs the whole
//! flow facade, so the binary lives above `multival` (the core crate)
//! rather than inside it.
//!
//! Determinism is the design invariant throughout: identical requests
//! produce byte-identical response bodies regardless of worker counts,
//! submission order, or whether the answer came from the cache.

#![warn(missing_docs)]

pub mod cache;
#[cfg(unix)]
pub mod evloop;
pub mod hash;
pub mod http;
pub mod job;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod request;
pub mod server;
pub mod sweep;

pub use cache::{CacheStats, ResultCache};
pub use job::{JobEngine, JobSnapshot, JobState, SubmitError};
pub use journal::{Journal, Record};
pub use request::JobRequest;
pub use server::{serve, ServerConfig, ServerHandle};
pub use sweep::{run_explore_space, SweepOptions, SweepRun, SweepSpec};
