//! `svc::evloop` — a readiness-based event loop over `poll(2)`.
//!
//! The serving core runs a handful of event threads, each owning a private
//! set of nonblocking connections and sharing the nonblocking listener.
//! Every thread polls `{listener} ∪ {its connections}`; readiness drives an
//! incremental HTTP parser ([`crate::http::Parser`]) on reads and a
//! partial-write cursor on writes, so thousands of concurrent connections
//! cost a few file descriptors and zero dedicated threads.
//!
//! The `poll(2)` shim is a thin std-only `extern "C"` declaration (the
//! same no-external-deps stance as the signal handling in the binary) —
//! there is no epoll registration state to keep consistent, and at a few
//! thousand descriptors per thread the O(n) scan is far from the
//! bottleneck (evaluating jobs is).
//!
//! Slowloris defence lives here: every connection carries a read deadline;
//! a client that has not produced a complete request by then gets `408
//! Request Timeout` and the slot back, instead of holding it forever.

use crate::http::{format_response, HttpRequest, Parser, Reply};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// The request handler: routes one parsed request to one reply. Shared by
/// every event thread.
pub type Handler = dyn Fn(&HttpRequest) -> Reply + Send + Sync;

/// Per-connection knobs of the event loop.
#[derive(Debug, Clone, Copy)]
pub struct EvloopConfig {
    /// A connection must deliver a complete request within this window or
    /// be answered `408` (slowloris guard).
    pub read_deadline: Duration,
}

impl Default for EvloopConfig {
    fn default() -> EvloopConfig {
        EvloopConfig { read_deadline: Duration::from_secs(10) }
    }
}

/// Grace period granted to flush a response after it is ready.
const WRITE_GRACE: Duration = Duration::from_secs(10);
/// Longest poll sleep; bounds shutdown latency and deadline resolution.
const MAX_POLL_MS: i32 = 50;

#[cfg(unix)]
mod sys {
    //! The `poll(2)` syscall shim: one `#[repr(C)]` struct and one extern
    //! declaration, nothing more.

    use std::io;

    /// Mirror of `struct pollfd`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        /// File descriptor to watch.
        pub fd: i32,
        /// Requested events (`POLLIN` / `POLLOUT`).
        pub events: i16,
        /// Kernel-reported ready events.
        pub revents: i16,
    }

    /// Readable (or a pending accept on a listener).
    pub const POLLIN: i16 = 0x001;
    /// Writable without blocking.
    pub const POLLOUT: i16 = 0x004;
    /// Error condition (always reported, never requested).
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up.
    pub const POLLHUP: i16 = 0x010;

    #[cfg(any(target_os = "linux", target_os = "android"))]
    type Nfds = std::os::raw::c_ulong;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    type Nfds = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: std::os::raw::c_int) -> std::os::raw::c_int;
    }

    /// Blocks until a descriptor is ready or `timeout_ms` elapses.
    /// `EINTR` is reported as zero ready descriptors, not an error.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd mirrors for the duration of the call.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) };
        if rc < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(rc as usize)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accumulating request bytes through the incremental parser.
    Reading,
    /// Flushing the response buffer.
    Writing,
}

struct Conn {
    stream: TcpStream,
    parser: Parser,
    state: ConnState,
    out: Vec<u8>,
    written: usize,
    deadline: Instant,
}

enum Step {
    Keep,
    Drop,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant, config: &EvloopConfig) -> Conn {
        Conn {
            stream,
            parser: Parser::default(),
            state: ConnState::Reading,
            out: Vec::new(),
            written: 0,
            deadline: now + config.read_deadline,
        }
    }

    fn wants(&self) -> i16 {
        match self.state {
            ConnState::Reading => sys::POLLIN,
            ConnState::Writing => sys::POLLOUT,
        }
    }

    /// Moves to the writing state with a formatted reply queued.
    fn respond(&mut self, reply: &Reply, now: Instant) {
        self.out = format_response(reply);
        self.written = 0;
        self.state = ConnState::Writing;
        self.deadline = now + WRITE_GRACE;
    }

    /// Drains readable bytes through the parser; may transition to
    /// writing (a complete request or a protocol error).
    fn on_readable(&mut self, handler: &Handler, now: Instant) -> Step {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer half-closed before completing a request; no
                    // response can be delivered reliably.
                    return Step::Drop;
                }
                Ok(n) => match self.parser.feed(&chunk[..n]) {
                    Ok(Some(request)) => {
                        let reply = handler(&request);
                        self.respond(&reply, now);
                        return self.on_writable();
                    }
                    Ok(None) => {}
                    Err(e) => {
                        self.respond(&Reply::new(e.status, error_body(&e.message)), now);
                        return self.on_writable();
                    }
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Step::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Step::Drop,
            }
        }
    }

    /// Pushes response bytes until done or the socket would block.
    fn on_writable(&mut self) -> Step {
        while self.written < self.out.len() {
            match self.stream.write(&self.out[self.written..]) {
                Ok(0) => return Step::Drop,
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Step::Keep,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Step::Drop,
            }
        }
        let _ = self.stream.flush();
        Step::Drop // one request per connection: close after the response
    }

    /// Deadline enforcement: a stalled reader gets `408`, a stalled
    /// writer is dropped.
    fn on_deadline(&mut self, now: Instant) -> Step {
        match self.state {
            ConnState::Reading => {
                self.respond(
                    &Reply::new(408, error_body("request not received within the read deadline")),
                    now,
                );
                self.on_writable()
            }
            ConnState::Writing => Step::Drop,
        }
    }
}

fn error_body(message: &str) -> String {
    crate::json::Json::Obj(vec![("error".to_owned(), crate::json::Json::str(message))]).to_string()
}

/// Runs one event thread until `shutdown` is set *and* its connections
/// have drained. Many threads may run this concurrently over the same
/// shared nonblocking listener — accepts race benignly (`WouldBlock`).
#[cfg(unix)]
pub fn run(
    listener: &TcpListener,
    handler: &Handler,
    shutdown: &AtomicBool,
    config: &EvloopConfig,
) {
    use std::os::unix::io::AsRawFd;

    let mut conns: Vec<Conn> = Vec::new();
    let mut fds: Vec<sys::PollFd> = Vec::new();
    loop {
        let stopping = shutdown.load(Ordering::SeqCst);
        if stopping && conns.is_empty() {
            return;
        }
        fds.clear();
        // Slot 0 is the listener (skipped once shutdown begins).
        let watch_listener = !stopping;
        if watch_listener {
            fds.push(sys::PollFd { fd: listener.as_raw_fd(), events: sys::POLLIN, revents: 0 });
        }
        let now = Instant::now();
        let mut timeout = MAX_POLL_MS;
        for c in &conns {
            let remaining = c.deadline.saturating_duration_since(now).as_millis() as i32;
            timeout = timeout.min(remaining.max(1));
            fds.push(sys::PollFd { fd: c.stream.as_raw_fd(), events: c.wants(), revents: 0 });
        }
        if sys::poll_fds(&mut fds, timeout).is_err() {
            // A failed poll with live connections would spin; back off.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        let now = Instant::now();
        // Process existing connections first (their indices line up with
        // the pollfd slice), then accept — fresh connections are polled on
        // the next iteration.
        let base = usize::from(watch_listener);
        let mut keep = Vec::with_capacity(conns.len());
        for (i, mut c) in conns.drain(..).enumerate() {
            let revents = fds[base + i].revents;
            let step =
                if revents & (sys::POLLERR | sys::POLLHUP) != 0 && c.state == ConnState::Reading {
                    // Half-close with queued bytes still surfaces POLLIN; a
                    // bare error/hangup on a reader is fatal.
                    if revents & sys::POLLIN != 0 {
                        c.on_readable(handler, now)
                    } else {
                        Step::Drop
                    }
                } else if revents & sys::POLLIN != 0 && c.state == ConnState::Reading {
                    c.on_readable(handler, now)
                } else if revents & (sys::POLLOUT | sys::POLLERR | sys::POLLHUP) != 0
                    && c.state == ConnState::Writing
                {
                    c.on_writable()
                } else if now >= c.deadline {
                    c.on_deadline(now)
                } else {
                    Step::Keep
                };
            if matches!(step, Step::Keep) {
                keep.push(c);
            }
        }
        conns = keep;
        if watch_listener && fds[0].revents & (sys::POLLIN | sys::POLLERR) != 0 {
            accept_ready(listener, &mut conns, now, config);
        }
    }
}

/// Accepts every pending connection (until `WouldBlock`), making each
/// nonblocking and registering it with a fresh parser and deadline.
#[cfg(unix)]
fn accept_ready(listener: &TcpListener, conns: &mut Vec<Conn>, now: Instant, cfg: &EvloopConfig) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_ok() {
                    conns.push(Conn::new(stream, now, cfg));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn spawn_loop(
        deadline: Duration,
    ) -> (std::net::SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let addr = listener.local_addr().expect("addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            let handler = |req: &HttpRequest| {
                Reply::new(200, format!("{{\"echo\":\"{} {}\"}}", req.method, req.path))
            };
            run(&listener, &handler, &flag, &EvloopConfig { read_deadline: deadline });
        });
        (addr, shutdown, handle)
    }

    fn finish(shutdown: &AtomicBool, handle: std::thread::JoinHandle<()>) {
        shutdown.store(true, Ordering::SeqCst);
        handle.join().expect("event thread exits");
    }

    #[test]
    fn serves_fragmented_requests() {
        let (addr, shutdown, handle) = spawn_loop(Duration::from_secs(5));
        let mut stream = TcpStream::connect(addr).expect("connect");
        // Dribble the request across writes with pauses: the incremental
        // parser must assemble it.
        for part in ["GET /v1/he", "althz HTT", "P/1.1\r\nHost: x", "\r\n\r\n"] {
            stream.write_all(part.as_bytes()).expect("write");
            std::thread::sleep(Duration::from_millis(20));
        }
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.ends_with("{\"echo\":\"GET /v1/healthz\"}"), "{response}");
        finish(&shutdown, handle);
    }

    #[test]
    fn stalled_connection_gets_408_not_a_held_slot() {
        let (addr, shutdown, handle) = spawn_loop(Duration::from_millis(150));
        let mut stalled = TcpStream::connect(addr).expect("connect");
        stalled.write_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\n").expect("write");
        // ... and never send the body.
        let mut response = String::new();
        stalled.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 408 "), "{response}");

        // The loop still serves a well-behaved client afterwards.
        let mut ok = TcpStream::connect(addr).expect("connect");
        ok.write_all(b"GET /ping HTTP/1.1\r\n\r\n").expect("write");
        let mut response = String::new();
        ok.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        finish(&shutdown, handle);
    }

    #[test]
    fn oversized_body_is_rejected_immediately() {
        let (addr, shutdown, handle) = spawn_loop(Duration::from_secs(5));
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 413 "), "{response}");
        finish(&shutdown, handle);
    }
}
