//! The HTTP server: a readiness-based event loop (a few threads polling
//! many nonblocking connections, see [`crate::evloop`]) and a tiny router
//! over the job engine.
//!
//! Endpoints:
//!
//! | Method + path        | Meaning                                       |
//! |----------------------|-----------------------------------------------|
//! | `POST /v1/jobs`      | Submit a job (`202` queued, `200` cache hit)  |
//! | `GET /v1/jobs/{id}`  | Poll one job                                  |
//! | `DELETE /v1/jobs/{id}` | Cancel a still-queued job                   |
//! | `GET /v1/metrics`    | Queue depth, counters, latency, cache stats   |
//! | `GET /v1/healthz`    | Liveness probe                                |
//!
//! Backpressure is explicit: a full queue answers `429` with a
//! `Retry-After` header and a structured error body. With `--journal` the
//! engine runs over an append-only record log and a restart replays it —
//! see [`crate::journal`].
//!
//! Shutdown is graceful: the event threads stop accepting, drain their
//! connections, and the engine finishes every accepted job before
//! [`ServerHandle::shutdown_and_drain`] returns its [`ServeStats`].

use crate::cache::ResultCache;
use crate::http::{HttpRequest, Reply};
use crate::job::{JobEngine, JobState, SubmitError};
use crate::journal::Journal;
use crate::json::Json;
use crate::metrics::Metrics;
use crate::request::JobRequest;
pub use multival::report::ServeStats;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything `multival serve` needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Evaluation worker threads.
    pub workers: usize,
    /// Bounded submission-queue capacity.
    pub queue_cap: usize,
    /// In-memory cache capacity (entries).
    pub cache_capacity: usize,
    /// Optional on-disk cache tier. Defaults to `<journal_dir>/cache` when
    /// a journal is configured, so recovery always has a disk tier.
    pub cache_dir: Option<PathBuf>,
    /// Monte-Carlo worker threads inside each evaluation.
    pub mc_workers: usize,
    /// Event-loop threads sharing the listener.
    pub event_threads: usize,
    /// Directory for the crash-recovery job journal (`None` disables it).
    pub journal_dir: Option<PathBuf>,
    /// Slowloris guard: a connection must deliver its request within this
    /// window or be answered `408`.
    pub read_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7171".to_owned(),
            workers: 2,
            queue_cap: 64,
            cache_capacity: 256,
            cache_dir: None,
            mc_workers: 2,
            event_threads: 2,
            journal_dir: None,
            read_deadline: Duration::from_secs(10),
        }
    }
}

struct Ctx {
    engine: JobEngine,
    cache: Arc<ResultCache>,
    metrics: Arc<Metrics>,
    journal: Option<Arc<Journal>>,
    started: Instant,
}

/// A running server. Dropping it without calling
/// [`ServerHandle::shutdown_and_drain`] still shuts the engine down (via
/// the engine's own `Drop`), but the graceful path returns the stats.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    event_threads: Vec<std::thread::JoinHandle<()>>,
    ctx: Arc<Ctx>,
}

impl ServerHandle {
    /// The actually bound address (resolves `:0` to the ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flags the event loops to stop; safe to call from a signal context
    /// follow-up thread. Does not wait.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Stops accepting, drains every in-flight connection, drains the job
    /// queue, and reports final statistics.
    pub fn shutdown_and_drain(mut self) -> ServeStats {
        self.request_shutdown();
        for t in self.event_threads.drain(..) {
            let _ = t.join();
        }
        self.ctx.engine.shutdown_and_drain();
        let cache = self.ctx.cache.stats();
        let m = &self.ctx.metrics;
        let count = |v: u64| usize::try_from(v).unwrap_or(usize::MAX);
        ServeStats {
            accepted: count(Metrics::get(&m.accepted)),
            done: count(Metrics::get(&m.done)),
            failed: count(Metrics::get(&m.failed)),
            rejected: count(m.rejected()),
            cancelled: count(Metrics::get(&m.cancelled)),
            coalesced: count(Metrics::get(&m.coalesced)),
            recovered: count(Metrics::get(&m.recovered)),
            cache_hits: count(cache.hits()),
            cache_misses: count(cache.misses),
            uptime: self.ctx.started.elapsed(),
        }
    }
}

/// Binds the listener and starts the event threads and worker pool. With
/// `journal_dir` set, replays the journal first: completed jobs come back
/// `done` from the disk cache; accepted-but-unfinished ones re-enqueue.
///
/// # Errors
///
/// Fails when the address cannot be bound, the cache directory cannot be
/// created, or the journal cannot be opened.
pub fn serve(config: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let cache_dir =
        config.cache_dir.clone().or_else(|| config.journal_dir.as_ref().map(|d| d.join("cache")));
    let cache = Arc::new(ResultCache::new(config.cache_capacity.max(1), cache_dir)?);
    let metrics = Arc::new(Metrics::default());
    let (journal, replayed) = match &config.journal_dir {
        Some(dir) => {
            let (journal, replayed) = Journal::open(dir)?;
            (Some(Arc::new(journal)), replayed)
        }
        None => (None, Vec::new()),
    };
    let ctx = Arc::new(Ctx {
        engine: JobEngine::with_journal(
            config.workers,
            config.queue_cap,
            config.mc_workers,
            Arc::clone(&cache),
            Arc::clone(&metrics),
            journal.clone(),
            replayed,
        ),
        cache,
        metrics,
        journal,
        started: Instant::now(),
    });
    let shutdown = Arc::new(AtomicBool::new(false));
    let event_threads = spawn_event_threads(listener, config, &ctx, &shutdown)?;
    Ok(ServerHandle { addr, shutdown, event_threads, ctx })
}

#[cfg(unix)]
fn spawn_event_threads(
    listener: TcpListener,
    config: &ServerConfig,
    ctx: &Arc<Ctx>,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<Vec<std::thread::JoinHandle<()>>> {
    let evcfg = crate::evloop::EvloopConfig { read_deadline: config.read_deadline };
    (0..config.event_threads.max(1))
        .map(|i| {
            let listener = listener.try_clone()?;
            let ctx = Arc::clone(ctx);
            let shutdown = Arc::clone(shutdown);
            std::thread::Builder::new().name(format!("svc-evloop-{i}")).spawn(move || {
                let handler = move |req: &HttpRequest| route(req, &ctx);
                crate::evloop::run(&listener, &handler, &shutdown, &evcfg);
            })
        })
        .collect()
}

/// Portable fallback (non-unix targets have no `poll(2)` shim): blocking
/// one-thread-per-connection serving with the same router and limits.
#[cfg(not(unix))]
fn spawn_event_threads(
    listener: TcpListener,
    config: &ServerConfig,
    ctx: &Arc<Ctx>,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<Vec<std::thread::JoinHandle<()>>> {
    let read_deadline = config.read_deadline;
    let ctx = Arc::clone(ctx);
    let shutdown = Arc::clone(shutdown);
    let accept = std::thread::Builder::new().name("svc-accept".to_owned()).spawn(move || {
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let ctx = Arc::clone(&ctx);
                    if let Ok(handle) = std::thread::Builder::new()
                        .name("svc-conn".to_owned())
                        .spawn(move || handle_connection_blocking(stream, &ctx, read_deadline))
                    {
                        connections.push(handle);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
            connections.retain(|c| !c.is_finished());
        }
        for c in connections {
            let _ = c.join();
        }
    })?;
    Ok(vec![accept])
}

#[cfg(not(unix))]
fn handle_connection_blocking(
    stream: std::net::TcpStream,
    ctx: &Ctx,
    read_deadline: Duration,
) -> () {
    use crate::http::{format_response, read_request};
    use std::io::Write;

    let _ = stream.set_read_timeout(Some(read_deadline));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nonblocking(false);
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let reply = match read_request(&mut reader) {
        Ok(req) => route(&req, ctx),
        Err(e) => Reply::new(e.status, error_body(&e.message)),
    };
    let _ = writer.write_all(&format_response(&reply));
    let _ = writer.flush();
}

fn error_body(message: &str) -> String {
    Json::Obj(vec![("error".to_owned(), Json::str(message))]).to_string()
}

fn route(req: &HttpRequest, ctx: &Ctx) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/jobs") => submit(req, ctx),
        ("GET", "/v1/healthz") => Reply::new(200, "{\"status\":\"ok\"}"),
        ("GET", "/v1/metrics") => Reply::new(200, metrics_body(ctx)),
        (method, path) => {
            if let Some(id) = path.strip_prefix("/v1/jobs/").and_then(|s| s.parse::<u64>().ok()) {
                match method {
                    "GET" => job_status(id, ctx),
                    "DELETE" => {
                        let cancelled = ctx.engine.cancel(id);
                        Reply::new(
                            200,
                            Json::Obj(vec![("cancelled".to_owned(), Json::Bool(cancelled))])
                                .to_string(),
                        )
                    }
                    _ => Reply::new(405, error_body("use GET or DELETE on /v1/jobs/{id}")),
                }
            } else {
                Reply::new(404, error_body(&format!("no route for {method} {path}")))
            }
        }
    }
}

/// Seconds a `429`-rejected client is told to wait before retrying.
const RETRY_AFTER_SECS: u64 = 1;

fn submit(req: &HttpRequest, ctx: &Ctx) -> Reply {
    let parsed = match JobRequest::from_json_text(&req.body) {
        Ok(p) => p,
        Err(message) => return Reply::new(400, error_body(&message)),
    };
    match ctx.engine.submit(parsed) {
        Ok(id) => {
            let snap = ctx.engine.status(id).expect("just submitted");
            let status = if snap.state == JobState::Done { 200 } else { 202 };
            let body = Json::Obj(vec![
                ("id".to_owned(), Json::num(id as f64)),
                ("status".to_owned(), Json::str(snap.state.name())),
            ])
            .to_string();
            Reply::new(status, body)
        }
        Err(SubmitError::QueueFull) => {
            let body = Json::Obj(vec![
                ("error".to_owned(), Json::str("queue full; retry later")),
                ("retry_after_secs".to_owned(), Json::num(RETRY_AFTER_SECS as f64)),
            ])
            .to_string();
            Reply::new(429, body).with_header("Retry-After", RETRY_AFTER_SECS.to_string())
        }
        Err(SubmitError::ShuttingDown) => Reply::new(503, error_body("shutting down")),
    }
}

/// The `GET /v1/jobs/{id}` body deliberately excludes the job id (it is in
/// the URL) and the cache-hit flag (visible in `/v1/metrics` instead), so
/// identical requests yield *byte-identical* bodies whether computed,
/// cached, coalesced, or recovered from the journal.
fn job_status(id: u64, ctx: &Ctx) -> Reply {
    let Some(snap) = ctx.engine.status(id) else {
        return Reply::new(404, error_body(&format!("no job {id}")));
    };
    let body = match snap.state {
        JobState::Done => format!(
            "{{\"result\":{},\"status\":\"done\"}}",
            snap.result.as_deref().unwrap_or("null")
        ),
        JobState::Failed => Json::Obj(vec![
            ("error".to_owned(), Json::str(snap.error.as_deref().unwrap_or("unknown"))),
            ("status".to_owned(), Json::str("failed")),
        ])
        .to_string(),
        other => format!("{{\"status\":\"{}\"}}", other.name()),
    };
    Reply::new(200, body)
}

fn metrics_body(ctx: &Ctx) -> String {
    let m = &ctx.metrics;
    let c = ctx.cache.stats();
    let counter = |v: u64| Json::num(v as f64);
    let journal = match &ctx.journal {
        Some(j) => Json::Obj(vec![
            ("records_appended".to_owned(), counter(j.records_appended())),
            ("fsyncs".to_owned(), counter(j.fsyncs())),
        ]),
        None => Json::Null,
    };
    Json::Obj(vec![
        ("queue_depth".to_owned(), counter(ctx.engine.queue_depth() as u64)),
        (
            "jobs".to_owned(),
            Json::Obj(vec![
                ("accepted".to_owned(), counter(Metrics::get(&m.accepted))),
                ("queued".to_owned(), counter(Metrics::get(&m.queued))),
                ("cache_served".to_owned(), counter(Metrics::get(&m.cache_served))),
                ("coalesced".to_owned(), counter(Metrics::get(&m.coalesced))),
                ("recovered".to_owned(), counter(Metrics::get(&m.recovered))),
                ("evaluated".to_owned(), counter(Metrics::get(&m.evaluated))),
                ("done".to_owned(), counter(Metrics::get(&m.done))),
                ("failed".to_owned(), counter(Metrics::get(&m.failed))),
                ("rejected".to_owned(), counter(m.rejected())),
                ("rejected_queue_full".to_owned(), counter(Metrics::get(&m.rejected_queue_full))),
                ("rejected_shutdown".to_owned(), counter(Metrics::get(&m.rejected_shutdown))),
                ("cancelled".to_owned(), counter(Metrics::get(&m.cancelled))),
            ]),
        ),
        (
            "latency_us".to_owned(),
            Json::Obj(vec![
                ("count".to_owned(), counter(m.latency.count())),
                ("mean".to_owned(), counter(m.latency.mean_us())),
                ("p50".to_owned(), counter(m.latency.percentile_us(50.0))),
                ("p90".to_owned(), counter(m.latency.percentile_us(90.0))),
                ("p99".to_owned(), counter(m.latency.percentile_us(99.0))),
            ]),
        ),
        (
            "cache".to_owned(),
            Json::Obj(vec![
                ("mem_hits".to_owned(), counter(c.mem_hits)),
                ("disk_hits".to_owned(), counter(c.disk_hits)),
                ("misses".to_owned(), counter(c.misses)),
                ("evictions".to_owned(), counter(c.evictions)),
                ("resident".to_owned(), counter(c.resident)),
            ]),
        ),
        ("journal".to_owned(), journal),
    ])
    .to_string()
}
