//! The HTTP server: a nonblocking accept loop, one short-lived thread per
//! connection, and a tiny router over the job engine.
//!
//! Endpoints:
//!
//! | Method + path        | Meaning                                       |
//! |----------------------|-----------------------------------------------|
//! | `POST /v1/jobs`      | Submit a job (`202` queued, `200` cache hit)  |
//! | `GET /v1/jobs/{id}`  | Poll one job                                  |
//! | `DELETE /v1/jobs/{id}` | Cancel a still-queued job                   |
//! | `GET /v1/metrics`    | Queue depth, counters, latency, cache stats   |
//! | `GET /v1/healthz`    | Liveness probe                                |
//!
//! Shutdown is graceful: the accept loop stops, in-flight connections are
//! joined, and the engine drains every accepted job before
//! [`ServerHandle::shutdown_and_drain`] returns its [`ServeStats`].

use crate::cache::ResultCache;
use crate::http::{read_request, write_response, HttpRequest};
use crate::job::{JobEngine, JobState, SubmitError};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::request::JobRequest;
pub use multival::report::ServeStats;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything `multival serve` needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Evaluation worker threads.
    pub workers: usize,
    /// Bounded submission-queue capacity.
    pub queue_cap: usize,
    /// In-memory cache capacity (entries).
    pub cache_capacity: usize,
    /// Optional on-disk cache tier.
    pub cache_dir: Option<PathBuf>,
    /// Monte-Carlo worker threads inside each evaluation.
    pub mc_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7171".to_owned(),
            workers: 2,
            queue_cap: 64,
            cache_capacity: 256,
            cache_dir: None,
            mc_workers: 2,
        }
    }
}

struct Ctx {
    engine: JobEngine,
    cache: Arc<ResultCache>,
    metrics: Arc<Metrics>,
    started: Instant,
}

/// A running server. Dropping it without calling
/// [`ServerHandle::shutdown_and_drain`] still shuts the engine down (via
/// the engine's own `Drop`), but the graceful path returns the stats.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    ctx: Arc<Ctx>,
}

impl ServerHandle {
    /// The actually bound address (resolves `:0` to the ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flags the accept loop to stop; safe to call from a signal context
    /// follow-up thread. Does not wait.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Stops accepting, joins every in-flight connection, drains the job
    /// queue, and reports final statistics.
    pub fn shutdown_and_drain(mut self) -> ServeStats {
        self.request_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.ctx.engine.shutdown_and_drain();
        let cache = self.ctx.cache.stats();
        let count = |v: u64| usize::try_from(v).unwrap_or(usize::MAX);
        ServeStats {
            accepted: count(Metrics::get(&self.ctx.metrics.accepted)),
            done: count(Metrics::get(&self.ctx.metrics.done)),
            failed: count(Metrics::get(&self.ctx.metrics.failed)),
            rejected: count(Metrics::get(&self.ctx.metrics.rejected)),
            cancelled: count(Metrics::get(&self.ctx.metrics.cancelled)),
            cache_hits: count(cache.hits()),
            cache_misses: count(cache.misses),
            uptime: self.ctx.started.elapsed(),
        }
    }
}

/// Binds the listener and starts the accept loop and worker pool.
///
/// # Errors
///
/// Fails when the address cannot be bound or the cache directory cannot
/// be created.
pub fn serve(config: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let cache = Arc::new(ResultCache::new(config.cache_capacity.max(1), config.cache_dir.clone())?);
    let metrics = Arc::new(Metrics::default());
    let ctx = Arc::new(Ctx {
        engine: JobEngine::new(
            config.workers,
            config.queue_cap,
            config.mc_workers,
            Arc::clone(&cache),
            Arc::clone(&metrics),
        ),
        cache,
        metrics,
        started: Instant::now(),
    });
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let ctx = Arc::clone(&ctx);
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("svc-accept".to_owned())
            .spawn(move || accept_loop(&listener, &ctx, &shutdown))?
    };
    Ok(ServerHandle { addr, shutdown, accept_thread: Some(accept_thread), ctx })
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<Ctx>, shutdown: &Arc<AtomicBool>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let ctx = Arc::clone(ctx);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("svc-conn".to_owned())
                    .spawn(move || handle_connection(stream, &ctx))
                {
                    connections.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
        connections.retain(|c| !c.is_finished());
    }
    for c in connections {
        let _ = c.join();
    }
}

fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    // A stalled client must not wedge the connection thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nonblocking(false);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let (status, body) = match read_request(&mut reader) {
        Ok(req) => route(&req, ctx),
        Err(e) => (e.status, error_body(&e.message)),
    };
    let _ = write_response(&mut writer, status, &body);
}

fn error_body(message: &str) -> String {
    Json::Obj(vec![("error".to_owned(), Json::str(message))]).to_string()
}

fn route(req: &HttpRequest, ctx: &Ctx) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/jobs") => submit(req, ctx),
        ("GET", "/v1/healthz") => (200, "{\"status\":\"ok\"}".to_owned()),
        ("GET", "/v1/metrics") => (200, metrics_body(ctx)),
        (method, path) => {
            if let Some(id) = path.strip_prefix("/v1/jobs/").and_then(|s| s.parse::<u64>().ok()) {
                match method {
                    "GET" => job_status(id, ctx),
                    "DELETE" => {
                        let cancelled = ctx.engine.cancel(id);
                        (
                            200,
                            Json::Obj(vec![("cancelled".to_owned(), Json::Bool(cancelled))])
                                .to_string(),
                        )
                    }
                    _ => (405, error_body("use GET or DELETE on /v1/jobs/{id}")),
                }
            } else {
                (404, error_body(&format!("no route for {method} {path}")))
            }
        }
    }
}

fn submit(req: &HttpRequest, ctx: &Ctx) -> (u16, String) {
    let parsed = match JobRequest::from_json_text(&req.body) {
        Ok(p) => p,
        Err(message) => return (400, error_body(&message)),
    };
    match ctx.engine.submit(parsed) {
        Ok(id) => {
            let snap = ctx.engine.status(id).expect("just submitted");
            let status = if snap.state == JobState::Done { 200 } else { 202 };
            let body = Json::Obj(vec![
                ("id".to_owned(), Json::num(id as f64)),
                ("status".to_owned(), Json::str(snap.state.name())),
            ])
            .to_string();
            (status, body)
        }
        Err(SubmitError::QueueFull) => (429, error_body("queue full; retry later")),
        Err(SubmitError::ShuttingDown) => (503, error_body("shutting down")),
    }
}

/// The `GET /v1/jobs/{id}` body deliberately excludes the job id (it is in
/// the URL) and the cache-hit flag (visible in `/v1/metrics` instead), so
/// identical requests yield *byte-identical* bodies whether computed or
/// cached.
fn job_status(id: u64, ctx: &Ctx) -> (u16, String) {
    let Some(snap) = ctx.engine.status(id) else {
        return (404, error_body(&format!("no job {id}")));
    };
    let body = match snap.state {
        JobState::Done => format!(
            "{{\"result\":{},\"status\":\"done\"}}",
            snap.result.as_deref().unwrap_or("null")
        ),
        JobState::Failed => Json::Obj(vec![
            ("error".to_owned(), Json::str(snap.error.as_deref().unwrap_or("unknown"))),
            ("status".to_owned(), Json::str("failed")),
        ])
        .to_string(),
        other => format!("{{\"status\":\"{}\"}}", other.name()),
    };
    (200, body)
}

fn metrics_body(ctx: &Ctx) -> String {
    let m = &ctx.metrics;
    let c = ctx.cache.stats();
    let counter = |v: u64| Json::num(v as f64);
    Json::Obj(vec![
        ("queue_depth".to_owned(), counter(ctx.engine.queue_depth() as u64)),
        (
            "jobs".to_owned(),
            Json::Obj(vec![
                ("accepted".to_owned(), counter(Metrics::get(&m.accepted))),
                ("done".to_owned(), counter(Metrics::get(&m.done))),
                ("failed".to_owned(), counter(Metrics::get(&m.failed))),
                ("rejected".to_owned(), counter(Metrics::get(&m.rejected))),
                ("cancelled".to_owned(), counter(Metrics::get(&m.cancelled))),
            ]),
        ),
        (
            "latency_us".to_owned(),
            Json::Obj(vec![
                ("count".to_owned(), counter(m.latency.count())),
                ("mean".to_owned(), counter(m.latency.mean_us())),
                ("p50".to_owned(), counter(m.latency.percentile_us(50.0))),
                ("p90".to_owned(), counter(m.latency.percentile_us(90.0))),
                ("p99".to_owned(), counter(m.latency.percentile_us(99.0))),
            ]),
        ),
        (
            "cache".to_owned(),
            Json::Obj(vec![
                ("mem_hits".to_owned(), counter(c.mem_hits)),
                ("disk_hits".to_owned(), counter(c.disk_hits)),
                ("misses".to_owned(), counter(c.misses)),
                ("evictions".to_owned(), counter(c.evictions)),
                ("resident".to_owned(), counter(c.resident)),
            ]),
        ),
    ])
    .to_string()
}
