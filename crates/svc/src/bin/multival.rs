//! The `multival` command-line tool.
//!
//! Every verb except `serve` is a thin wrapper over `multival::cli`; the
//! exit code comes from the command's [`multival::cli::CmdStatus`] (0 ok,
//! 2 stopping rule not met, 3 budget exceeded, 1 usage/internal error).
//! `serve` starts the evaluation service from `multival_svc` and runs
//! until SIGTERM/SIGINT, then drains the job queue and prints the final
//! [`multival::report::ServeStats`]. `explore-space` runs the design-space
//! sweep driver from `multival_svc::sweep`: the deterministic report goes
//! to stdout, the (non-deterministic) timing line to stderr.

use multival::cli::{execute, parse_args, Command};
use multival_svc::server::{serve, ServerConfig};
use multival_svc::sweep::{run_explore_space, SweepOptions, SweepSpec};
use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Command::Serve {
        addr,
        cache_dir,
        workers,
        queue_cap,
        cache_capacity,
        journal,
        event_threads,
    } = &cmd
    {
        return run_serve(&ServerConfig {
            addr: addr.clone(),
            workers: *workers,
            queue_cap: *queue_cap,
            cache_capacity: *cache_capacity,
            cache_dir: cache_dir.as_ref().map(std::path::PathBuf::from),
            mc_workers: 2,
            event_threads: *event_threads,
            journal_dir: journal.as_ref().map(std::path::PathBuf::from),
            read_deadline: Duration::from_secs(10),
        });
    }
    if let Command::ExploreSpace { spec, workers, endpoint, cache_dir, max_states } = &cmd {
        return run_sweep(
            spec,
            &SweepOptions {
                workers: *workers,
                endpoint: endpoint.clone(),
                cache_dir: cache_dir.as_ref().map(std::path::PathBuf::from),
                max_states: *max_states,
            },
        );
    }
    match execute(&cmd) {
        Ok(output) => {
            print!("{output}");
            u8::try_from(output.status.exit_code()).map_or(ExitCode::FAILURE, ExitCode::from)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_sweep(spec_path: &str, options: &SweepOptions) -> ExitCode {
    let text = match std::fs::read_to_string(spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match SweepSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let started = Instant::now();
    let run = match run_explore_space(&spec, options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // stdout carries only the deterministic report (golden-comparable);
    // wall-clock timing goes to stderr.
    print!("{}", run.report().render());
    let secs = started.elapsed().as_secs_f64();
    eprintln!(
        "timing (non-deterministic): {} points in {secs:.2}s ({:.1} points/s), \
         {} evaluated, {} cache hits",
        run.points.len(),
        run.points.len() as f64 / secs.max(1e-9),
        run.evaluated,
        run.cache_hits
    );
    u8::try_from(run.status.exit_code()).map_or(ExitCode::FAILURE, ExitCode::from)
}

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: std::os::raw::c_int) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(
            signum: std::os::raw::c_int,
            handler: extern "C" fn(std::os::raw::c_int),
        ) -> usize;
    }
    const SIGINT: std::os::raw::c_int = 2;
    const SIGTERM: std::os::raw::c_int = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn run_serve(config: &ServerConfig) -> ExitCode {
    install_signal_handlers();
    let handle = match serve(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot start service on {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    // The smoke harness greps this line for the bound (possibly ephemeral)
    // port, so print and flush it before blocking.
    println!("multival-svc listening on http://{}", handle.addr());
    let _ = std::io::stdout().flush();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutting down: draining accepted jobs...");
    let stats = handle.shutdown_and_drain();
    print!("{}", stats.render());
    ExitCode::SUCCESS
}
