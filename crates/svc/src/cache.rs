//! Content-addressed result cache: an in-memory sharded LRU tier over an
//! optional on-disk tier.
//!
//! Keys are the *canonical* serialization of a job request (sorted object
//! keys, defaults filled in — see [`crate::request`]), values are finished
//! response bodies. The shard index and file name come from the FNV-1a hash
//! of the key; the full key is stored next to each entry and compared on
//! lookup, so a 64-bit hash collision degrades to a miss, never to a wrong
//! answer.
//!
//! Disk-tier files are written atomically (temp file + rename) with the
//! canonical key on the first line and the body after it, so a cache
//! directory survives service restarts and can be inspected with a pager.

use crate::hash::{fnv1a64, hex16};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counter snapshot for `/v1/metrics` and the shutdown report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub mem_hits: u64,
    /// Lookups answered from the disk tier (and promoted to memory).
    pub disk_hits: u64,
    /// Lookups answered by neither tier.
    pub misses: u64,
    /// In-memory entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident in memory.
    pub resident: u64,
}

impl CacheStats {
    /// Total hits over both tiers.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

/// One in-memory entry: the full canonical key (collision guard), the
/// response body, and a logical timestamp for LRU eviction.
struct Entry {
    key: String,
    value: String,
    used: u64,
}

struct Shard {
    entries: HashMap<u64, Vec<Entry>>,
    live: usize,
}

/// The two-tier cache. All methods take `&self`; sharded mutexes keep
/// concurrent workers out of each other's way.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    disk_dir: Option<PathBuf>,
    clock: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

const SHARDS: usize = 8;

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries in memory,
    /// optionally backed by a disk tier under `disk_dir` (created if
    /// missing).
    ///
    /// # Errors
    ///
    /// Fails when the disk directory cannot be created.
    pub fn new(capacity: usize, disk_dir: Option<PathBuf>) -> io::Result<ResultCache> {
        if let Some(dir) = &disk_dir {
            std::fs::create_dir_all(dir)?;
        }
        let per_shard_capacity = capacity.div_ceil(SHARDS).max(1);
        let shards =
            (0..SHARDS).map(|_| Mutex::new(Shard { entries: HashMap::new(), live: 0 })).collect();
        Ok(ResultCache {
            shards,
            per_shard_capacity,
            disk_dir,
            clock: AtomicU64::new(0),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// Looks up a canonical key: memory first, then disk (a disk hit is
    /// promoted into memory).
    #[must_use]
    pub fn get(&self, canonical_key: &str) -> Option<String> {
        let h = fnv1a64(canonical_key.as_bytes());
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut shard = self.shard(h).lock().expect("cache shard poisoned");
            if let Some(slot) = shard.entries.get_mut(&h) {
                if let Some(e) = slot.iter_mut().find(|e| e.key == canonical_key) {
                    e.used = now;
                    self.mem_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(e.value.clone());
                }
            }
        }
        if let Some(value) = self.disk_get(h, canonical_key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.insert_mem(h, canonical_key, &value, now);
            return Some(value);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a finished result under its canonical key in both tiers.
    pub fn put(&self, canonical_key: &str, value: &str) {
        let h = fnv1a64(canonical_key.as_bytes());
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.insert_mem(h, canonical_key, value, now);
        self.disk_put(h, canonical_key, value);
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let resident =
            self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").live as u64).sum();
        CacheStats {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident,
        }
    }

    fn shard(&self, h: u64) -> &Mutex<Shard> {
        // High bits pick the shard; the map inside still keys on the full
        // hash, so shard choice only affects lock contention.
        &self.shards[(h >> 56) as usize % SHARDS]
    }

    fn insert_mem(&self, h: u64, key: &str, value: &str, now: u64) {
        let mut shard = self.shard(h).lock().expect("cache shard poisoned");
        let slot = shard.entries.entry(h).or_default();
        if let Some(e) = slot.iter_mut().find(|e| e.key == key) {
            e.used = now;
            return;
        }
        slot.push(Entry { key: key.to_owned(), value: value.to_owned(), used: now });
        shard.live += 1;
        if shard.live > self.per_shard_capacity {
            // Evict the least-recently-used entry of this shard.
            let oldest = shard
                .entries
                .iter()
                .flat_map(|(h, slot)| slot.iter().map(move |e| (*h, e.used)))
                .min_by_key(|&(_, used)| used);
            if let Some((oh, oused)) = oldest {
                let mut evicted = false;
                let mut slot_empty = false;
                if let Some(oslot) = shard.entries.get_mut(&oh) {
                    if let Some(i) = oslot.iter().position(|e| e.used == oused) {
                        oslot.remove(i);
                        evicted = true;
                    }
                    slot_empty = oslot.is_empty();
                }
                if evicted {
                    shard.live -= 1;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                if slot_empty {
                    shard.entries.remove(&oh);
                }
            }
        }
    }

    fn disk_path(&self, h: u64) -> Option<PathBuf> {
        self.disk_dir.as_ref().map(|d| d.join(format!("{}.json", hex16(h))))
    }

    fn disk_get(&self, h: u64, key: &str) -> Option<String> {
        let path = self.disk_path(h)?;
        let text = std::fs::read_to_string(path).ok()?;
        let (stored_key, body) = text.split_once('\n')?;
        (stored_key == key).then(|| body.to_owned())
    }

    fn disk_put(&self, h: u64, key: &str, value: &str) {
        let Some(path) = self.disk_path(h) else { return };
        // Atomic publish: a reader either sees the whole file or none of it.
        let tmp = path.with_extension("tmp");
        let payload = format!("{key}\n{value}");
        if std::fs::write(&tmp, payload).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("multival-svc-cache-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_hits_and_misses() {
        let cache = ResultCache::new(16, None).expect("cache");
        assert_eq!(cache.get("k1"), None);
        cache.put("k1", "v1");
        assert_eq!(cache.get("k1").as_deref(), Some("v1"));
        let s = cache.stats();
        assert_eq!(s.mem_hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.resident, 1);
    }

    #[test]
    fn lru_eviction_is_bounded_and_counts() {
        // Tiny capacity: per-shard capacity is 1, so a shard holding two
        // keys must evict its older entry.
        let cache = ResultCache::new(1, None).expect("cache");
        for i in 0..64 {
            cache.put(&format!("key-{i}"), "v");
        }
        let s = cache.stats();
        assert!(s.resident <= SHARDS as u64, "resident {} > shard count", s.resident);
        assert!(s.evictions > 0);
    }

    #[test]
    fn disk_tier_survives_a_new_cache_instance() {
        let dir = temp_dir("persist");
        {
            let cache = ResultCache::new(8, Some(dir.clone())).expect("cache");
            cache.put("the-key", "the-value");
        }
        let cache = ResultCache::new(8, Some(dir.clone())).expect("cache");
        assert_eq!(cache.get("the-key").as_deref(), Some("the-value"));
        let s = cache.stats();
        assert_eq!(s.disk_hits, 1);
        assert_eq!(s.mem_hits, 0);
        // Promoted: the second lookup is a memory hit.
        assert_eq!(cache.get("the-key").as_deref(), Some("the-value"));
        assert_eq!(cache.stats().mem_hits, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn colliding_hash_entries_verify_the_full_key() {
        // Force a logical collision by storing under the same hash: the
        // cache compares full keys, so a different key misses.
        let cache = ResultCache::new(16, None).expect("cache");
        cache.put("a", "va");
        assert_eq!(cache.get("a").as_deref(), Some("va"));
        assert_eq!(cache.get("b"), None);
    }

    #[test]
    fn multi_line_values_roundtrip_through_disk() {
        let dir = temp_dir("multiline");
        let cache = ResultCache::new(8, Some(dir.clone())).expect("cache");
        cache.put("k", "line1\nline2\nline3");
        let again = ResultCache::new(8, Some(dir.clone())).expect("cache");
        assert_eq!(again.get("k").as_deref(), Some("line1\nline2\nline3"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
