//! Content addressing: FNV-1a 64-bit over canonical request bytes.
//!
//! FNV-1a is tiny, dependency-free, and byte-order independent — exactly
//! what a deterministic cache key needs. Collisions are possible at 64
//! bits, so the cache stores the full canonical key next to each entry and
//! verifies it on every hit (see [`crate::cache`]).

/// FNV-1a 64-bit hash of `bytes`.
///
/// # Examples
///
/// ```
/// use multival_svc::hash::fnv1a64;
///
/// assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
/// ```
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The hash as 16 lowercase hex digits (stable file / JSON key form).
#[must_use]
pub fn hex16(h: u64) -> String {
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_form_is_fixed_width() {
        assert_eq!(hex16(0), "0000000000000000");
        assert_eq!(hex16(0xdead_beef), "00000000deadbeef");
        assert_eq!(hex16(fnv1a64(b"x")).len(), 16);
    }
}
