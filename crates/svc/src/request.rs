//! Job requests: the JSON surface of `POST /v1/jobs`, their canonical form
//! (the cache key), and their evaluation against the flow engines.
//!
//! A request names a *kind* (`explore`, `check`, `steady`, `transient`,
//! `simulate`, `bounds`, `reduce`), a *model* (a built-in case study, an inline mini-LOTOS
//! `source`, or an uploaded Aldebaran `aut` text), and kind-specific
//! parameters. Canonicalization fills every default in and sorts object
//! keys, so two requests that mean the same thing hash to the same cache
//! key regardless of member order or omitted fields.
//!
//! Evaluation is deterministic: results carry no timestamps, job ids, or
//! wall-clock readings, and the Monte-Carlo engine is bit-identical across
//! thread counts, so the same canonical request always produces the same
//! response body — the property the content-addressed cache rests on.

use crate::json::{parse, Json};
use multival::budget::Budget;
use multival::flow::Flow;
use multival::imc::NondetPolicy;
use multival_ctmc::McOptions;
use multival_lts::io::read_aut;
use multival_lts::minimize::Equivalence;
use multival_lts::pipeline::{run_pipeline, Order, PipelineOptions};
use multival_lts::store::{StoreConfig, StoreKind};
use multival_lts::Lts;
use multival_models::common::explore_model;
use multival_models::fame2::coherence::Protocol;
use multival_models::fame2::mpi::{MpiConfig, MpiImpl, MpiModel};
use multival_models::fame2::topology::Topology;
use multival_models::faust::noc::single_packet_source;
use multival_models::xstream::perf::{analyze_with_delays, explore_pipeline, PerfConfig};
use multival_pa::{explore_partial, parse_spec, ExploreOptions};
use multival_par::Workers;
use std::collections::HashMap;

/// What the job computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// State-space statistics (states, transitions, deadlocks).
    Explore,
    /// μ-calculus model checking (`formula` required).
    Check,
    /// Steady-state distribution and probe throughputs (`rates` required).
    Steady,
    /// Transient distribution at `time` (`rates` required).
    Transient,
    /// Monte-Carlo occupancy estimation (`rates` required).
    Simulate,
    /// Scheduler-quantified throughput bounds over every resolution of the
    /// model's nondeterminism (`rates` required): min/max per probe via the
    /// lifted CTMDP.
    Bounds,
    /// Compositional smart reduction over the model's component network
    /// (inline `source` models only).
    Reduce,
    /// One point of a design-space sweep over the xSTream pipeline: a full
    /// pipeline configuration (capacities, stage rates, transfer-delay
    /// style, scheduler) evaluated to throughput/latency/occupancy plus the
    /// fit accuracy of the transfer delay against an ideal deterministic
    /// transfer (`sweep` object required, `model.builtin` must be
    /// `xstream_pipeline`). The `explore-space` driver expands a sweep spec
    /// into many of these, so shared points cache and coalesce.
    Sweep,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Explore => "explore",
            Kind::Check => "check",
            Kind::Steady => "steady",
            Kind::Transient => "transient",
            Kind::Simulate => "simulate",
            Kind::Bounds => "bounds",
            Kind::Reduce => "reduce",
            Kind::Sweep => "sweep",
        }
    }
}

/// The transfer-delay axis of a sweep point: how the NoC transfer stage is
/// modeled. Written `exponential`, `erlang:K`, or `det:TOL` in requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SweepDelay {
    /// Memoryless transfer at the configured rate (Erlang order 1).
    Exponential,
    /// Hand-picked Erlang order k at the configured mean.
    Erlang {
        /// Number of phases k ≥ 1.
        k: u32,
    },
    /// Deterministic transfer auto-fitted by `ctmc::phfit` to the stated
    /// sup-CDF tolerance — the driver's "state the delay and the accuracy"
    /// mode.
    Deterministic {
        /// Sup-CDF tolerance in (0, 1).
        tol: f64,
    },
}

impl SweepDelay {
    /// The canonical request/axis syntax (`det:5e-2` parses, `det:0.05`
    /// is what canonicalization and result bodies emit).
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            SweepDelay::Exponential => "exponential".to_owned(),
            SweepDelay::Erlang { k } => format!("erlang:{k}"),
            SweepDelay::Deterministic { tol } => format!("det:{tol}"),
        }
    }

    /// Parses the axis syntax.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown styles or out-of-range parameters.
    pub fn parse(s: &str) -> Result<SweepDelay, String> {
        if s == "exponential" {
            return Ok(SweepDelay::Exponential);
        }
        if let Some(k) = s.strip_prefix("erlang:") {
            let k: u32 = k.parse().map_err(|_| format!("bad Erlang order in `{s}`"))?;
            if k == 0 || k > 4096 {
                return Err(format!("Erlang order must be in 1..=4096, got {k}"));
            }
            return Ok(SweepDelay::Erlang { k });
        }
        if let Some(t) = s.strip_prefix("det:") {
            let tol: f64 = t.parse().map_err(|_| format!("bad tolerance in `{s}`"))?;
            if !(tol > 0.0 && tol < 1.0) {
                return Err(format!("tolerance must be in (0, 1), got {tol}"));
            }
            return Ok(SweepDelay::Deterministic { tol });
        }
        Err(format!("unknown delay `{s}` (expected exponential, erlang:K, or det:TOL)"))
    }
}

/// The scheduler axis of a sweep point. `min`/`max` report the endpoint of
/// the scheduler-quantified throughput interval (via the lifted CTMDP);
/// on the nondeterminism-free pipeline all three coincide — computed
/// honestly, not assumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepScheduler {
    /// Uniform resolution (the seed's policy).
    Uniform,
    /// Throughput-minimizing scheduler.
    Min,
    /// Throughput-maximizing scheduler.
    Max,
}

impl SweepScheduler {
    fn name(self) -> &'static str {
        match self {
            SweepScheduler::Uniform => "uniform",
            SweepScheduler::Min => "min",
            SweepScheduler::Max => "max",
        }
    }
}

/// One fully resolved sweep point: the pipeline configuration plus the
/// delay-style and scheduler axes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepParams {
    /// Push-queue capacity (1..=16).
    pub push_capacity: u8,
    /// Pop-queue capacity (1..=16).
    pub pop_capacity: u8,
    /// Producer stage rate.
    pub producer_rate: f64,
    /// NoC transfer rate (mean transfer time is its reciprocal).
    pub transfer_rate: f64,
    /// Consumer stage rate.
    pub consumer_rate: f64,
    /// Credit-return rate.
    pub credit_rate: f64,
    /// Transfer-delay style.
    pub delay: SweepDelay,
    /// Scheduler policy.
    pub scheduler: SweepScheduler,
}

fn sweep_capacity(v: &Json, key: &str, default: u8) -> Result<u8, String> {
    match opt_uint(v, key)? {
        None => Ok(default),
        Some(x) if (1..=16).contains(&x) => Ok(x as u8),
        Some(x) => Err(format!("`{key}` must be in 1..=16, got {x}")),
    }
}

fn sweep_rate(v: &Json, key: &str, default: f64) -> Result<f64, String> {
    match opt_num(v, key)? {
        None => Ok(default),
        Some(x) if x.is_finite() && x > 0.0 => Ok(x),
        Some(x) => Err(format!("`{key}` must be a positive rate, got {x}")),
    }
}

/// Where the model comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSource {
    /// A named built-in case study (see [`builtin_names`]).
    Builtin(String),
    /// Inline mini-LOTOS source text.
    Source(String),
    /// Inline Aldebaran `.aut` text.
    Aut(String),
}

/// A fully parsed job request with every default resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// What to compute.
    pub kind: Kind,
    /// The model under evaluation.
    pub model: ModelSource,
    /// μ-calculus formula (check only).
    pub formula: Option<String>,
    /// Gate → exponential rate (performance kinds).
    pub rates: Vec<(String, f64)>,
    /// Throughput probes (steady only).
    pub probes: Vec<String>,
    /// Transient evaluation time.
    pub time: f64,
    /// Occupancy horizon per trajectory (simulate).
    pub horizon: f64,
    /// Trajectory cap (simulate).
    pub trajectories: usize,
    /// Base RNG seed (simulate; estimates depend on this only).
    pub seed: u64,
    /// Equivalence minimized modulo at every stage (reduce).
    pub eq: Equivalence,
    /// Composition-order policy (reduce; the result never depends on it).
    pub order: Order,
    /// State-store backend for product exploration (reduce; the result
    /// never depends on it).
    pub store: StoreKind,
    /// Resident-memory budget in bytes for the spill backend (reduce).
    pub mem_budget: Option<usize>,
    /// Sweep-point parameters (sweep only).
    pub sweep: Option<SweepParams>,
    /// Resource budget (state cap + wall-clock limit).
    pub budget: Budget,
}

/// The names accepted by `{"model":{"builtin":...}}`, in stable order.
#[must_use]
pub fn builtin_names() -> [&'static str; 3] {
    ["xstream_pipeline", "fame2_ping_pong", "faust_single_packet"]
}

/// Materializes a built-in case study as an LTS.
///
/// # Errors
///
/// Returns a message for unknown names or (theoretical) exploration caps.
pub fn builtin_lts(name: &str) -> Result<Lts, String> {
    match name {
        "xstream_pipeline" => Ok(explore_pipeline(&PerfConfig::default())
            .map_err(|e| format!("xstream_pipeline: {e}"))?
            .lts),
        "fame2_ping_pong" => {
            let config = MpiConfig {
                topology: Topology::Crossbar(2),
                protocol: Protocol::Msi,
                implementation: MpiImpl::Eager,
                payload: 1,
            };
            Ok(explore_model(&MpiModel::ping_pong(config), 4_000_000)
                .map_err(|e| format!("fame2_ping_pong: {e}"))?
                .lts)
        }
        "faust_single_packet" => {
            let spec = parse_spec(&single_packet_source(3))
                .map_err(|e| format!("faust_single_packet: {e}"))?;
            let explored = explore_partial(&spec, &ExploreOptions::default());
            match explored.aborted {
                Some(e) => Err(format!("faust_single_packet: {e}")),
                None => Ok(explored.explored.lts),
            }
        }
        other => Err(format!(
            "unknown builtin model `{other}` (expected one of {})",
            builtin_names().join(", ")
        )),
    }
}

fn opt_str(v: &Json, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("`{key}` must be a string")),
    }
}

fn opt_num(v: &Json, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(x)) => Ok(Some(*x)),
        Some(_) => Err(format!("`{key}` must be a number")),
    }
}

fn opt_uint(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match opt_num(v, key)? {
        None => Ok(None),
        Some(x) if x >= 0.0 && x.fract() == 0.0 && x <= 2u64.pow(53) as f64 => Ok(Some(x as u64)),
        Some(x) => Err(format!("`{key}` must be a non-negative integer, got {x}")),
    }
}

impl JobRequest {
    /// Parses a request from JSON text, filling defaults.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn from_json_text(text: &str) -> Result<JobRequest, String> {
        let v = parse(text).map_err(|e| e.to_string())?;
        JobRequest::from_json(&v)
    }

    /// Parses a request from a JSON value, filling defaults.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn from_json(v: &Json) -> Result<JobRequest, String> {
        let kind = match v.get("kind").and_then(Json::as_str) {
            Some("explore") => Kind::Explore,
            Some("check") => Kind::Check,
            Some("steady") => Kind::Steady,
            Some("transient") => Kind::Transient,
            Some("simulate") => Kind::Simulate,
            Some("bounds") => Kind::Bounds,
            Some("reduce") => Kind::Reduce,
            Some("sweep") => Kind::Sweep,
            Some(other) => return Err(format!("unknown kind `{other}`")),
            None => return Err("`kind` is required".to_owned()),
        };
        let model_obj = v.get("model").ok_or("`model` is required")?;
        let model = match (
            opt_str(model_obj, "builtin")?,
            opt_str(model_obj, "source")?,
            opt_str(model_obj, "aut")?,
        ) {
            (Some(name), None, None) => ModelSource::Builtin(name),
            (None, Some(src), None) => ModelSource::Source(src),
            (None, None, Some(aut)) => ModelSource::Aut(aut),
            _ => {
                return Err("`model` must have exactly one of `builtin`, `source`, `aut`".to_owned())
            }
        };
        if kind == Kind::Reduce && !matches!(model, ModelSource::Source(_)) {
            return Err("kind `reduce` needs an inline `source` model: built-in and `aut` \
                 models are already flat LTSs with no parallel structure to reduce"
                .to_owned());
        }
        let formula = opt_str(v, "formula")?;
        if kind == Kind::Check && formula.is_none() {
            return Err("`formula` is required for kind `check`".to_owned());
        }
        let mut rates = Vec::new();
        if let Some(rv) = v.get("rates") {
            let Json::Obj(members) = rv else {
                return Err("`rates` must be an object of gate: rate".to_owned());
            };
            for (gate, rate) in members {
                let rate = rate.as_num().ok_or(format!("rate for `{gate}` must be a number"))?;
                if rate <= 0.0 {
                    return Err(format!("rate for `{gate}` must be positive"));
                }
                rates.push((gate.clone(), rate));
            }
        }
        // Canonical rate order is alphabetical, not submission order.
        rates.sort_by(|a, b| a.0.cmp(&b.0));
        rates.dedup_by(|a, b| a.0 == b.0);
        if matches!(kind, Kind::Steady | Kind::Transient | Kind::Simulate | Kind::Bounds)
            && rates.is_empty()
        {
            return Err(format!("`rates` is required for kind `{}`", kind.name()));
        }
        let mut probes = match v.get("probes") {
            None => Vec::new(),
            Some(Json::Arr(items)) => items
                .iter()
                .map(|p| p.as_str().map(str::to_owned).ok_or("probes must be strings"))
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("`probes` must be an array of strings".to_owned()),
        };
        probes.sort();
        probes.dedup();
        let time = opt_num(v, "time")?.unwrap_or(1.0);
        let horizon = opt_num(v, "horizon")?.unwrap_or(100.0);
        if !time.is_finite() || time < 0.0 || !horizon.is_finite() || horizon <= 0.0 {
            return Err("`time`/`horizon` must be finite and non-negative".to_owned());
        }
        let trajectories = opt_uint(v, "trajectories")?.unwrap_or(8192) as usize;
        let seed = opt_uint(v, "seed")?.unwrap_or(42);
        let eq = match opt_str(v, "eq")?.as_deref() {
            None | Some("branching") => Equivalence::Branching,
            Some("strong") => Equivalence::Strong,
            Some(other) => return Err(format!("unknown equivalence `{other}`")),
        };
        let order = match opt_str(v, "order")?.as_deref() {
            None | Some("smart") => Order::Smart,
            Some("given") => Order::Given,
            Some(other) => match other.strip_prefix("seed:").and_then(|s| s.parse().ok()) {
                Some(seed) => Order::Seeded(seed),
                None => {
                    return Err(format!(
                        "unknown order `{other}` (expected smart, given, or seed:N)"
                    ))
                }
            },
        };
        let store = match opt_str(v, "store")?.as_deref() {
            None | Some("hash") => StoreKind::Hash,
            Some("arena") => StoreKind::Arena,
            Some("spill") => StoreKind::Spill,
            Some(other) => {
                return Err(format!(
                    "unknown store backend `{other}` (expected hash, arena, or spill)"
                ))
            }
        };
        let mem_budget = opt_uint(v, "mem_budget")?.map(|b| b as usize);
        let sweep = if kind == Kind::Sweep {
            if !matches!(&model, ModelSource::Builtin(n) if n == "xstream_pipeline") {
                return Err(
                    "kind `sweep` needs `model.builtin` = `xstream_pipeline`: sweep points \
                     are pipeline configurations"
                        .to_owned(),
                );
            }
            let sv = v.get("sweep").ok_or("`sweep` is required for kind `sweep`")?;
            let d = PerfConfig::default();
            Some(SweepParams {
                push_capacity: sweep_capacity(sv, "push_capacity", d.push_capacity)?,
                pop_capacity: sweep_capacity(sv, "pop_capacity", d.pop_capacity)?,
                producer_rate: sweep_rate(sv, "producer_rate", d.producer_rate)?,
                transfer_rate: sweep_rate(sv, "transfer_rate", d.transfer_rate)?,
                consumer_rate: sweep_rate(sv, "consumer_rate", d.consumer_rate)?,
                credit_rate: sweep_rate(sv, "credit_rate", d.credit_rate)?,
                delay: match opt_str(sv, "delay")? {
                    None => SweepDelay::Exponential,
                    Some(s) => SweepDelay::parse(&s)?,
                },
                scheduler: match opt_str(sv, "scheduler")?.as_deref() {
                    None | Some("uniform") => SweepScheduler::Uniform,
                    Some("min") => SweepScheduler::Min,
                    Some("max") => SweepScheduler::Max,
                    Some(other) => {
                        return Err(format!(
                            "unknown scheduler `{other}` (expected uniform, min, or max)"
                        ))
                    }
                },
            })
        } else {
            // Canonical texts of non-sweep kinds carry `"sweep":null`.
            if !matches!(v.get("sweep"), None | Some(Json::Null)) {
                return Err(format!(
                    "`sweep` is only valid for kind `sweep`, not `{}`",
                    kind.name()
                ));
            }
            None
        };
        let mut budget = Budget::default();
        if let Some(cap) = opt_uint(v, "max_states")? {
            budget = budget.with_max_states(cap as usize);
        }
        if let Some(secs) = opt_uint(v, "timeout_secs")? {
            budget = budget.with_timeout_secs(secs);
        }
        Ok(JobRequest {
            kind,
            model,
            formula,
            rates,
            probes,
            time,
            horizon,
            trajectories,
            seed,
            eq,
            order,
            store,
            mem_budget,
            sweep,
            budget,
        })
    }

    /// The canonical serialization: every field (defaults included) in
    /// sorted-key order. Hashing this string is the job's cache key.
    #[must_use]
    pub fn canonical(&self) -> String {
        let model = match &self.model {
            ModelSource::Builtin(n) => Json::Obj(vec![("builtin".into(), Json::str(n.clone()))]),
            ModelSource::Source(s) => Json::Obj(vec![("source".into(), Json::str(s.clone()))]),
            ModelSource::Aut(a) => Json::Obj(vec![("aut".into(), Json::str(a.clone()))]),
        };
        let mut members: Vec<(String, Json)> = vec![
            ("kind".into(), Json::str(self.kind.name())),
            ("model".into(), model),
            ("formula".into(), self.formula.as_ref().map_or(Json::Null, |f| Json::str(f.clone()))),
            (
                "rates".into(),
                Json::Obj(self.rates.iter().map(|(g, r)| (g.clone(), Json::num(*r))).collect()),
            ),
            (
                "probes".into(),
                Json::Arr(self.probes.iter().map(|p| Json::str(p.clone())).collect()),
            ),
            ("time".into(), Json::num(self.time)),
            ("horizon".into(), Json::num(self.horizon)),
            ("trajectories".into(), Json::num(self.trajectories as f64)),
            ("seed".into(), Json::num(self.seed as f64)),
            (
                "eq".into(),
                Json::str(match self.eq {
                    Equivalence::Strong => "strong",
                    Equivalence::Branching => "branching",
                    // Not reachable from `from_json` (the API surface only
                    // accepts strong/branching), kept total for safety.
                    Equivalence::BranchingDivergence => "divbranching",
                }),
            ),
            ("order".into(), Json::str(self.order.to_string())),
            ("store".into(), Json::str(self.store.to_string())),
            ("mem_budget".into(), self.mem_budget.map_or(Json::Null, |b| Json::num(b as f64))),
            (
                "sweep".into(),
                self.sweep.as_ref().map_or(Json::Null, |p| {
                    Json::Obj(vec![
                        ("consumer_rate".into(), Json::num(p.consumer_rate)),
                        ("credit_rate".into(), Json::num(p.credit_rate)),
                        ("delay".into(), Json::str(p.delay.canonical())),
                        ("pop_capacity".into(), Json::num(f64::from(p.pop_capacity))),
                        ("producer_rate".into(), Json::num(p.producer_rate)),
                        ("push_capacity".into(), Json::num(f64::from(p.push_capacity))),
                        ("scheduler".into(), Json::str(p.scheduler.name())),
                        ("transfer_rate".into(), Json::num(p.transfer_rate)),
                    ])
                }),
            ),
            (
                "max_states".into(),
                self.budget.max_states.map_or(Json::Null, |c| Json::num(c as f64)),
            ),
            (
                "timeout_secs".into(),
                self.budget.timeout.map_or(Json::Null, |t| Json::num(t.as_secs() as f64)),
            ),
        ];
        members.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Obj(members).canonicalized().to_string()
    }

    /// Materializes the model as an LTS under the request's budget.
    fn load_model(&self) -> Result<Lts, String> {
        match &self.model {
            ModelSource::Builtin(name) => builtin_lts(name),
            ModelSource::Aut(text) => read_aut(text).map_err(|e| e.to_string()),
            ModelSource::Source(text) => {
                let spec = parse_spec(text).map_err(|e| e.to_string())?;
                let mut options =
                    ExploreOptions::with_max_states(self.budget.max_states_or(1_000_000));
                if let Some(deadline) = self.budget.deadline() {
                    options = options.with_deadline(deadline);
                }
                let exploration = explore_partial(&spec, &options);
                match exploration.aborted {
                    Some(e) => Err(format!("Budget exceeded: {e}")),
                    None => Ok(exploration.explored.lts),
                }
            }
        }
    }

    /// Evaluates the request to its deterministic result JSON.
    ///
    /// # Errors
    ///
    /// Returns a message on model/formula/solver failures or tripped
    /// budgets; errors are never cached.
    pub fn evaluate(&self, workers: Workers) -> Result<Json, String> {
        if self.kind == Kind::Reduce {
            return self.evaluate_reduce(workers);
        }
        if self.kind == Kind::Sweep {
            return self.evaluate_sweep();
        }
        let lts = self.load_model()?;
        match self.kind {
            Kind::Explore => {
                let deadlocks = lts.deadlock_states().len();
                Ok(Json::Obj(vec![
                    ("states".into(), Json::num(lts.num_states() as f64)),
                    ("transitions".into(), Json::num(lts.num_transitions() as f64)),
                    ("deadlocks".into(), Json::num(deadlocks as f64)),
                ]))
            }
            Kind::Check => {
                let formula = self.formula.as_deref().expect("validated at parse");
                let f = multival::mcl::parse_formula(formula).map_err(|e| e.to_string())?;
                let result = multival::mcl::check(&lts, &f).map_err(|e| e.to_string())?;
                Ok(Json::Obj(vec![
                    ("holds".into(), Json::Bool(result.holds)),
                    ("satisfying".into(), Json::num(result.satisfying as f64)),
                    ("total".into(), Json::num(result.total as f64)),
                ]))
            }
            Kind::Steady | Kind::Transient | Kind::Simulate | Kind::Bounds => {
                self.evaluate_perf(lts, workers)
            }
            Kind::Reduce | Kind::Sweep => unreachable!("handled before the model is flattened"),
        }
    }

    /// Evaluates one sweep point: build the configured pipeline, resolve
    /// the transfer-delay axis (fitting deterministic delays through
    /// `ctmc::phfit`), solve, and report measures plus the fit's accuracy
    /// against an ideal deterministic transfer. A `max_states` budget is
    /// checked against the point's CTMC size — a trip is an error (never
    /// cached), which the driver reports as a *partial* point with exit 3.
    fn evaluate_sweep(&self) -> Result<Json, String> {
        use multival::imc::phase_type::Delay;
        use multival_ctmc::phfit;

        let p = self.sweep.as_ref().expect("validated at parse");
        let config = PerfConfig {
            push_capacity: p.push_capacity,
            pop_capacity: p.pop_capacity,
            producer_rate: p.producer_rate,
            transfer_rate: p.transfer_rate,
            consumer_rate: p.consumer_rate,
            credit_rate: p.credit_rate,
        };
        // Resolve the transfer-delay axis to a concrete phase-type delay
        // plus its sup-CDF accuracy against the ideal deterministic
        // transfer of the same mean (exponential is Erlang-1).
        let xfer_mean = 1.0 / p.transfer_rate;
        let (xfer_delay, fit_k, accuracy_error, tolerance_met) = match p.delay {
            SweepDelay::Exponential => (
                Delay::Exponential { rate: p.transfer_rate },
                1usize,
                phfit::sup_error_vs_step(
                    1,
                    xfer_mean,
                    phfit::DEFAULT_JUMP_WINDOW,
                    phfit::DEFAULT_SAMPLES,
                ),
                true,
            ),
            SweepDelay::Erlang { k } => (
                Delay::fixed(xfer_mean, k),
                k as usize,
                phfit::sup_error_vs_step(
                    k as usize,
                    xfer_mean,
                    phfit::DEFAULT_JUMP_WINDOW,
                    phfit::DEFAULT_SAMPLES,
                ),
                true,
            ),
            SweepDelay::Deterministic { tol } => {
                let fit = phfit::fit_deterministic(xfer_mean, tol, &phfit::FitOptions::default())
                    .map_err(|e| e.to_string())?;
                (
                    Delay::Erlang { phases: fit.k as u32, rate: fit.rate },
                    fit.k,
                    fit.achieved_error,
                    fit.tolerance_met,
                )
            }
        };
        let mut delay_of = |label: &str| -> Option<Delay> {
            match label {
                "push" => Some(Delay::Exponential { rate: config.producer_rate }),
                "xfer" => Some(xfer_delay.clone()),
                "pop" => Some(Delay::Exponential { rate: config.consumer_rate }),
                "credit" => Some(Delay::Exponential { rate: config.credit_rate }),
                _ => None,
            }
        };
        let report = analyze_with_delays(&config, &mut delay_of).map_err(|e| e.to_string())?;
        if let Some(cap) = self.budget.max_states {
            if report.ctmc_states > cap {
                return Err(format!(
                    "Budget exceeded: sweep point needs {} CTMC states (cap {cap})",
                    report.ctmc_states
                ));
            }
        }
        let throughput = match p.scheduler {
            SweepScheduler::Uniform => report.throughput,
            // min/max go through the lifted CTMDP and report the interval
            // endpoint. The pipeline has no nondeterminism, so the endpoint
            // equals the uniform value — but it is *computed*, not assumed.
            SweepScheduler::Min | SweepScheduler::Max => {
                let lts = explore_pipeline(&config).map_err(|e| e.to_string())?.lts;
                let bounds = Flow::from_lts(lts)
                    .with_delays_by_label(&mut delay_of)
                    .solve_bounds(&["pop"])
                    .map_err(|e| e.to_string())?;
                let tb = bounds.throughput_bounds().map_err(|e| e.to_string())?;
                let interval = tb
                    .iter()
                    .find(|(l, _)| l == "pop")
                    .map(|&(_, i)| i)
                    .ok_or("sweep: `pop` probe missing from bounds")?;
                match p.scheduler {
                    SweepScheduler::Min => interval.min,
                    _ => interval.max,
                }
            }
        };
        let latency = if throughput > 0.0 { report.mean_items / throughput } else { f64::INFINITY };
        Ok(Json::Obj(vec![
            ("ctmc_states".into(), Json::num(report.ctmc_states as f64)),
            ("throughput".into(), Json::num(throughput)),
            ("latency".into(), Json::num(latency)),
            ("mean_items".into(), Json::num(report.mean_items)),
            ("fit_k".into(), Json::num(fit_k as f64)),
            ("accuracy_error".into(), Json::num(accuracy_error)),
            ("fit_tolerance_met".into(), Json::Bool(tolerance_met)),
            ("delay".into(), Json::str(p.delay.canonical())),
            ("scheduler".into(), Json::str(p.scheduler.name())),
        ]))
    }

    /// Runs the compositional reduction pipeline on an inline source model.
    ///
    /// A tripped budget is an error (never cached); everything else is
    /// deterministic — the canonical reduced LTS and the stage accounting
    /// are byte-identical across worker counts and order seeds.
    fn evaluate_reduce(&self, workers: Workers) -> Result<Json, String> {
        let ModelSource::Source(text) = &self.model else {
            unreachable!("validated at parse: reduce needs a source model")
        };
        let spec = parse_spec(text).map_err(|e| e.to_string())?;
        let network = multival_pa::extract_network(&spec, &ExploreOptions::default())
            .map_err(|e| e.to_string())?;
        let options = PipelineOptions {
            equivalence: self.eq,
            order: self.order,
            workers,
            max_states: self.budget.max_states,
            deadline: self.budget.deadline(),
            checkpoint_dir: None,
            store: StoreConfig { kind: self.store, mem_budget: self.mem_budget },
        };
        let run = run_pipeline(&network, &options);
        if let Some(reason) = &run.abort {
            return Err(format!("Budget exceeded: {reason}"));
        }
        let order: Vec<Json> =
            run.order.iter().map(|&i| Json::str(network.components()[i].0.clone())).collect();
        let stages: Vec<Json> = run
            .stages
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("component".into(), Json::str(s.component.clone())),
                    ("states_before".into(), Json::num(s.states_before as f64)),
                    ("transitions_before".into(), Json::num(s.transitions_before as f64)),
                    ("states_after".into(), Json::num(s.states_after as f64)),
                    ("transitions_after".into(), Json::num(s.transitions_after as f64)),
                    (
                        "hidden".into(),
                        Json::Arr(s.hidden.iter().map(|g| Json::str(g.clone())).collect()),
                    ),
                ])
            })
            .collect();
        Ok(Json::Obj(vec![
            ("states".into(), Json::num(run.lts.num_states() as f64)),
            ("transitions".into(), Json::num(run.lts.num_transitions() as f64)),
            ("peak_states".into(), Json::num(run.peak_states() as f64)),
            ("order".into(), Json::Arr(order)),
            ("stages".into(), Json::Arr(stages)),
        ]))
    }

    fn evaluate_perf(&self, lts: Lts, workers: Workers) -> Result<Json, String> {
        let rate_map: HashMap<String, f64> = self.rates.iter().cloned().collect();
        let probe_refs: Vec<&str> = self.probes.iter().map(String::as_str).collect();
        if self.kind == Kind::Bounds {
            let bounds = Flow::from_lts(lts)
                .with_rates(&rate_map)
                .solve_bounds(&probe_refs)
                .map_err(|e| e.to_string())?;
            let mdp = bounds.mdp();
            let instant = (0..mdp.num_states()).filter(|&s| mdp.is_instant(s)).count();
            let throughputs: Vec<(String, Json)> = bounds
                .throughput_bounds()
                .map_err(|e| e.to_string())?
                .into_iter()
                .map(|(probe, i)| {
                    let member = Json::Obj(vec![
                        ("min".into(), Json::num(i.min)),
                        ("max".into(), Json::num(i.max)),
                    ]);
                    (probe, member)
                })
                .collect();
            return Ok(Json::Obj(vec![
                ("states".into(), Json::num(bounds.mdp().num_states() as f64)),
                ("instant".into(), Json::num(instant as f64)),
                ("throughput_bounds".into(), Json::Obj(throughputs)),
            ]));
        }
        let solved = Flow::from_lts(lts)
            .with_rates(&rate_map)
            .solve(NondetPolicy::Uniform, &probe_refs)
            .map_err(|e| e.to_string())?;
        let states = solved.ctmc().num_states();
        match self.kind {
            Kind::Steady => {
                let pi = solved.steady_state().map_err(|e| e.to_string())?;
                let throughputs = solved.throughputs().map_err(|e| e.to_string())?;
                Ok(Json::Obj(vec![
                    ("states".into(), Json::num(states as f64)),
                    ("steady_state".into(), vector_json(&pi)),
                    (
                        "throughputs".into(),
                        Json::Obj(
                            throughputs
                                .into_iter()
                                .map(|(probe, tp)| (probe, Json::num(tp)))
                                .collect(),
                        ),
                    ),
                ]))
            }
            Kind::Transient => {
                let dist = solved.transient(self.time).map_err(|e| e.to_string())?;
                Ok(Json::Obj(vec![
                    ("states".into(), Json::num(states as f64)),
                    ("time".into(), Json::num(self.time)),
                    ("distribution".into(), vector_json(&dist)),
                ]))
            }
            Kind::Simulate => {
                let opts = McOptions {
                    seed: self.seed,
                    workers,
                    max_trajectories: self.trajectories,
                    deadline: self.budget.deadline(),
                    ..McOptions::default()
                };
                let run = solved.simulate_occupancy(self.horizon, &opts);
                if run.budget_hit {
                    return Err(format!(
                        "Budget exceeded: wall-clock limit hit after {} trajectories",
                        run.trajectories
                    ));
                }
                let estimates: Vec<Json> = run
                    .estimates
                    .iter()
                    .take(VECTOR_CAP)
                    .map(|e| {
                        Json::Obj(vec![
                            ("mean".into(), Json::num(e.mean)),
                            ("half_width".into(), Json::num(e.half_width)),
                        ])
                    })
                    .collect();
                Ok(Json::Obj(vec![
                    ("states".into(), Json::num(states as f64)),
                    ("horizon".into(), Json::num(self.horizon)),
                    ("trajectories".into(), Json::num(run.trajectories as f64)),
                    ("converged".into(), Json::Bool(run.converged)),
                    ("estimates".into(), Json::Arr(estimates)),
                ]))
            }
            _ => unreachable!("evaluate_perf only handles performance kinds"),
        }
    }
}

/// Largest vector echoed back in a response body; longer ones are
/// truncated (the `states` field always carries the true size).
const VECTOR_CAP: usize = 64;

fn vector_json(xs: &[f64]) -> Json {
    Json::Arr(xs.iter().take(VECTOR_CAP).map(|&x| Json::num(x)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUF: &str = "process Buf[put, get](full: bool) :=
         [not full] -> put; Buf[put, get](true)
      [] [full] -> get; Buf[put, get](false)
     endproc
     behaviour Buf[put, get](false)";

    fn req(text: &str) -> JobRequest {
        JobRequest::from_json_text(text).expect("parses")
    }

    #[test]
    fn parse_fills_defaults_and_canonicalizes() {
        let a = req(r#"{"kind":"explore","model":{"builtin":"xstream_pipeline"}}"#);
        let b =
            req(r#"{"model":{"builtin":"xstream_pipeline"},"kind":"explore","seed":42,"time":1}"#);
        assert_eq!(a.canonical(), b.canonical(), "field order and defaults must not matter");
        assert!(a.canonical().contains("\"trajectories\":8192"));
    }

    #[test]
    fn different_requests_have_different_canonicals() {
        let a = req(r#"{"kind":"explore","model":{"builtin":"xstream_pipeline"}}"#);
        let b = req(r#"{"kind":"explore","model":{"builtin":"fame2_ping_pong"}}"#);
        let c = req(r#"{"kind":"explore","model":{"builtin":"xstream_pipeline"},"seed":43}"#);
        assert_ne!(a.canonical(), b.canonical());
        assert_ne!(a.canonical(), c.canonical());
    }

    #[test]
    fn rate_order_is_canonicalized() {
        let a = req(&format!(
            r#"{{"kind":"steady","model":{{"source":{src}}},"rates":{{"put":2,"get":1}}}}"#,
            src = Json::str(BUF)
        ));
        let b = req(&format!(
            r#"{{"kind":"steady","model":{{"source":{src}}},"rates":{{"get":1,"put":2}}}}"#,
            src = Json::str(BUF)
        ));
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            r#"{}"#,
            r#"{"kind":"explode","model":{"builtin":"x"}}"#,
            r#"{"kind":"explore"}"#,
            r#"{"kind":"explore","model":{}}"#,
            r#"{"kind":"explore","model":{"builtin":"a","source":"b"}}"#,
            r#"{"kind":"check","model":{"builtin":"xstream_pipeline"}}"#,
            r#"{"kind":"steady","model":{"builtin":"xstream_pipeline"}}"#,
            r#"{"kind":"bounds","model":{"builtin":"xstream_pipeline"}}"#,
            r#"{"kind":"steady","model":{"builtin":"xstream_pipeline"},"rates":{"a":-1}}"#,
            r#"{"kind":"simulate","model":{"builtin":"xstream_pipeline"},"rates":{"a":1},"seed":-3}"#,
        ] {
            assert!(JobRequest::from_json_text(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn explore_and_check_evaluate() {
        let r = req(&format!(
            r#"{{"kind":"explore","model":{{"source":{src}}}}}"#,
            src = Json::str(BUF)
        ));
        let out = r.evaluate(Workers::sequential()).expect("evaluates");
        assert_eq!(out.get("states").and_then(Json::as_num), Some(2.0));

        let r = req(&format!(
            r#"{{"kind":"check","model":{{"source":{src}}},"formula":"nu X. <true> true and [true] X"}}"#,
            src = Json::str(BUF)
        ));
        let out = r.evaluate(Workers::sequential()).expect("evaluates");
        assert_eq!(out.get("holds").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn steady_evaluates_and_is_deterministic() {
        let text = format!(
            r#"{{"kind":"steady","model":{{"source":{src}}},"rates":{{"put":2,"get":1}},"probes":["get"]}}"#,
            src = Json::str(BUF)
        );
        let a = req(&text).evaluate(Workers::sequential()).expect("evaluates").to_string();
        let b = req(&text).evaluate(Workers::new(4)).expect("evaluates").to_string();
        assert_eq!(a, b, "solver output must not depend on workers");
        assert!(a.contains("\"throughputs\":{\"get\":"), "{a}");
    }

    #[test]
    fn simulate_is_thread_invariant() {
        let text = format!(
            r#"{{"kind":"simulate","model":{{"source":{src}}},"rates":{{"put":2,"get":3}},"trajectories":512,"horizon":20}}"#,
            src = Json::str(BUF)
        );
        let a = req(&text).evaluate(Workers::sequential()).expect("evaluates").to_string();
        let b = req(&text).evaluate(Workers::new(4)).expect("evaluates").to_string();
        assert_eq!(a, b, "MC estimates depend on the seed only");
    }

    /// Two rounds racing for an arbiter: the winning branch is decided by an
    /// interactive (hence nondeterministic) choice, so throughput genuinely
    /// depends on the scheduler — exp(4) rounds give 4/s, exp(1) rounds 1/s.
    const ARB: &str = "process Arb[pa, pb, fast, slow, done] :=
            pa; fast; done; Arb[pa, pb, fast, slow, done]
         [] pb; slow; done; Arb[pa, pb, fast, slow, done]
         endproc
         behaviour Arb[pa, pb, fast, slow, done]";

    fn probe_bounds(out: &Json, probe: &str) -> (f64, f64) {
        let tp = out
            .get("throughput_bounds")
            .and_then(|t| t.get(probe))
            .unwrap_or_else(|| panic!("probe `{probe}` missing in {out}"));
        let min = tp.get("min").and_then(Json::as_num).expect("min");
        let max = tp.get("max").and_then(Json::as_num).expect("max");
        (min, max)
    }

    #[test]
    fn bounds_evaluates_and_is_thread_invariant() {
        let text = format!(
            r#"{{"kind":"bounds","model":{{"source":{src}}},"rates":{{"fast":4,"slow":1}},"probes":["done"]}}"#,
            src = Json::str(ARB)
        );
        let a = req(&text).evaluate(Workers::sequential()).expect("evaluates").to_string();
        let b = req(&text).evaluate(Workers::new(4)).expect("evaluates").to_string();
        assert_eq!(a, b, "value iteration must not depend on workers");
        let out = parse(&a).expect("json");
        let (min, max) = probe_bounds(&out, "done");
        assert!((min - 1.0).abs() < 1e-6, "worst scheduler always takes the slow round: {a}");
        assert!((max - 4.0).abs() < 1e-6, "best scheduler always takes the fast round: {a}");
        assert!(out.get("instant").and_then(Json::as_num) > Some(0.0), "{a}");
    }

    #[test]
    fn bounds_collapse_onto_steady_without_nondeterminism() {
        let bounds = req(&format!(
            r#"{{"kind":"bounds","model":{{"source":{src}}},"rates":{{"put":2,"get":1}},"probes":["get"]}}"#,
            src = Json::str(BUF)
        ))
        .evaluate(Workers::sequential())
        .expect("evaluates");
        let (min, max) = probe_bounds(&bounds, "get");
        assert!((max - min).abs() < 1e-9, "a deterministic model has a point interval");

        let steady = req(&format!(
            r#"{{"kind":"steady","model":{{"source":{src}}},"rates":{{"put":2,"get":1}},"probes":["get"]}}"#,
            src = Json::str(BUF)
        ))
        .evaluate(Workers::sequential())
        .expect("evaluates");
        let tp = steady
            .get("throughputs")
            .and_then(|t| t.get("get"))
            .and_then(Json::as_num)
            .expect("steady throughput");
        assert!((min - tp).abs() < 1e-9, "bounds {min} vs steady {tp}");
    }

    #[test]
    fn budget_trips_are_errors_not_results() {
        let r = req(&format!(
            r#"{{"kind":"explore","model":{{"source":{src}}},"max_states":1}}"#,
            src = Json::str(
                "process C[t](n: int 0..9) := [n < 9] -> t; C[t](n + 1) endproc
                 behaviour C[t](0)"
            )
        ));
        let err = r.evaluate(Workers::sequential()).expect_err("budget trips");
        assert!(err.contains("Budget exceeded"), "{err}");
    }

    /// A two-component producer/consumer network with a hidden middle gate.
    const NET: &str = "process P[a, m] := a; m; P[a, m] endproc
         process Q[m, b] := m; b; Q[m, b] endproc
         behaviour hide m in ( P[a, m] |[m]| Q[m, b] )";

    #[test]
    fn reduce_evaluates_deterministically_across_workers_and_orders() {
        let smart =
            format!(r#"{{"kind":"reduce","model":{{"source":{src}}}}}"#, src = Json::str(NET));
        let a = req(&smart).evaluate(Workers::sequential()).expect("evaluates").to_string();
        let b = req(&smart).evaluate(Workers::new(4)).expect("evaluates").to_string();
        assert_eq!(a, b, "reduction must not depend on workers");
        assert!(a.contains("\"peak_states\":"), "{a}");
        assert!(a.contains("\"stages\":"), "{a}");

        // A different order policy folds in a different sequence but the
        // reduced LTS is identical.
        let given = format!(
            r#"{{"kind":"reduce","model":{{"source":{src}}},"order":"given"}}"#,
            src = Json::str(NET)
        );
        let g = req(&given).evaluate(Workers::sequential()).expect("evaluates");
        let a = parse(&a).expect("json");
        assert_eq!(a.get("states").and_then(Json::as_num), g.get("states").and_then(Json::as_num));
        assert_eq!(
            a.get("transitions").and_then(Json::as_num),
            g.get("transitions").and_then(Json::as_num)
        );
        // The two requests are distinct cache entries.
        assert_ne!(req(&smart).canonical(), req(&given).canonical());
    }

    #[test]
    fn reduce_accepts_store_backend_params() {
        let spill = format!(
            r#"{{"kind":"reduce","model":{{"source":{src}}},"store":"spill","mem_budget":65536}}"#,
            src = Json::str(NET)
        );
        let s = req(&spill).evaluate(Workers::sequential()).expect("evaluates").to_string();
        let default =
            format!(r#"{{"kind":"reduce","model":{{"source":{src}}}}}"#, src = Json::str(NET));
        let d = req(&default).evaluate(Workers::sequential()).expect("evaluates").to_string();
        assert_eq!(s, d, "the reduced LTS must not depend on the store backend");
        // Distinct cache entries nonetheless: the backend is part of the key.
        assert_ne!(req(&spill).canonical(), req(&default).canonical());
        let bad = format!(
            r#"{{"kind":"reduce","model":{{"source":{src}}},"store":"disk"}}"#,
            src = Json::str(NET)
        );
        assert!(JobRequest::from_json_text(&bad).is_err());
    }

    #[test]
    fn reduce_validates_its_model_and_budget() {
        assert!(JobRequest::from_json_text(
            r#"{"kind":"reduce","model":{"builtin":"xstream_pipeline"}}"#
        )
        .is_err());
        assert!(JobRequest::from_json_text(
            r#"{"kind":"reduce","model":{"aut":"des (0, 1, 2)\n(0, \"a\", 1)\n"}}"#
        )
        .is_err());
        let bad_order = format!(
            r#"{{"kind":"reduce","model":{{"source":{src}}},"order":"bogus"}}"#,
            src = Json::str(NET)
        );
        assert!(JobRequest::from_json_text(&bad_order).is_err());

        let capped = format!(
            r#"{{"kind":"reduce","model":{{"source":{src}}},"max_states":1}}"#,
            src = Json::str(NET)
        );
        let err = req(&capped).evaluate(Workers::sequential()).expect_err("budget trips");
        assert!(err.contains("Budget exceeded"), "{err}");
    }

    #[test]
    fn sweep_parses_fills_defaults_and_canonicalizes() {
        let a = req(r#"{"kind":"sweep","model":{"builtin":"xstream_pipeline"},"sweep":{}}"#);
        let b = req(r#"{"kind":"sweep","model":{"builtin":"xstream_pipeline"},
                "sweep":{"push_capacity":2,"delay":"exponential","scheduler":"uniform"}}"#);
        assert_eq!(a.canonical(), b.canonical(), "sweep defaults must canonicalize");
        assert!(a.canonical().contains("\"delay\":\"exponential\""));
        // Equivalent spellings of the tolerance canonicalize identically.
        let c = req(
            r#"{"kind":"sweep","model":{"builtin":"xstream_pipeline"},"sweep":{"delay":"det:5e-2"}}"#,
        );
        assert!(c.canonical().contains("\"delay\":\"det:0.05\""), "{}", c.canonical());
    }

    #[test]
    fn sweep_rejects_malformed() {
        for bad in [
            r#"{"kind":"sweep","model":{"builtin":"xstream_pipeline"}}"#,
            r#"{"kind":"sweep","model":{"builtin":"fame2_ping_pong"},"sweep":{}}"#,
            r#"{"kind":"sweep","model":{"builtin":"xstream_pipeline"},"sweep":{"delay":"erlang:0"}}"#,
            r#"{"kind":"sweep","model":{"builtin":"xstream_pipeline"},"sweep":{"delay":"det:2"}}"#,
            r#"{"kind":"sweep","model":{"builtin":"xstream_pipeline"},"sweep":{"delay":"fixed"}}"#,
            r#"{"kind":"sweep","model":{"builtin":"xstream_pipeline"},"sweep":{"scheduler":"best"}}"#,
            r#"{"kind":"sweep","model":{"builtin":"xstream_pipeline"},"sweep":{"push_capacity":0}}"#,
            r#"{"kind":"sweep","model":{"builtin":"xstream_pipeline"},"sweep":{"transfer_rate":-1}}"#,
            r#"{"kind":"explore","model":{"builtin":"xstream_pipeline"},"sweep":{}}"#,
        ] {
            assert!(JobRequest::from_json_text(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn sweep_evaluates_and_erlang_order_shrinks_error() {
        let eval = |delay: &str| {
            req(&format!(
                r#"{{"kind":"sweep","model":{{"builtin":"xstream_pipeline"}},"sweep":{{"delay":"{delay}"}}}}"#
            ))
            .evaluate(Workers::sequential())
            .expect(delay)
        };
        let e1 = eval("exponential");
        let e8 = eval("erlang:8");
        let err1 = e1.get("accuracy_error").and_then(Json::as_num).expect("error");
        let err8 = e8.get("accuracy_error").and_then(Json::as_num).expect("error");
        assert!(err8 < err1, "higher order must be more accurate: {err8} !< {err1}");
        let s1 = e1.get("ctmc_states").and_then(Json::as_num).expect("states");
        let s8 = e8.get("ctmc_states").and_then(Json::as_num).expect("states");
        assert!(s8 > s1, "higher order must cost states: {s8} !> {s1}");
    }

    #[test]
    fn sweep_deterministic_delay_autofits_to_tolerance() {
        let out = req(
            r#"{"kind":"sweep","model":{"builtin":"xstream_pipeline"},"sweep":{"delay":"det:0.1"}}"#,
        )
        .evaluate(Workers::sequential())
        .expect("evaluates");
        assert_eq!(out.get("fit_tolerance_met").and_then(Json::as_bool), Some(true));
        let err = out.get("accuracy_error").and_then(Json::as_num).expect("error");
        assert!(err <= 0.1, "fit must meet the stated tolerance: {err}");
        assert!(out.get("fit_k").and_then(Json::as_num) > Some(1.0));
    }

    #[test]
    fn sweep_schedulers_coincide_on_deterministic_pipeline() {
        let eval = |sched: &str| {
            req(&format!(
                r#"{{"kind":"sweep","model":{{"builtin":"xstream_pipeline"}},"sweep":{{"delay":"erlang:2","scheduler":"{sched}"}}}}"#
            ))
            .evaluate(Workers::sequential())
            .expect(sched)
        };
        let tp = |o: &Json| o.get("throughput").and_then(Json::as_num).expect("throughput");
        let (u, mn, mx) = (tp(&eval("uniform")), tp(&eval("min")), tp(&eval("max")));
        assert!((u - mn).abs() < 1e-6 && (u - mx).abs() < 1e-6, "{u} {mn} {mx}");
    }

    #[test]
    fn sweep_budget_trips_are_errors() {
        let r = req(
            r#"{"kind":"sweep","model":{"builtin":"xstream_pipeline"},"sweep":{"delay":"erlang:8"},"max_states":10}"#,
        );
        let err = r.evaluate(Workers::sequential()).expect_err("budget trips");
        assert!(err.contains("Budget exceeded"), "{err}");
    }

    #[test]
    fn builtins_all_materialize() {
        for name in builtin_names() {
            let lts = builtin_lts(name).expect(name);
            assert!(lts.num_states() > 1, "{name}");
        }
        assert!(builtin_lts("nope").is_err());
    }
}
