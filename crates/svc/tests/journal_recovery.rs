//! Crash-recovery test of the `multival serve --journal` path: a real
//! subprocess is SIGKILLed mid-queue and restarted over the same journal
//! directory; previously accepted jobs must reach a terminal state under
//! their original ids with byte-identical results.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const EXPLORE: &str = r#"{"kind":"explore","model":{"builtin":"xstream_pipeline"}}"#;
const QUEUED: &str = r#"{"kind":"explore","model":{"builtin":"xstream_pipeline"},"seed":7}"#;
/// Slow enough (9^5 = 59049 explored states, over a second of wall
/// clock) that the SIGKILL below lands while it is still evaluating.
const BLOCKER: &str = r#"{"kind":"explore","model":{"source":"process Queue[enq, deq](n: int 0..8, c: int 1..8) := [n < c] -> enq; Queue[enq, deq](n + 1, c) [] [n > 0] -> deq; Queue[enq, deq](n - 1, c) endproc behaviour Queue[a, b](0, 8) ||| Queue[c, d](0, 8) ||| Queue[e, f](0, 8) ||| Queue[g, h](0, 8) ||| Queue[i, j](0, 8)"},"seed":5}"#;

fn spawn_serve(journal: &std::path::Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_multival"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--journal",
            journal.to_str().expect("utf-8 temp path"),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("listening line");
    let addr = line
        .trim()
        .rsplit("http://")
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("no address in {line:?}"));
    (child, addr)
}

fn exchange(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    raw
}

fn body_of(raw: &str) -> String {
    raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default()
}

fn submit(addr: SocketAddr, request: &str) -> u64 {
    let raw = exchange(addr, "POST", "/v1/jobs", request);
    let body = body_of(&raw);
    body.split("\"id\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("submit failed: {raw}"))
}

/// Polls one job id until it reports `done`, returning the final body.
fn poll_done(addr: SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let body = body_of(&exchange(addr, "GET", &format!("/v1/jobs/{id}"), ""));
        if body.contains("\"status\":\"done\"") {
            return body;
        }
        assert!(
            !body.contains("\"status\":\"failed\"") && !body.contains("\"status\":\"cancelled\""),
            "job {id} reached a wrong terminal state: {body}"
        );
        assert!(Instant::now() < deadline, "job {id} stuck: {body}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_state(addr: SocketAddr, id: u64, state: &str) {
    let needle = format!("\"status\":\"{state}\"");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let body = body_of(&exchange(addr, "GET", &format!("/v1/jobs/{id}"), ""));
        if body.contains(&needle) {
            return;
        }
        assert!(
            body.contains("\"status\":\"queued\"") || body.contains("\"status\":\"running\""),
            "job {id} terminated before it reached {state}: {body}"
        );
        assert!(Instant::now() < deadline, "job {id} never reached {state}: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn sigkill_mid_queue_then_restart_recovers_all_jobs() {
    let dir = std::env::temp_dir().join("multival-journal-recovery");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    // First incarnation: finish one job, pin the single worker on a slow
    // one, queue a third behind it — then pull the plug with SIGKILL (no
    // drain, no flush beyond the acknowledged fsyncs).
    let (mut child, addr) = spawn_serve(&dir);
    let done_id = submit(addr, EXPLORE);
    let done_body = poll_done(addr, done_id);
    let blocker_id = submit(addr, BLOCKER);
    wait_state(addr, blocker_id, "running");
    let queued_id = submit(addr, QUEUED);
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // Second incarnation over the same journal directory: every accepted
    // job is visible again under its original id.
    let (mut child, addr) = spawn_serve(&dir);
    let recovered = body_of(&exchange(addr, "GET", &format!("/v1/jobs/{done_id}"), ""));
    assert_eq!(recovered, done_body, "finished job survives the crash byte-identically");
    // The interrupted and the queued job re-run to completion.
    let blocker_body = poll_done(addr, blocker_id);
    let queued_body = poll_done(addr, queued_id);
    assert!(blocker_body.contains("\"result\":"), "{blocker_body}");
    child.kill().expect("stop recovered server");
    let _ = child.wait();

    // Reference run on a journal-less server: the recovered results must
    // be byte-identical to an independent evaluation of the same requests.
    let reference = {
        let mut child = Command::new(env!("CARGO_BIN_EXE_multival"))
            .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("serve starts");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("listening line");
        let addr: SocketAddr = line
            .trim()
            .rsplit("http://")
            .next()
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("no address in {line:?}"));
        let ids = [submit(addr, EXPLORE), submit(addr, QUEUED)];
        let bodies = [poll_done(addr, ids[0]), poll_done(addr, ids[1])];
        child.kill().expect("stop reference server");
        let _ = child.wait();
        bodies
    };
    assert_eq!(done_body, reference[0], "recovered done body matches a fresh evaluation");
    assert_eq!(queued_body, reference[1], "re-run queued job matches a fresh evaluation");

    let _ = std::fs::remove_dir_all(dir);
}
