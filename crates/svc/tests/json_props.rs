//! Property tests for the service JSON codec: encode/decode round-trips,
//! canonical-form invariants, and total (panic-free) parsing of noise.

use multival_svc::json::{parse, Json};
use proptest::prelude::*;

/// A tiny deterministic PRNG (splitmix64) so one `u64` seed expands into a
/// whole random JSON document — the vendored proptest has no recursive
/// strategy combinator, so the recursion lives here instead.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn arb_string(rng: &mut Mix) -> String {
    // Quotes, backslashes, control characters, and non-ASCII all exercise
    // the escaping paths.
    const ALPHABET: [char; 14] =
        ['a', 'b', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1b}', 'é', '‰', '𝄞', ' '];
    let len = rng.below(8) as usize;
    (0..len).map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize]).collect()
}

fn arb_num(rng: &mut Mix) -> f64 {
    match rng.below(5) {
        0 => 0.0,
        1 => rng.next() as i32 as f64,
        2 => (rng.next() % 1_000_000_000) as f64,
        3 => f64::from_bits(rng.next() % (1 << 62)).abs() % 1e18,
        _ => -((rng.next() % 10_000) as f64) / 97.0,
    }
}

fn arb_json(rng: &mut Mix, depth: usize) -> Json {
    let leaf_only = depth == 0;
    match rng.below(if leaf_only { 4 } else { 6 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.below(2) == 0),
        2 => {
            let x = arb_num(rng);
            Json::num(if x.is_finite() { x } else { 0.0 })
        }
        3 => Json::Str(arb_string(rng)),
        4 => {
            let n = rng.below(4) as usize;
            Json::Arr((0..n).map(|_| arb_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.below(4) as usize;
            Json::Obj(
                (0..n)
                    .map(|i| (format!("k{i}-{}", arb_string(rng)), arb_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Encoding then parsing any value reproduces it exactly — including
    /// float bits, escaped strings, and nesting.
    #[test]
    fn encode_parse_roundtrip(seed in 0u64..u64::MAX) {
        let value = arb_json(&mut Mix(seed), 4);
        let text = value.to_string();
        let back = parse(&text).expect("own encoding parses");
        prop_assert_eq!(&back, &value);
        // The encoding is a fixed point: re-encoding changes nothing.
        prop_assert_eq!(back.to_string(), text);
    }

    /// Canonicalization is idempotent and insensitive to member order.
    #[test]
    fn canonical_form_is_order_insensitive(seed in 0u64..u64::MAX) {
        let mut rng = Mix(seed);
        let value = arb_json(&mut rng, 3);
        let canon = value.canonicalized();
        prop_assert_eq!(canon.canonicalized().to_string(), canon.to_string());
        if let Json::Obj(members) = &value {
            let mut reversed = members.clone();
            reversed.reverse();
            prop_assert_eq!(
                Json::Obj(reversed).canonicalized().to_string(),
                canon.to_string()
            );
        }
    }

    /// The parser is total: arbitrary byte noise either parses or errors,
    /// but never panics — and whatever parses re-encodes cleanly.
    #[test]
    fn parser_never_panics_on_noise(bytes in prop::collection::vec(0u8..=255, 0..64)) {
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(v) = parse(&text) {
            let _ = v.to_string();
        }
    }

    /// Numbers that overflow to infinity — and NaN/Infinity spellings —
    /// are rejected outright; a cache key must never contain them.
    #[test]
    fn non_finite_numbers_are_rejected(exp in 400u32..2000) {
        prop_assert!(parse(&format!("1e{exp}")).is_err());
        prop_assert!(parse(&format!("-1e{exp}")).is_err());
        prop_assert!(parse("NaN").is_err());
        prop_assert!(parse("Infinity").is_err());
        prop_assert!(parse("[1, NaN]").is_err());
    }
}
