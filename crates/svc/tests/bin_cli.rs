//! Black-box tests of the `multival` binary (spawned as a subprocess).

use std::process::Command;

fn multival(args: &[&str]) -> (String, String, bool) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_multival")).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn write_model(name: &str, source: &str) -> String {
    let dir = std::env::temp_dir().join("multival-bin-cli");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(name);
    std::fs::write(&path, source).expect("write");
    path.to_string_lossy().into_owned()
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = multival(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("explore"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, stderr, ok) = multival(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn explore_check_pipeline() {
    let model = write_model("flip.lot", "behaviour hide m in (a; m; stop |[m]| m; b; stop)");
    let (stdout, _, ok) = multival(&["explore", &model]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("states: 4"), "{stdout}");

    let (stdout, _, ok) = multival(&["check", &model, "mu X. <\"b\"> true or <true> X"]);
    assert!(ok);
    assert!(stdout.starts_with("TRUE"), "{stdout}");

    let (stdout, _, ok) = multival(&["check", &model, "<\"b\"> true"]);
    assert!(ok);
    assert!(stdout.starts_with("FALSE"), "b is not initially enabled: {stdout}");
}

#[test]
fn on_the_fly_pipeline() {
    let model = write_model("fly.lot", "behaviour hide m in (a; m; stop |[m]| m; b; stop)");

    // explore --on-the-fly: visited counts, nothing materialized.
    let (stdout, _, ok) = multival(&["explore", &model, "--on-the-fly"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("visited states       4"), "{stdout}");
    assert!(stdout.contains("materialized states  0"), "{stdout}");
    assert!(stdout.contains("deadlock states: 1"), "{stdout}");

    // check --on-the-fly: in-fragment formulas are decided by the search.
    let (stdout, _, ok) =
        multival(&["check", &model, "mu X. <\"b\"> true or <true> X", "--on-the-fly"]);
    assert!(ok, "{stdout}");
    assert!(stdout.starts_with("TRUE"), "{stdout}");
    assert!(stdout.contains("witness trace:"), "{stdout}");
    assert!(stdout.contains("materialized states  0"), "{stdout}");

    // Out-of-fragment formulas fall back to the eager evaluator.
    let (stdout, _, ok) = multival(&["check", &model, "<\"a\"> true", "--on-the-fly"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("outside the on-the-fly fragment"), "{stdout}");
    assert!(stdout.contains("TRUE"), "{stdout}");

    // compare --eq traces --on-the-fly: τ-abstracted trace equality holds
    // between the hidden handshake and the plain sequence.
    let plain = write_model("fly-plain.lot", "behaviour a; b; stop");
    let (stdout, _, ok) = multival(&["compare", &model, &plain, "--eq", "traces", "--on-the-fly"]);
    assert!(ok, "{stdout}");
    assert!(stdout.starts_with("EQUIVALENT"), "{stdout}");

    let other = write_model("fly-other.lot", "behaviour a; c; stop");
    let (stdout, _, ok) = multival(&["compare", &plain, &other, "--eq", "traces", "--on-the-fly"]);
    assert!(ok, "{stdout}");
    assert!(stdout.starts_with("NOT EQUIVALENT"), "{stdout}");
    assert!(stdout.contains("distinguishing trace:"), "{stdout}");

    // The flag refuses combinations that need a materialized LTS.
    let (_, stderr, ok) = multival(&["compare", &model, &plain, "--on-the-fly"]);
    assert!(!ok);
    assert!(stderr.contains("traces only"), "{stderr}");
    let (_, stderr, ok) = multival(&["explore", &model, "--on-the-fly", "--aut", "out.aut"]);
    assert!(!ok);
    assert!(stderr.contains("materializes no LTS"), "{stderr}");
}

#[test]
fn parse_error_is_reported_on_stderr() {
    let model = write_model("broken.lot", "behaviour a;;; stop");
    let (_, stderr, ok) = multival(&["explore", &model]);
    assert!(!ok);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn solve_reports_throughput() {
    let model = write_model(
        "buf.lot",
        "process Buf[put, get](full: bool) :=
             [not full] -> put; Buf[put, get](true)
          [] [full] -> get; Buf[put, get](false)
         endproc
         behaviour Buf[put, get](false)",
    );
    let (stdout, _, ok) =
        multival(&["solve", &model, "--rate", "put=2", "--rate", "get=1", "--probe", "get"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("0.6667"), "{stdout}");
}

/// Like [`multival`], but returns the numeric exit code.
fn multival_code(args: &[&str]) -> (String, String, Option<i32>) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_multival")).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn budget_flags_yield_exit_code_3() {
    let model = write_model(
        "budget.lot",
        "process Count[tick](n: int 0..40) :=
             [n < 40] -> tick; Count[tick](n + 1)
         endproc
         behaviour Count[tick](0) ||| Count[tick](0)",
    );
    // A tripped state cap reports the partial space and exits 3.
    let (stdout, _, code) = multival_code(&["explore", &model, "--max-states", "10"]);
    assert_eq!(code, Some(3), "{stdout}");
    assert!(stdout.contains("Budget exceeded"), "{stdout}");
    assert!(stdout.contains("states: 10"), "partial space still reported: {stdout}");

    // A verdict on a partial space would be unsound: no verdict, exit 3.
    let (stdout, _, code) =
        multival_code(&["check", &model, "mu X. <true> true or <true> X", "--max-states", "10"]);
    assert_eq!(code, Some(3), "{stdout}");
    assert!(stdout.contains("NO VERDICT"), "{stdout}");

    // An immediate wall-clock deadline trips too.
    let (stdout, _, code) = multival_code(&["explore", &model, "--timeout-secs", "0"]);
    assert_eq!(code, Some(3), "{stdout}");

    // Within budget everything is exit 0, byte-for-byte as before.
    let (stdout, _, code) = multival_code(&["explore", &model]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("states: 1681"), "{stdout}");
}

#[test]
fn simulate_exits_2_when_stopping_rule_unmet() {
    let model = write_model(
        "sim-exit.lot",
        "process Buf[put, get](full: bool) :=
             [not full] -> put; Buf[put, get](true)
          [] [full] -> get; Buf[put, get](false)
         endproc
         behaviour Buf[put, get](false)",
    );
    // 16 trajectories cannot reach a 0.01% relative CI width.
    let (stdout, _, code) = multival_code(&[
        "simulate",
        &model,
        "--rate",
        "put=2",
        "--rate",
        "get=3",
        "--trajectories",
        "16",
        "--rel-width",
        "0.0001",
    ]);
    assert_eq!(code, Some(2), "{stdout}");
    assert!(stdout.contains("stopping rule was not met"), "{stdout}");

    // The default width converges easily and exits clean.
    let (stdout, _, code) =
        multival_code(&["simulate", &model, "--rate", "put=2", "--rate", "get=3"]);
    assert_eq!(code, Some(0), "{stdout}");
}

#[test]
fn serve_smoke_sigterm_drains() {
    use std::io::{BufRead, BufReader, Read as _, Write as _};

    let mut child = Command::new(env!("CARGO_BIN_EXE_multival"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("listening line");
    let addr: std::net::SocketAddr = line
        .trim()
        .rsplit("http://")
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("no address in {line:?}"));

    let exchange = |method: &str, path: &str, body: &str| -> String {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        raw
    };

    assert!(exchange("GET", "/v1/healthz", "").contains("\"status\":\"ok\""));
    let posted = exchange(
        "POST",
        "/v1/jobs",
        r#"{"kind":"explore","model":{"builtin":"xstream_pipeline"}}"#,
    );
    assert!(posted.contains("\"id\":1"), "{posted}");

    // SIGTERM while the job may still be in flight: the drain must finish
    // it and the final report must land on stdout before a clean exit.
    let _ =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("kill runs");
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "graceful shutdown exits 0: {status:?}");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("drain report");
    assert!(rest.contains("jobs accepted"), "{rest}");
    assert!(rest.contains("jobs done"), "{rest}");
}

#[test]
fn lint_flags_blocked_gate() {
    let model = write_model("blocked.lot", "behaviour (a; stop) |[a, b]| (a; stop)");
    let (stdout, _, ok) = multival(&["lint", &model]);
    assert!(ok);
    assert!(stdout.contains("blocks forever"), "{stdout}");
}
