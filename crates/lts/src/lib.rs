//! # multival-lts — explicit labeled transition systems
//!
//! The LTS toolbox of the Multival reproduction (DATE'08): the Rust
//! counterpart of CADP's BCG/Aldebaran layer. It provides:
//!
//! * [`Lts`] / [`LtsBuilder`] — explicit state spaces with interned labels;
//! * [`ops`] — LOTOS-style parallel composition (`|[G]|`, `||`, `|||`),
//!   hiding and renaming, used for *structural* bottom-up modeling;
//! * [`minimize`] — strong and branching bisimulation minimization by
//!   signature-based partition refinement (the engine of compositional
//!   verification);
//! * [`equiv`] — equivalence checking between two LTSs, including weak-trace
//!   comparison with distinguishing-trace diagnostics;
//! * [`simulation`] — strong/weak simulation preorders for refinement
//!   checking (implementation ≤ specification);
//! * [`analysis`] — reachability searches, deadlock/invariant witnesses;
//! * [`ts`] / [`reach`] — the on-the-fly layer: a [`TransitionSystem`]
//!   successor-function trait (the CADP Open/Caesar analogue) with lazy
//!   products, hide/rename views, and a generic exploration engine that
//!   walks implicit graphs without materializing them;
//! * [`io`] — Aldebaran `.aut`, compact binary BLTS, and Graphviz `.dot`
//!   interchange;
//! * [`store`] — pluggable state stores for million-state frontiers:
//!   hash-map, packed-arena, and spill-to-disk dedup backends behind one
//!   [`store::StateStore`] trait;
//! * [`pipeline`] — the smart compositional reduction pipeline: heuristic
//!   composition orders, early hiding, per-stage minimization, resumable
//!   checkpoints, and a canonical serialization for differential testing.
//!
//! # Examples
//!
//! Compose two handshaking components and minimize the result:
//!
//! ```
//! use multival_lts::{equiv::lts_from_triples, ops::{compose, Sync},
//!                    minimize::{minimize, Equivalence}};
//!
//! let sender = lts_from_triples(&[(0, "REQ", 1), (1, "ACK", 0)]);
//! let receiver = lts_from_triples(&[(0, "REQ", 1), (1, "i", 2), (2, "ACK", 0)]);
//! let system = compose(&sender, &receiver, &Sync::on(["REQ", "ACK"]));
//! let (min, stats) = minimize(&system, Equivalence::Branching);
//! assert!(min.num_states() <= system.num_states());
//! assert_eq!(stats.states_before, system.num_states());
//! ```

pub mod analysis;
pub mod equiv;
pub mod io;
pub mod label;
pub mod lts;
pub mod lzss;
pub mod minimize;
pub mod ops;
pub mod pipeline;
pub mod reach;
pub mod simulation;
pub mod store;
pub mod ts;
pub mod vbyte;

pub use label::{LabelId, LabelTable};
pub use lts::{Lts, LtsBuilder, StateId, Transition};
pub use minimize::{Equivalence, Partition, ReductionStats};
pub use multival_par::Workers;
pub use pipeline::{
    canonicalize, monolithic, run_pipeline, AbortReason, MonolithicRun, Network, Order,
    PipelineOptions, PipelineRun, StageStats,
};
pub use reach::{ReachOptions, ReachStats, ScanSummary, SearchOutcome};
pub use store::{make_store, PackState, StateStore, StoreConfig, StoreKind, StoreStats};
pub use ts::{HideView, LazyProduct, RenameView, TransitionSystem};
