//! Interned transition labels.
//!
//! A label is the full visible action of a transition, e.g. `PUSH !1 !true`.
//! The *gate* is the first whitespace-delimited token (`PUSH`); the remainder
//! are data offers. The internal action τ is always interned with id 0 and
//! displayed as `i`, following the Aldebaran/CADP convention.

use multival_par::fx::FxHashMap;
use std::fmt;

/// Identifier of an interned label inside a [`LabelTable`].
///
/// `LabelId::TAU` (id 0) always denotes the internal action τ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(pub u32);

impl LabelId {
    /// The internal (hidden) action τ, displayed as `i`.
    pub const TAU: LabelId = LabelId(0);

    /// Returns `true` if this label is the internal action τ.
    pub fn is_tau(self) -> bool {
        self == Self::TAU
    }

    /// Raw index of the label, usable to index per-label arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The textual spelling of the internal action in Aldebaran files.
pub const TAU_NAME: &str = "i";

/// An interning table mapping label strings to dense [`LabelId`]s.
///
/// # Examples
///
/// ```
/// use multival_lts::label::{LabelTable, LabelId};
///
/// let mut t = LabelTable::new();
/// let push = t.intern("PUSH !1");
/// assert_eq!(t.intern("PUSH !1"), push);
/// assert_eq!(t.name(push), "PUSH !1");
/// assert_eq!(t.intern("i"), LabelId::TAU);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LabelTable {
    names: Vec<String>,
    // Fx-hashed: label interning sits on the hot path of composition and
    // exploration, and the keys are short strings where SipHash dominates.
    index: FxHashMap<String, LabelId>,
}

impl LabelTable {
    /// Creates a table already containing τ (as id 0).
    pub fn new() -> Self {
        let mut t = LabelTable { names: Vec::new(), index: FxHashMap::default() };
        let tau = t.intern_raw(TAU_NAME.to_owned());
        debug_assert_eq!(tau, LabelId::TAU);
        t
    }

    fn intern_raw(&mut self, name: String) -> LabelId {
        if let Some(&id) = self.index.get(&name) {
            return id;
        }
        let id = LabelId(self.names.len() as u32);
        self.index.insert(name.clone(), id);
        self.names.push(name);
        id
    }

    /// Interns `name`, returning its id. `"i"` and `"tau"` both intern to τ.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if name == TAU_NAME || name.eq_ignore_ascii_case("tau") {
            return LabelId::TAU;
        }
        self.intern_raw(name.to_owned())
    }

    /// Looks up an already-interned label, if present.
    pub fn lookup(&self, name: &str) -> Option<LabelId> {
        if name == TAU_NAME || name.eq_ignore_ascii_case("tau") {
            return Some(LabelId::TAU);
        }
        self.index.get(name).copied()
    }

    /// The textual name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not interned in this table.
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// The gate (first whitespace-delimited token) of `id`'s name.
    pub fn gate(&self, id: LabelId) -> &str {
        gate_of(self.name(id))
    }

    /// Number of distinct labels (including τ).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if the table only contains τ.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (LabelId(i as u32), n.as_str()))
    }
}

/// Extracts the gate of a label string: everything before the first space.
///
/// # Examples
///
/// ```
/// assert_eq!(multival_lts::label::gate_of("PUSH !1 !true"), "PUSH");
/// assert_eq!(multival_lts::label::gate_of("GET"), "GET");
/// ```
pub fn gate_of(label: &str) -> &str {
    label.split_whitespace().next().unwrap_or(label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_is_id_zero() {
        let t = LabelTable::new();
        assert_eq!(t.lookup("i"), Some(LabelId::TAU));
        assert_eq!(t.name(LabelId::TAU), "i");
        assert!(LabelId::TAU.is_tau());
    }

    #[test]
    fn tau_aliases() {
        let mut t = LabelTable::new();
        assert_eq!(t.intern("tau"), LabelId::TAU);
        assert_eq!(t.intern("TAU"), LabelId::TAU);
        assert_eq!(t.intern("i"), LabelId::TAU);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = LabelTable::new();
        let a = t.intern("A");
        let b = t.intern("B !0");
        assert_ne!(a, b);
        assert_eq!(t.intern("A"), a);
        assert_eq!(t.len(), 3); // i, A, B !0
    }

    #[test]
    fn gate_extraction() {
        let mut t = LabelTable::new();
        let l = t.intern("SEND !3 ?x");
        assert_eq!(t.gate(l), "SEND");
        assert_eq!(gate_of("X"), "X");
        assert_eq!(gate_of(""), "");
    }

    #[test]
    fn iteration_order_matches_ids() {
        let mut t = LabelTable::new();
        t.intern("A");
        t.intern("B");
        let names: Vec<_> = t.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(names, vec!["i", "A", "B"]);
    }
}
