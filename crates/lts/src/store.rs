//! Pluggable state stores: the dedup structure behind every frontier.
//!
//! Exploration — whether of a lazy product ([`crate::reach`]) or of a
//! process-algebra term graph (`multival-pa`) — spends its memory in one
//! place: the map from *state* to *dense id* that decides whether a
//! successor is new. The engine's default `HashMap` keeps every key as an
//! individually allocated value plus ~48 bytes of table overhead, which
//! caps the frontier well short of the million-state spaces the
//! compositional flow targets (this is the role CADP's BCG state tables
//! play; see DESIGN.md §9).
//!
//! A [`StateStore`] abstracts that map over *packed byte keys*: callers
//! serialize each state once (component-id vectors as varints, terms via
//! their canonical encoding) and the store owns layout. Three backends:
//!
//! * [`HashStore`] — the current layout: a hash map from boxed key bytes
//!   to ids. Baseline and reference.
//! * [`ArenaStore`] — all keys packed end-to-end in one byte arena, with
//!   an open-addressing fingerprint table (`u64` Fx hash + id per slot).
//!   No per-state allocation, ~12 bytes fixed overhead per state.
//! * [`SpillStore`] — the arena split into 1 MiB segments; when resident
//!   bytes exceed a configurable budget, cold (sealed) segments are
//!   written to a temp file and dropped from memory. The fingerprint
//!   table stays resident, so lookups touch disk only to confirm a
//!   fingerprint match against a spilled key — a rare event.
//!
//! All backends assign ids densely in first-insertion order, so a BFS over
//! any backend numbers states identically — the differential suite in
//! `tests/` holds them to byte-identical LTS output.

use crate::lts::StateId;
use crate::vbyte::write_uv;
use multival_par::fx::{hash_bytes, FxHashMap};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which [`StateStore`] backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Hash map from boxed key bytes to ids (the historical layout).
    #[default]
    Hash,
    /// Contiguous packed arena + open-addressing fingerprint index.
    Arena,
    /// Arena segmented and paged to a temp file under a memory budget.
    Spill,
}

impl StoreKind {
    /// All kinds, for differential sweeps.
    pub const ALL: [StoreKind; 3] = [StoreKind::Hash, StoreKind::Arena, StoreKind::Spill];
}

impl fmt::Display for StoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StoreKind::Hash => "hash",
            StoreKind::Arena => "arena",
            StoreKind::Spill => "spill",
        })
    }
}

impl std::str::FromStr for StoreKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hash" => Ok(StoreKind::Hash),
            "arena" => Ok(StoreKind::Arena),
            "spill" => Ok(StoreKind::Spill),
            other => Err(format!("unknown store kind '{other}' (expected hash|arena|spill)")),
        }
    }
}

/// Store selection plus the memory budget honored by the spill backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreConfig {
    /// Backend to construct.
    pub kind: StoreKind,
    /// Resident-memory budget in bytes. Only [`StoreKind::Spill`] acts on
    /// it (by paging sealed segments out); other backends ignore it.
    pub mem_budget: Option<usize>,
}

impl StoreConfig {
    /// A config for `kind` with no budget.
    pub fn of(kind: StoreKind) -> Self {
        StoreConfig { kind, mem_budget: None }
    }
}

/// Counters reported by every backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// States interned.
    pub states: usize,
    /// Total packed key bytes (resident + spilled).
    pub key_bytes: usize,
    /// Estimated resident bytes (keys, index, bookkeeping).
    pub mem_bytes: usize,
    /// Key bytes currently paged out to the spill file.
    pub spilled_bytes: usize,
    /// Segments paged out over the store's lifetime.
    pub spilled_segments: usize,
}

/// A `packed key → dense id` interning map. Ids start at 0 and follow
/// first-insertion order exactly, whatever the backend.
pub trait StateStore: Send {
    /// Returns the id for `key`, interning it if new; the flag is `true`
    /// when this call inserted the key.
    fn get_or_insert(&mut self, key: &[u8]) -> (StateId, bool);

    /// Number of interned states.
    fn len(&self) -> usize;

    /// `true` when nothing has been interned.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated resident memory, in bytes.
    fn mem_bytes(&self) -> usize;

    /// Counter snapshot.
    fn stats(&self) -> StoreStats;
}

/// Constructs the backend selected by `config`.
pub fn make_store(config: &StoreConfig) -> Box<dyn StateStore> {
    match config.kind {
        StoreKind::Hash => Box::new(HashStore::new()),
        StoreKind::Arena => Box::new(ArenaStore::new()),
        StoreKind::Spill => {
            Box::new(SpillStore::new(config.mem_budget.unwrap_or(SpillStore::DEFAULT_BUDGET)))
        }
    }
}

/// A state that can serialize itself into a packed byte key. The encoding
/// must be *injective*: distinct states produce distinct byte strings.
pub trait PackState {
    /// Appends the packed key to `out` (which is cleared by the caller).
    fn pack(&self, out: &mut Vec<u8>);
}

impl PackState for StateId {
    fn pack(&self, out: &mut Vec<u8>) {
        write_uv(out, u64::from(*self));
    }
}

impl PackState for Vec<StateId> {
    fn pack(&self, out: &mut Vec<u8>) {
        // The length prefix keeps the encoding injective even if keys of
        // different arity ever share a store.
        write_uv(out, self.len() as u64);
        for &s in self {
            write_uv(out, u64::from(s));
        }
    }
}

// ---------------------------------------------------------------------------
// HashStore

/// The historical layout: `HashMap<Box<[u8]>, id>` (Fx-hashed).
#[derive(Default)]
pub struct HashStore {
    map: FxHashMap<Box<[u8]>, StateId>,
    key_bytes: usize,
}

impl HashStore {
    /// An empty store.
    pub fn new() -> Self {
        HashStore::default()
    }
}

impl StateStore for HashStore {
    fn get_or_insert(&mut self, key: &[u8]) -> (StateId, bool) {
        if let Some(&id) = self.map.get(key) {
            return (id, false);
        }
        let id = self.map.len() as StateId;
        self.key_bytes += key.len();
        self.map.insert(key.into(), id);
        (id, true)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn mem_bytes(&self) -> usize {
        // Keys + per-entry overhead (boxed slice header, table slot, hash).
        self.key_bytes + self.map.capacity() * 48
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            states: self.map.len(),
            key_bytes: self.key_bytes,
            mem_bytes: self.mem_bytes(),
            spilled_bytes: 0,
            spilled_segments: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Fingerprint table shared by the packed backends

/// Open-addressing `(fingerprint, id)` table with linear probing. Slots
/// store the full 64-bit Fx hash, so growth never re-reads keys, and a
/// probe only compares key bytes when the fingerprint already matches.
struct FingerprintTable {
    hashes: Vec<u64>,
    ids: Vec<StateId>,
    mask: usize,
}

/// Empty-slot sentinel; state counts are capped far below it.
const EMPTY: StateId = StateId::MAX;

impl FingerprintTable {
    fn new() -> Self {
        let cap = 1 << 10;
        FingerprintTable { hashes: vec![0; cap], ids: vec![EMPTY; cap], mask: cap - 1 }
    }

    /// Finds `hash`: returns the id of a slot whose fingerprint matches
    /// and whose key `confirm`s, or the empty-slot index to insert at.
    fn probe(&self, hash: u64, mut confirm: impl FnMut(StateId) -> bool) -> Result<StateId, usize> {
        let mut idx = hash as usize & self.mask;
        loop {
            let id = self.ids[idx];
            if id == EMPTY {
                return Err(idx);
            }
            if self.hashes[idx] == hash && confirm(id) {
                return Ok(id);
            }
            idx = (idx + 1) & self.mask;
        }
    }

    fn insert_at(&mut self, slot: usize, hash: u64, id: StateId) {
        self.hashes[slot] = hash;
        self.ids[slot] = id;
    }

    /// Grows ×2 when the load factor passes 3/4.
    fn maybe_grow(&mut self, len: usize) {
        if len * 4 < (self.mask + 1) * 3 {
            return;
        }
        let new_cap = (self.mask + 1) * 2;
        let mut hashes = vec![0u64; new_cap];
        let mut ids = vec![EMPTY; new_cap];
        let new_mask = new_cap - 1;
        for i in 0..=self.mask {
            let id = self.ids[i];
            if id == EMPTY {
                continue;
            }
            let h = self.hashes[i];
            let mut idx = h as usize & new_mask;
            while ids[idx] != EMPTY {
                idx = (idx + 1) & new_mask;
            }
            hashes[idx] = h;
            ids[idx] = id;
        }
        self.hashes = hashes;
        self.ids = ids;
        self.mask = new_mask;
    }

    fn mem_bytes(&self) -> usize {
        self.hashes.len() * (8 + 4)
    }
}

// ---------------------------------------------------------------------------
// ArenaStore

/// Packed arena backend: key bytes end-to-end in one buffer, per-key end
/// offsets, and a fingerprint table. No allocation per state.
pub struct ArenaStore {
    data: Vec<u8>,
    /// `ends[i]` — end offset of key `i` in `data` (start is `ends[i-1]`).
    ends: Vec<u64>,
    table: FingerprintTable,
}

impl Default for ArenaStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ArenaStore {
    /// An empty store.
    pub fn new() -> Self {
        ArenaStore { data: Vec::new(), ends: Vec::new(), table: FingerprintTable::new() }
    }

    /// The packed key bytes of an interned state.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not interned in this store.
    pub fn key(&self, id: StateId) -> &[u8] {
        let i = id as usize;
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.data[start..self.ends[i] as usize]
    }
}

impl StateStore for ArenaStore {
    fn get_or_insert(&mut self, key: &[u8]) -> (StateId, bool) {
        let hash = hash_bytes(key);
        let data = &self.data;
        let ends = &self.ends;
        let key_of = |id: StateId| {
            let i = id as usize;
            let start = if i == 0 { 0 } else { ends[i - 1] as usize };
            &data[start..ends[i] as usize]
        };
        match self.table.probe(hash, |id| key_of(id) == key) {
            Ok(id) => (id, false),
            Err(slot) => {
                let id = self.ends.len() as StateId;
                self.data.extend_from_slice(key);
                self.ends.push(self.data.len() as u64);
                self.table.insert_at(slot, hash, id);
                self.table.maybe_grow(self.ends.len());
                (id, true)
            }
        }
    }

    fn len(&self) -> usize {
        self.ends.len()
    }

    fn mem_bytes(&self) -> usize {
        self.data.capacity() + self.ends.capacity() * 8 + self.table.mem_bytes()
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            states: self.ends.len(),
            key_bytes: self.data.len(),
            mem_bytes: self.mem_bytes(),
            spilled_bytes: 0,
            spilled_segments: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// SpillStore

/// A segment of the spillable arena.
enum Segment {
    /// In memory.
    Resident(Vec<u8>),
    /// Paged out: starts at this offset in the spill file.
    Spilled { offset: u64 },
}

/// Arena backend that pages sealed segments to a temp file once resident
/// bytes exceed the budget. See the module docs for the policy.
pub struct SpillStore {
    segments: Vec<Segment>,
    /// Per key: `(segment, offset in segment, len)`.
    locs: Vec<(u32, u32, u32)>,
    table: FingerprintTable,
    budget: usize,
    resident_key_bytes: usize,
    key_bytes: usize,
    spilled_bytes: usize,
    spilled_segments: usize,
    file: Option<File>,
    path: Option<PathBuf>,
    file_len: u64,
    /// Segment granularity: [`SEGMENT_BYTES`] normally, smaller when the
    /// budget itself is smaller (so tight budgets can still seal + spill).
    segment_bytes: usize,
}

/// Sealed-segment size: big enough that a spill write is one cheap
/// sequential I/O, small enough that the budget is tracked at fine grain.
const SEGMENT_BYTES: usize = 1 << 20;

/// Floor on the adaptive segment size.
const MIN_SEGMENT_BYTES: usize = 4 << 10;

/// Distinguishes spill files of concurrent stores in one process.
static SPILL_SERIAL: AtomicU64 = AtomicU64::new(0);

impl SpillStore {
    /// Default resident budget when none is configured: 256 MiB.
    pub const DEFAULT_BUDGET: usize = 256 << 20;

    /// An empty store with the given resident budget in bytes.
    pub fn new(budget: usize) -> Self {
        let segment_bytes = budget.clamp(MIN_SEGMENT_BYTES, SEGMENT_BYTES);
        SpillStore {
            segments: vec![Segment::Resident(Vec::with_capacity(segment_bytes))],
            locs: Vec::new(),
            table: FingerprintTable::new(),
            budget,
            resident_key_bytes: 0,
            key_bytes: 0,
            spilled_bytes: 0,
            spilled_segments: 0,
            file: None,
            path: None,
            file_len: 0,
            segment_bytes,
        }
    }

    /// Reads key `id` into `buf` (spilled keys come back from the file).
    fn read_key(&mut self, id: StateId, buf: &mut Vec<u8>) {
        let (seg, off, len) = self.locs[id as usize];
        buf.clear();
        let file_offset = match &self.segments[seg as usize] {
            Segment::Resident(bytes) => {
                buf.extend_from_slice(&bytes[off as usize..(off + len) as usize]);
                return;
            }
            Segment::Spilled { offset, .. } => *offset,
        };
        let file = self.file.as_mut().expect("spilled segment implies a spill file");
        buf.resize(len as usize, 0);
        file.seek(SeekFrom::Start(file_offset + u64::from(off)))
            .and_then(|_| file.read_exact(buf))
            .expect("spill file read");
    }

    /// Pages sealed resident segments out, oldest first, until resident
    /// memory fits the budget (the active segment always stays resident).
    fn enforce_budget(&mut self) {
        let active = self.segments.len() - 1;
        let mut seg = 0;
        while self.mem_bytes() > self.budget && seg < active {
            if let Segment::Resident(bytes) = &self.segments[seg] {
                let len = bytes.len();
                if len > 0 {
                    if self.file.is_none() {
                        let serial = SPILL_SERIAL.fetch_add(1, Ordering::Relaxed);
                        let path = std::env::temp_dir()
                            .join(format!("multival-spill-{}-{serial}.bin", std::process::id()));
                        let f = OpenOptions::new()
                            .create(true)
                            .truncate(true)
                            .read(true)
                            .write(true)
                            .open(&path)
                            .expect("create spill file");
                        self.path = Some(path);
                        self.file = Some(f);
                    }
                    let file = self.file.as_mut().expect("just created");
                    let Segment::Resident(bytes) = &self.segments[seg] else { unreachable!() };
                    file.seek(SeekFrom::Start(self.file_len))
                        .and_then(|_| file.write_all(bytes))
                        .expect("spill file write");
                    let offset = self.file_len;
                    self.file_len += len as u64;
                    self.resident_key_bytes -= len;
                    self.spilled_bytes += len;
                    self.spilled_segments += 1;
                    self.segments[seg] = Segment::Spilled { offset };
                }
            }
            seg += 1;
        }
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        self.file = None;
        if let Some(path) = self.path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl StateStore for SpillStore {
    fn get_or_insert(&mut self, key: &[u8]) -> (StateId, bool) {
        let hash = hash_bytes(key);
        // Probe with an owned read buffer: a fingerprint match against a
        // spilled key needs a file read, so the closure-based zero-copy
        // path of `ArenaStore` does not apply here.
        let mut idx = hash as usize & self.table.mask;
        let mut buf = Vec::new();
        let slot = loop {
            let id = self.table.ids[idx];
            if id == EMPTY {
                break idx;
            }
            if self.table.hashes[idx] == hash {
                self.read_key(id, &mut buf);
                if buf == key {
                    return (id, false);
                }
            }
            idx = (idx + 1) & self.table.mask;
        };

        let id = self.locs.len() as StateId;
        let active = self.segments.len() - 1;
        let seal = match &self.segments[active] {
            Segment::Resident(bytes) => {
                !bytes.is_empty() && bytes.len() + key.len() > self.segment_bytes
            }
            Segment::Spilled { .. } => unreachable!("active segment is always resident"),
        };
        let active = if seal {
            self.segments.push(Segment::Resident(Vec::with_capacity(self.segment_bytes)));
            active + 1
        } else {
            active
        };
        let Segment::Resident(bytes) = &mut self.segments[active] else {
            unreachable!("active segment is always resident")
        };
        let off = bytes.len() as u32;
        bytes.extend_from_slice(key);
        self.locs.push((active as u32, off, key.len() as u32));
        self.resident_key_bytes += key.len();
        self.key_bytes += key.len();
        self.table.insert_at(slot, hash, id);
        self.table.maybe_grow(self.locs.len());
        self.enforce_budget();
        (id, true)
    }

    fn len(&self) -> usize {
        self.locs.len()
    }

    fn mem_bytes(&self) -> usize {
        self.resident_key_bytes + self.locs.capacity() * 12 + self.table.mem_bytes()
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            states: self.locs.len(),
            key_bytes: self.key_bytes,
            mem_bytes: self.mem_bytes(),
            spilled_bytes: self.spilled_bytes,
            spilled_segments: self.spilled_segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random key stream with repeats.
    fn keys(n: usize) -> Vec<Vec<u8>> {
        let mut x: u64 = 0x9e3779b97f4a7c15;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let len = 1 + (x % 23) as usize;
                let modulus = 1 + (n as u64 / 2); // force repeats
                let v = x % modulus;
                let mut k = Vec::with_capacity(len);
                for i in 0..len {
                    k.push((v >> (8 * (i % 8))) as u8);
                }
                k
            })
            .collect()
    }

    fn drive(store: &mut dyn StateStore, keys: &[Vec<u8>]) -> Vec<(StateId, bool)> {
        keys.iter().map(|k| store.get_or_insert(k)).collect()
    }

    #[test]
    fn backends_agree_on_ids_and_novelty() {
        let ks = keys(5_000);
        let mut hash = HashStore::new();
        let mut arena = ArenaStore::new();
        let mut spill = SpillStore::new(1); // pathological budget: spill everything
        let a = drive(&mut hash, &ks);
        let b = drive(&mut arena, &ks);
        let c = drive(&mut spill, &ks);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(hash.len(), arena.len());
        assert_eq!(hash.len(), spill.len());
        assert!(spill.stats().spilled_segments > 0 || spill.stats().key_bytes < SEGMENT_BYTES);
    }

    #[test]
    fn ids_are_dense_insertion_order() {
        let mut store = ArenaStore::new();
        assert_eq!(store.get_or_insert(b"a"), (0, true));
        assert_eq!(store.get_or_insert(b"bb"), (1, true));
        assert_eq!(store.get_or_insert(b"a"), (0, false));
        assert_eq!(store.get_or_insert(b""), (2, true));
        assert_eq!(store.get_or_insert(b"bb"), (1, false));
        assert_eq!(store.len(), 3);
        assert_eq!(store.key(2), b"");
    }

    #[test]
    fn spill_store_respects_budget_and_still_answers() {
        let mut store = SpillStore::new(64 << 10);
        let ks = keys(20_000);
        let first = drive(&mut store, &ks);
        // Every repeat probe must hit the same id, even for spilled keys.
        let again = drive(&mut store, &ks);
        for (i, ((id1, _), (id2, new2))) in first.iter().zip(&again).enumerate() {
            assert_eq!(id1, id2, "key {i} changed id");
            assert!(!new2, "key {i} reinserted");
        }
        let stats = store.stats();
        assert!(stats.spilled_segments > 0, "budget should have forced a spill");
        assert!(stats.spilled_bytes > 0);
        // Resident memory stays near the budget: the table itself is
        // allowed to exceed it, but key bytes must have been paged out.
        assert!(store.resident_key_bytes < stats.key_bytes);
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let path;
        {
            let mut store = SpillStore::new(1);
            let ks = keys(4_000);
            drive(&mut store, &ks);
            path = store.path.clone();
            assert!(path.as_ref().is_some_and(|p| p.exists()));
        }
        assert!(!path.expect("spill happened").exists());
    }

    #[test]
    fn store_kind_parses() {
        assert_eq!("arena".parse::<StoreKind>(), Ok(StoreKind::Arena));
        assert_eq!("hash".parse::<StoreKind>(), Ok(StoreKind::Hash));
        assert_eq!("spill".parse::<StoreKind>(), Ok(StoreKind::Spill));
        assert!("mmap".parse::<StoreKind>().is_err());
        assert_eq!(StoreKind::Spill.to_string(), "spill");
    }

    #[test]
    fn pack_state_is_injective_on_vectors() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        vec![1u32, 2].pack(&mut a);
        vec![1u32, 2, 0].pack(&mut b);
        assert_ne!(a, b);
    }
}
