//! Textual interchange formats: Aldebaran (`.aut`, CADP's exchange format)
//! and Graphviz (`.dot`).
//!
//! The Aldebaran format is line-oriented:
//!
//! ```text
//! des (0, 2, 2)
//! (0, "PUSH !1", 1)
//! (1, "i", 0)
//! ```
//!
//! where the header carries `(initial-state, #transitions, #states)`.

use crate::label::LabelTable;
use crate::lts::{Lts, StateId};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error produced when parsing an Aldebaran file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAutError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseAutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aut parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseAutError {}

/// Serializes an LTS in Aldebaran format.
///
/// # Examples
///
/// ```
/// use multival_lts::{equiv::lts_from_triples, io::{write_aut, read_aut}};
///
/// let lts = lts_from_triples(&[(0, "a", 1), (1, "i", 0)]);
/// let text = write_aut(&lts);
/// let back = read_aut(&text).expect("roundtrip");
/// assert_eq!(back.num_states(), 2);
/// assert_eq!(back.num_transitions(), 2);
/// ```
pub fn write_aut(lts: &Lts) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "des ({}, {}, {})", lts.initial(), lts.num_transitions(), lts.num_states());
    for (s, l, t) in lts.iter_transitions() {
        let _ = writeln!(out, "({}, \"{}\", {})", s, escape_label(lts.labels().name(l)), t);
    }
    out
}

/// Escapes a label for a quoted Aldebaran string: backslashes first, then
/// quotes, so the output re-parses unambiguously (and conforming third-party
/// readers agree). The old writer left backslashes bare, which a conforming
/// reader mis-interprets as escape introducers.
fn escape_label(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            c => out.push(c),
        }
    }
    out
}

/// Undoes [`escape_label`]: `\\` → `\`, `\"` → `"`. A backslash before any
/// other character is kept verbatim (leniency for files written by the old
/// writer, which never escaped backslashes).
fn unescape_label(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.peek() {
                Some('\\') => {
                    out.push('\\');
                    chars.next();
                }
                Some('"') => {
                    out.push('"');
                    chars.next();
                }
                _ => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses an Aldebaran file into an LTS.
///
/// # Errors
///
/// Returns [`ParseAutError`] on malformed headers or transition lines, state
/// ids beyond the declared count, or a transition count mismatch.
pub fn read_aut(text: &str) -> Result<Lts, ParseAutError> {
    let mut lines = text.lines().enumerate();
    let (header_no, header) = lines
        .by_ref()
        .find(|(_, l)| !l.trim().is_empty())
        .ok_or(ParseAutError { line: 1, message: "empty file".into() })?;
    let header = header.trim();
    let inner = header
        .strip_prefix("des")
        .map(str::trim)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| ParseAutError {
            line: header_no + 1,
            message: format!("expected `des (init, ntrans, nstates)`, got `{header}`"),
        })?;
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    if parts.len() != 3 {
        return Err(ParseAutError {
            line: header_no + 1,
            message: "header must have three comma-separated fields".into(),
        });
    }
    let parse_num = |s: &str, line: usize| {
        s.parse::<u32>()
            .map_err(|_| ParseAutError { line, message: format!("invalid number `{s}`") })
    };
    let initial = parse_num(parts[0], header_no + 1)?;
    let ntrans = parse_num(parts[1], header_no + 1)? as usize;
    let nstates = parse_num(parts[2], header_no + 1)?;

    let mut labels = LabelTable::new();
    let mut transitions: Vec<(StateId, crate::label::LabelId, StateId)> = Vec::new();
    for (no, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let body = line.strip_prefix('(').and_then(|r| r.strip_suffix(')')).ok_or_else(|| {
            ParseAutError {
                line: no + 1,
                message: format!("expected `(src, \"label\", dst)`, got `{line}`"),
            }
        })?;
        // Split as: src , "label with possible commas" , dst
        let first_comma = body.find(',').ok_or_else(|| ParseAutError {
            line: no + 1,
            message: "missing comma after source state".into(),
        })?;
        let last_comma = body.rfind(',').ok_or_else(|| ParseAutError {
            line: no + 1,
            message: "missing comma before target state".into(),
        })?;
        if first_comma == last_comma {
            return Err(ParseAutError { line: no + 1, message: "expected three fields".into() });
        }
        let src = parse_num(body[..first_comma].trim(), no + 1)?;
        let dst = parse_num(body[last_comma + 1..].trim(), no + 1)?;
        let mut label = body[first_comma + 1..last_comma].trim();
        if label.len() >= 2 && label.starts_with('"') && label.ends_with('"') {
            label = &label[1..label.len() - 1];
        }
        let unescaped = unescape_label(label);
        if src >= nstates || dst >= nstates {
            return Err(ParseAutError {
                line: no + 1,
                message: format!("state id out of range (declared {nstates} states)"),
            });
        }
        transitions.push((src, labels.intern(&unescaped), dst));
    }
    if transitions.len() != ntrans {
        return Err(ParseAutError {
            line: header_no + 1,
            message: format!(
                "header declares {ntrans} transitions but {} were found",
                transitions.len()
            ),
        });
    }
    if initial >= nstates.max(1) {
        return Err(ParseAutError {
            line: header_no + 1,
            message: "initial state out of range".into(),
        });
    }
    Ok(Lts::from_parts(labels, nstates.max(1), initial, transitions))
}

/// Serializes an LTS as a Graphviz digraph (for visual inspection of small
/// state spaces). τ edges are drawn dashed.
pub fn write_dot(lts: &Lts, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    let _ = writeln!(out, "  s{} [style=bold];", lts.initial());
    for s in 0..lts.num_states() as StateId {
        if lts.transitions_from(s).is_empty() {
            let _ = writeln!(out, "  s{s} [shape=doublecircle];");
        }
    }
    for (s, l, t) in lts.iter_transitions() {
        let label = escape_label(lts.labels().name(l));
        let style = if l.is_tau() { ", style=dashed" } else { "" };
        let _ = writeln!(out, "  s{s} -> s{t} [label=\"{label}\"{style}];");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::lts_from_triples;

    #[test]
    fn roundtrip_preserves_structure() {
        let lts = lts_from_triples(&[(0, "PUSH !1 !true", 1), (1, "i", 2), (2, "POP !1", 0)]);
        let text = write_aut(&lts);
        let back = read_aut(&text).expect("roundtrip parses");
        assert_eq!(back.num_states(), lts.num_states());
        assert_eq!(back.num_transitions(), lts.num_transitions());
        assert_eq!(back.initial(), lts.initial());
        let names: Vec<_> =
            back.iter_transitions().map(|(_, l, _)| back.labels().name(l).to_owned()).collect();
        assert!(names.contains(&"PUSH !1 !true".to_owned()));
        assert!(names.contains(&"i".to_owned()));
    }

    #[test]
    fn label_with_comma_roundtrips() {
        let lts = lts_from_triples(&[(0, "SEND !pair(1, 2)", 1)]);
        let back = read_aut(&write_aut(&lts)).expect("comma label parses");
        let (_, l, _) = back.iter_transitions().next().expect("one transition");
        assert_eq!(back.labels().name(l), "SEND !pair(1, 2)");
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_aut("hello").is_err());
        assert!(read_aut("des (0, 1)").is_err());
        assert!(read_aut("des (x, 1, 2)").is_err());
    }

    #[test]
    fn rejects_count_mismatch() {
        let err = read_aut("des (0, 2, 2)\n(0, \"a\", 1)\n").expect_err("mismatch");
        assert!(err.message.contains("declares 2 transitions"));
    }

    #[test]
    fn rejects_out_of_range_state() {
        let err = read_aut("des (0, 1, 2)\n(0, \"a\", 5)\n").expect_err("range");
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn dot_output_mentions_all_edges() {
        let lts = lts_from_triples(&[(0, "a", 1), (1, "i", 0)]);
        let dot = write_dot(&lts, "test");
        assert!(dot.contains("s0 -> s1"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn escaped_quotes_roundtrip() {
        let lts = lts_from_triples(&[(0, "SAY !\"hi\"", 1)]);
        let back = read_aut(&write_aut(&lts)).expect("quoted label parses");
        let (_, l, _) = back.iter_transitions().next().expect("one transition");
        assert_eq!(back.labels().name(l), "SAY !\"hi\"");
    }

    #[test]
    fn backslashes_are_escaped_on_write_and_roundtrip() {
        // Every mix of backslashes, quotes, and spaces must survive a
        // write/read cycle, and the written form must escape backslashes so
        // conforming Aldebaran readers agree on the label.
        for name in [r"a\b", r"a\\b", r"end\", r#"\""#, r#"mix \"q\" uo"#, r"  spaced \ out  "] {
            let lts = lts_from_triples(&[(0, name, 1)]);
            let text = write_aut(&lts);
            let back = read_aut(&text).expect("escaped label parses");
            let (_, l, _) = back.iter_transitions().next().expect("one transition");
            assert_eq!(back.labels().name(l), name, "roundtrip of {name:?} via {text}");
        }
        let lts = lts_from_triples(&[(0, r"a\b", 1)]);
        assert!(write_aut(&lts).contains(r"a\\b"), "bare backslash must be written escaped");
    }

    #[test]
    fn conforming_escaped_backslash_is_unescaped() {
        // A file written by a conforming tool: `\\` denotes one backslash.
        let lts = read_aut("des (0, 1, 2)\n(0, \"a\\\\b\", 1)\n").expect("parses");
        let (_, l, _) = lts.iter_transitions().next().expect("one transition");
        assert_eq!(lts.labels().name(l), r"a\b");
    }

    #[test]
    fn legacy_bare_backslash_still_parses() {
        // Files written by the pre-escaping writer left backslashes bare; a
        // lone backslash before an ordinary character is kept verbatim.
        let lts = read_aut("des (0, 1, 2)\n(0, \"a\\b\", 1)\n").expect("parses");
        let (_, l, _) = lts.iter_transitions().next().expect("one transition");
        assert_eq!(lts.labels().name(l), r"a\b");
    }
}
