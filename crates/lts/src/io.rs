//! Interchange formats: Aldebaran (`.aut`, CADP's textual exchange
//! format), the compact binary **BLTS** format, and Graphviz (`.dot`).
//!
//! The Aldebaran format is line-oriented:
//!
//! ```text
//! des (0, 2, 2)
//! (0, "PUSH !1", 1)
//! (1, "i", 0)
//! ```
//!
//! where the header carries `(initial-state, #transitions, #states)`.
//!
//! BLTS is this crate's analogue of CADP's BCG: a varint/delta encoding
//! of the canonical transition order with an interned label table, at a
//! few bytes per transition instead of a ~20-byte text line. See
//! [`write_blts`] for the on-disk layout and DESIGN.md §9 for rationale.

use crate::label::{LabelId, LabelTable};
use crate::lts::{Lts, StateId};
use crate::vbyte::{read_uv, unzigzag, write_uv, zigzag};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error produced when parsing an Aldebaran file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAutError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseAutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aut parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseAutError {}

/// Serializes an LTS in Aldebaran format.
///
/// # Examples
///
/// ```
/// use multival_lts::{equiv::lts_from_triples, io::{write_aut, read_aut}};
///
/// let lts = lts_from_triples(&[(0, "a", 1), (1, "i", 0)]);
/// let text = write_aut(&lts);
/// let back = read_aut(&text).expect("roundtrip");
/// assert_eq!(back.num_states(), 2);
/// assert_eq!(back.num_transitions(), 2);
/// ```
pub fn write_aut(lts: &Lts) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "des ({}, {}, {})", lts.initial(), lts.num_transitions(), lts.num_states());
    for (s, l, t) in lts.iter_transitions() {
        let _ = writeln!(out, "({}, \"{}\", {})", s, escape_label(lts.labels().name(l)), t);
    }
    out
}

/// Escapes a label for a quoted Aldebaran string: backslashes first, then
/// quotes, so the output re-parses unambiguously (and conforming third-party
/// readers agree). The old writer left backslashes bare, which a conforming
/// reader mis-interprets as escape introducers.
fn escape_label(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            c => out.push(c),
        }
    }
    out
}

/// Undoes [`escape_label`]: `\\` → `\`, `\"` → `"`. A backslash before any
/// other character is kept verbatim (leniency for files written by the old
/// writer, which never escaped backslashes).
fn unescape_label(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.peek() {
                Some('\\') => {
                    out.push('\\');
                    chars.next();
                }
                Some('"') => {
                    out.push('"');
                    chars.next();
                }
                _ => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses an Aldebaran file into an LTS.
///
/// # Errors
///
/// Returns [`ParseAutError`] on malformed headers or transition lines, state
/// ids beyond the declared count, or a transition count mismatch.
pub fn read_aut(text: &str) -> Result<Lts, ParseAutError> {
    let mut lines = text.lines().enumerate();
    let (header_no, header) = lines
        .by_ref()
        .find(|(_, l)| !l.trim().is_empty())
        .ok_or(ParseAutError { line: 1, message: "empty file".into() })?;
    let header = header.trim();
    let inner = header
        .strip_prefix("des")
        .map(str::trim)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| ParseAutError {
            line: header_no + 1,
            message: format!("expected `des (init, ntrans, nstates)`, got `{header}`"),
        })?;
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    if parts.len() != 3 {
        return Err(ParseAutError {
            line: header_no + 1,
            message: "header must have three comma-separated fields".into(),
        });
    }
    let parse_num = |s: &str, line: usize| {
        s.parse::<u32>()
            .map_err(|_| ParseAutError { line, message: format!("invalid number `{s}`") })
    };
    let initial = parse_num(parts[0], header_no + 1)?;
    let ntrans = parse_num(parts[1], header_no + 1)? as usize;
    let nstates = parse_num(parts[2], header_no + 1)?;

    let mut labels = LabelTable::new();
    let mut transitions: Vec<(StateId, crate::label::LabelId, StateId)> = Vec::new();
    for (no, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let body = line.strip_prefix('(').and_then(|r| r.strip_suffix(')')).ok_or_else(|| {
            ParseAutError {
                line: no + 1,
                message: format!("expected `(src, \"label\", dst)`, got `{line}`"),
            }
        })?;
        // Split as: src , "label with possible commas" , dst
        let first_comma = body.find(',').ok_or_else(|| ParseAutError {
            line: no + 1,
            message: "missing comma after source state".into(),
        })?;
        let last_comma = body.rfind(',').ok_or_else(|| ParseAutError {
            line: no + 1,
            message: "missing comma before target state".into(),
        })?;
        if first_comma == last_comma {
            return Err(ParseAutError { line: no + 1, message: "expected three fields".into() });
        }
        let src = parse_num(body[..first_comma].trim(), no + 1)?;
        let dst = parse_num(body[last_comma + 1..].trim(), no + 1)?;
        let mut label = body[first_comma + 1..last_comma].trim();
        if label.len() >= 2 && label.starts_with('"') && label.ends_with('"') {
            label = &label[1..label.len() - 1];
        }
        let unescaped = unescape_label(label);
        if src >= nstates || dst >= nstates {
            return Err(ParseAutError {
                line: no + 1,
                message: format!("state id out of range (declared {nstates} states)"),
            });
        }
        transitions.push((src, labels.intern(&unescaped), dst));
    }
    if transitions.len() != ntrans {
        return Err(ParseAutError {
            line: header_no + 1,
            message: format!(
                "header declares {ntrans} transitions but {} were found",
                transitions.len()
            ),
        });
    }
    if initial >= nstates.max(1) {
        return Err(ParseAutError {
            line: header_no + 1,
            message: "initial state out of range".into(),
        });
    }
    Ok(Lts::from_parts(labels, nstates.max(1), initial, transitions))
}

// ---------------------------------------------------------------------------
// BLTS: compact binary LTS format

/// Magic bytes opening every BLTS file.
pub const BLTS_MAGIC: [u8; 4] = *b"BLTS";

/// Current BLTS format version.
pub const BLTS_VERSION: u8 = 1;

/// Source states per chunk in the streaming layout.
const BLTS_CHUNK_STATES: usize = 4096;

/// Transition count at which a chunk closes early (after finishing the
/// current state), bounding decoded chunk size for dense graphs.
const BLTS_CHUNK_TRANS: usize = 65_536;

/// Error produced when decoding a BLTS buffer fails. Every malformed,
/// truncated, or corrupted input is reported through this type — the
/// decoder never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BltsError {
    /// Byte offset at which decoding failed (best effort).
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for BltsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blts decode error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for BltsError {}

/// FNV-1a 64-bit, used as the BLTS trailer checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes an LTS in BLTS format.
///
/// Layout (all integers LEB128 varints unless noted):
///
/// ```text
/// "BLTS"  version(1 byte)
/// initial  nstates  ntrans  nlabels
/// nlabels × ( len, utf8 bytes )          -- label table in id order
/// state chunks until nstates consumed:
///   cstates  ctrans                       -- consecutive source states
///   column "degrees"                      -- cstates × outdegree
///   column "labels"                       -- ctrans × label delta
///   column "targets"                      -- ctrans × target delta
/// checksum (8 bytes LE)                   -- FNV-1a 64 of everything above
/// ```
///
/// Each column is `raw_len, comp_len, comp_len bytes` — LZSS-compressed
/// ([`crate::lzss`]) when that is smaller, stored verbatim otherwise
/// (signalled by `comp_len == raw_len`). Column-major layout keeps each
/// stream self-similar, which is what makes LZSS effective here.
///
/// Transitions follow the canonical per-state `(label, dst)` order of
/// [`Lts::transitions_from`]. Within a state, labels are zigzag
/// delta-coded against the previous label (starting from 0); targets are
/// zigzag delta-coded against the source state at each label change and
/// plain delta-coded against the previous target inside a label run
/// (where the canonical sort makes them nondecreasing). Decoding rebuilds
/// the exact same LTS: `write_aut(read_blts(write_blts(l))) == write_aut(l)`.
///
/// # Examples
///
/// ```
/// use multival_lts::equiv::lts_from_triples;
/// use multival_lts::io::{read_blts, write_aut, write_blts};
///
/// let lts = lts_from_triples(&[(0, "PUSH !1", 1), (1, "i", 0)]);
/// let bytes = write_blts(&lts);
/// let back = read_blts(&bytes).expect("roundtrip");
/// assert_eq!(write_aut(&back), write_aut(&lts));
/// ```
pub fn write_blts(lts: &Lts) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + lts.num_transitions());
    out.extend_from_slice(&BLTS_MAGIC);
    out.push(BLTS_VERSION);
    write_uv(&mut out, u64::from(lts.initial()));
    write_uv(&mut out, lts.num_states() as u64);
    write_uv(&mut out, lts.num_transitions() as u64);
    write_uv(&mut out, lts.labels().len() as u64);
    for (_, name) in lts.labels().iter() {
        write_uv(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
    }
    let nstates = lts.num_states() as u32;
    let mut first = 0u32;
    let (mut degrees, mut labcol, mut dstcol) = (Vec::new(), Vec::new(), Vec::new());
    while first < nstates {
        let mut last = first;
        let mut ctrans = 0usize;
        while last < nstates
            && (last - first) < BLTS_CHUNK_STATES as u32
            && ctrans < BLTS_CHUNK_TRANS
        {
            ctrans += lts.transitions_from(last).len();
            last += 1;
        }
        degrees.clear();
        labcol.clear();
        dstcol.clear();
        for s in first..last {
            let trans = lts.transitions_from(s);
            write_uv(&mut degrees, trans.len() as u64);
            let mut prev_label = 0i64;
            let mut run_label = u64::MAX;
            let mut prev_dst: StateId = 0;
            for t in trans {
                let l = t.label.index() as u64;
                write_uv(&mut labcol, zigzag(l as i64 - prev_label));
                if l == run_label {
                    write_uv(&mut dstcol, u64::from(t.target - prev_dst));
                } else {
                    write_uv(&mut dstcol, zigzag(i64::from(t.target) - i64::from(s)));
                }
                prev_label = l as i64;
                run_label = l;
                prev_dst = t.target;
            }
        }
        write_uv(&mut out, u64::from(last - first));
        write_uv(&mut out, ctrans as u64);
        for col in [&degrees, &labcol, &dstcol] {
            write_column(&mut out, col);
        }
        first = last;
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Writes one column: `raw_len, comp_len, bytes`, compressed only when
/// that wins (`comp_len == raw_len` means stored verbatim).
fn write_column(out: &mut Vec<u8>, raw: &[u8]) {
    let comp = crate::lzss::compress(raw);
    write_uv(out, raw.len() as u64);
    if comp.len() < raw.len() {
        write_uv(out, comp.len() as u64);
        out.extend_from_slice(&comp);
    } else {
        write_uv(out, raw.len() as u64);
        out.extend_from_slice(raw);
    }
}

/// One decoded transition: source, label, target.
pub type BltsTransition = (StateId, LabelId, StateId);

/// Streaming BLTS decoder: parses the header and label table eagerly,
/// then yields transitions chunk by chunk, so consumers that fold or
/// filter transitions never hold the whole decoded list (resident memory
/// stays bounded by one decoded chunk).
///
/// The trailer checksum is verified up front (the input is already in
/// memory, so the pass is cheap); chunk decoding then only validates
/// structure and ranges.
pub struct BltsReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Initial state.
    pub initial: StateId,
    /// Declared state count.
    pub num_states: u32,
    /// Declared transition count.
    pub num_transitions: usize,
    /// Decoded label table.
    pub labels: LabelTable,
    next_state: u32,
    trans_seen: usize,
    failed: bool,
    chunk: Vec<BltsTransition>,
}

impl<'a> BltsReader<'a> {
    /// Parses the header, label table, and trailer checksum.
    ///
    /// # Errors
    ///
    /// Returns [`BltsError`] on bad magic, unsupported version, checksum
    /// mismatch, truncation, or malformed header fields.
    pub fn new(bytes: &'a [u8]) -> Result<Self, BltsError> {
        let fail = |offset: usize, message: &str| BltsError { offset, message: message.into() };
        if bytes.len() < 5 || bytes[..4] != BLTS_MAGIC {
            return Err(fail(0, "not a BLTS file (bad magic)"));
        }
        if bytes[4] != BLTS_VERSION {
            return Err(fail(4, "unsupported BLTS version"));
        }
        if bytes.len() < 13 {
            return Err(fail(bytes.len(), "truncated before checksum trailer"));
        }
        let body = &bytes[..bytes.len() - 8];
        let declared =
            u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8-byte trailer"));
        if fnv1a(body) != declared {
            return Err(fail(bytes.len() - 8, "checksum mismatch (corrupted file)"));
        }
        let mut pos = 5;
        let uv = |pos: &mut usize, what: &str| {
            read_uv(body, pos).ok_or_else(|| fail(*pos, &format!("truncated {what}")))
        };
        let initial = uv(&mut pos, "initial state")?;
        let num_states = uv(&mut pos, "state count")?;
        let num_transitions = uv(&mut pos, "transition count")?;
        let num_labels = uv(&mut pos, "label count")?;
        if num_states == 0 || num_states > u64::from(u32::MAX) {
            return Err(fail(pos, "state count out of range"));
        }
        if initial >= num_states {
            return Err(fail(pos, "initial state out of range"));
        }
        if num_labels == 0 || num_labels > u64::from(u32::MAX) {
            return Err(fail(pos, "label count out of range"));
        }
        let mut labels = LabelTable::new();
        for i in 0..num_labels {
            let len = uv(&mut pos, "label length")? as usize;
            let end = pos.checked_add(len).filter(|&e| e <= body.len());
            let end = end.ok_or_else(|| fail(pos, "truncated label bytes"))?;
            let name = std::str::from_utf8(&body[pos..end])
                .map_err(|_| fail(pos, "label is not valid UTF-8"))?;
            pos = end;
            if i == 0 {
                if name != crate::label::TAU_NAME {
                    return Err(fail(pos, "label 0 must be the internal action"));
                }
            } else if labels.intern(name).index() as u64 != i {
                return Err(fail(pos, "duplicate or misnumbered label"));
            }
        }
        Ok(BltsReader {
            bytes: body,
            pos,
            initial: initial as StateId,
            num_states: num_states as u32,
            num_transitions: num_transitions as usize,
            labels,
            next_state: 0,
            trans_seen: 0,
            failed: false,
            chunk: Vec::new(),
        })
    }

    /// Decodes the next chunk of transitions, or `None` when every state
    /// chunk has been consumed (or after an error has been reported).
    ///
    /// # Errors
    ///
    /// Returns [`BltsError`] on truncation, out-of-range endpoints or
    /// labels, or a chunk/total count mismatch.
    pub fn next_chunk(&mut self) -> Option<Result<&[BltsTransition], BltsError>> {
        if self.failed {
            return None;
        }
        if self.next_state == self.num_states {
            self.failed = true; // terminal either way: report at most once
            if self.pos != self.bytes.len() {
                return Some(Err(BltsError {
                    offset: self.pos,
                    message: "trailing bytes after final chunk".into(),
                }));
            }
            if self.trans_seen != self.num_transitions {
                return Some(Err(BltsError {
                    offset: self.pos,
                    message: format!(
                        "header declares {} transitions but chunks carried {}",
                        self.num_transitions, self.trans_seen
                    ),
                }));
            }
            return None;
        }
        match self.decode_chunk() {
            Ok(()) => Some(Ok(&self.chunk)),
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }

    /// Reads one column (`raw_len, comp_len, bytes`) into owned bytes,
    /// decompressing when `comp_len < raw_len`. `cap` bounds `raw_len`
    /// against absurd allocations from crafted headers.
    fn read_column(&mut self, cap: usize, what: &str) -> Result<Vec<u8>, BltsError> {
        let fail = |offset: usize, message: String| BltsError { offset, message };
        let raw_len = read_uv(self.bytes, &mut self.pos)
            .ok_or_else(|| fail(self.pos, format!("truncated {what} column length")))?
            as usize;
        if raw_len > cap {
            return Err(fail(self.pos, format!("{what} column length {raw_len} out of range")));
        }
        let comp_len = read_uv(self.bytes, &mut self.pos)
            .ok_or_else(|| fail(self.pos, format!("truncated {what} column length")))?
            as usize;
        if comp_len > raw_len {
            return Err(fail(
                self.pos,
                format!("{what} column over-long ({comp_len} > {raw_len})"),
            ));
        }
        let start = self.pos;
        let end = start
            .checked_add(comp_len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| fail(start, format!("truncated {what} column bytes")))?;
        self.pos = end;
        let slice = &self.bytes[start..end];
        if comp_len == raw_len {
            return Ok(slice.to_vec());
        }
        crate::lzss::decompress(slice, raw_len)
            .ok_or_else(|| fail(start, format!("corrupted {what} column")))
    }

    fn decode_chunk(&mut self) -> Result<(), BltsError> {
        let fail = |offset: usize, message: String| BltsError { offset, message };
        let uv = |bytes: &[u8], pos: &mut usize, what: &str| {
            read_uv(bytes, pos).ok_or_else(|| fail(*pos, format!("truncated {what}")))
        };
        let cstates = uv(self.bytes, &mut self.pos, "chunk state count")? as usize;
        if cstates == 0 || self.next_state as usize + cstates > self.num_states as usize {
            return Err(fail(self.pos, format!("chunk state count {cstates} out of range")));
        }
        let ctrans = uv(self.bytes, &mut self.pos, "chunk transition count")? as usize;
        if self.trans_seen + ctrans > self.num_transitions {
            return Err(fail(self.pos, format!("chunk transition count {ctrans} out of range")));
        }
        // Varints in these columns are at most 10 bytes each.
        let degrees = self.read_column(cstates * 10, "degree")?;
        let labcol = self.read_column(ctrans * 10, "label")?;
        let dstcol = self.read_column(ctrans * 10, "target")?;
        let (mut dp, mut lp, mut tp) = (0usize, 0usize, 0usize);
        self.chunk.clear();
        self.chunk.reserve(ctrans);
        let err_at = self.pos;
        for i in 0..cstates {
            let s = self.next_state + i as u32;
            let degree = uv(&degrees, &mut dp, "outdegree")?;
            if self.chunk.len() as u64 + degree > ctrans as u64 {
                return Err(fail(err_at, format!("outdegree {degree} exceeds chunk count")));
            }
            let mut prev_label = 0i64;
            let mut run_label = i64::MIN;
            let mut prev_dst: StateId = 0;
            for _ in 0..degree {
                let label = prev_label
                    .checked_add(unzigzag(uv(&labcol, &mut lp, "label delta")?))
                    .filter(|&l| l >= 0 && l < self.labels.len() as i64)
                    .ok_or_else(|| fail(err_at, "label id out of range".into()))?;
                let raw = uv(&dstcol, &mut tp, "target delta")?;
                let dst = if label == run_label {
                    u64::from(prev_dst).checked_add(raw)
                } else {
                    i64::from(s).checked_add(unzigzag(raw)).and_then(|d| u64::try_from(d).ok())
                };
                let dst = dst
                    .filter(|&d| d < u64::from(self.num_states))
                    .ok_or_else(|| fail(err_at, "target state out of range".into()))?
                    as StateId;
                prev_label = label;
                run_label = label;
                prev_dst = dst;
                self.chunk.push((s, LabelId(label as u32), dst));
            }
        }
        if self.chunk.len() != ctrans {
            return Err(fail(err_at, "chunk degrees disagree with transition count".into()));
        }
        if dp != degrees.len() || lp != labcol.len() || tp != dstcol.len() {
            return Err(fail(err_at, "column bytes left over after chunk".into()));
        }
        self.next_state += cstates as u32;
        self.trans_seen += ctrans;
        Ok(())
    }
}

/// Parses a BLTS buffer into an [`Lts`] via the streaming reader.
///
/// # Errors
///
/// Returns [`BltsError`] on any malformed, truncated, or corrupted input
/// (see [`BltsReader`]); never panics.
pub fn read_blts(bytes: &[u8]) -> Result<Lts, BltsError> {
    let mut reader = BltsReader::new(bytes)?;
    let mut transitions = Vec::with_capacity(reader.num_transitions);
    while let Some(chunk) = reader.next_chunk() {
        transitions.extend_from_slice(chunk?);
    }
    if transitions.len() != reader.num_transitions {
        return Err(BltsError {
            offset: bytes.len(),
            message: format!(
                "header declares {} transitions but {} were decoded",
                reader.num_transitions,
                transitions.len()
            ),
        });
    }
    // All endpoints and labels were range-checked during decoding, so
    // `from_parts` cannot panic here.
    Ok(Lts::from_parts(reader.labels, reader.num_states, reader.initial, transitions))
}

/// Serializes an LTS as a Graphviz digraph (for visual inspection of small
/// state spaces). τ edges are drawn dashed.
pub fn write_dot(lts: &Lts, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    let _ = writeln!(out, "  s{} [style=bold];", lts.initial());
    for s in 0..lts.num_states() as StateId {
        if lts.transitions_from(s).is_empty() {
            let _ = writeln!(out, "  s{s} [shape=doublecircle];");
        }
    }
    for (s, l, t) in lts.iter_transitions() {
        let label = escape_label(lts.labels().name(l));
        let style = if l.is_tau() { ", style=dashed" } else { "" };
        let _ = writeln!(out, "  s{s} -> s{t} [label=\"{label}\"{style}];");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::lts_from_triples;

    #[test]
    fn roundtrip_preserves_structure() {
        let lts = lts_from_triples(&[(0, "PUSH !1 !true", 1), (1, "i", 2), (2, "POP !1", 0)]);
        let text = write_aut(&lts);
        let back = read_aut(&text).expect("roundtrip parses");
        assert_eq!(back.num_states(), lts.num_states());
        assert_eq!(back.num_transitions(), lts.num_transitions());
        assert_eq!(back.initial(), lts.initial());
        let names: Vec<_> =
            back.iter_transitions().map(|(_, l, _)| back.labels().name(l).to_owned()).collect();
        assert!(names.contains(&"PUSH !1 !true".to_owned()));
        assert!(names.contains(&"i".to_owned()));
    }

    #[test]
    fn label_with_comma_roundtrips() {
        let lts = lts_from_triples(&[(0, "SEND !pair(1, 2)", 1)]);
        let back = read_aut(&write_aut(&lts)).expect("comma label parses");
        let (_, l, _) = back.iter_transitions().next().expect("one transition");
        assert_eq!(back.labels().name(l), "SEND !pair(1, 2)");
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_aut("hello").is_err());
        assert!(read_aut("des (0, 1)").is_err());
        assert!(read_aut("des (x, 1, 2)").is_err());
    }

    #[test]
    fn rejects_count_mismatch() {
        let err = read_aut("des (0, 2, 2)\n(0, \"a\", 1)\n").expect_err("mismatch");
        assert!(err.message.contains("declares 2 transitions"));
    }

    #[test]
    fn rejects_out_of_range_state() {
        let err = read_aut("des (0, 1, 2)\n(0, \"a\", 5)\n").expect_err("range");
        assert!(err.message.contains("out of range"));
    }

    /// A medium LTS (>4096 states, so BLTS streams in several chunks)
    /// with realistic multi-offer labels, for BLTS tests.
    fn medium_lts() -> Lts {
        let mut b = crate::lts::LtsBuilder::new();
        let n = 5_000u32;
        for _ in 0..n {
            b.add_state();
        }
        for s in 0..n {
            b.add_transition(s, &format!("FORWARD !{} !req !sample", s % 11), (s + 1) % n);
            b.add_transition(s, &format!("HANDOUT !{} !false", s % 5), (s + 13) % n);
            if s % 3 == 0 {
                b.add_transition(s, "i", s);
            }
        }
        b.build(0)
    }

    #[test]
    fn blts_roundtrip_is_canonical() {
        let lts = medium_lts();
        let bytes = write_blts(&lts);
        let back = read_blts(&bytes).expect("roundtrip");
        assert_eq!(write_aut(&lts), write_aut(&back));
    }

    #[test]
    fn blts_is_a_tenth_of_aut() {
        let lts = medium_lts();
        let aut = write_aut(&lts);
        let blts = write_blts(&lts);
        assert!(
            blts.len() * 10 <= aut.len(),
            "blts {} bytes vs aut {} bytes",
            blts.len(),
            aut.len()
        );
    }

    #[test]
    fn blts_streaming_reader_chunks_cover_everything() {
        let lts = medium_lts();
        let bytes = write_blts(&lts);
        let mut reader = BltsReader::new(&bytes).expect("header");
        assert_eq!(reader.num_states as usize, lts.num_states());
        let mut total = 0;
        let mut chunks = 0;
        while let Some(chunk) = reader.next_chunk() {
            total += chunk.expect("chunk decodes").len();
            chunks += 1;
        }
        assert_eq!(total, lts.num_transitions());
        assert!(chunks > 1, "a {total}-transition LTS must stream in several chunks");
    }

    #[test]
    fn blts_truncation_errors_at_every_length() {
        let lts = medium_lts();
        let bytes = write_blts(&lts);
        // Every strict prefix must fail cleanly (no panic, no success):
        // sample densely at the front and sparsely across the body.
        for len in (0..64).chain((64..bytes.len()).step_by(97)) {
            assert!(read_blts(&bytes[..len]).is_err(), "prefix of {len} bytes accepted");
        }
    }

    #[test]
    fn blts_corruption_is_detected() {
        let lts = medium_lts();
        let bytes = write_blts(&lts);
        for pos in (0..bytes.len()).step_by(53) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x41;
            assert!(read_blts(&bad).is_err(), "flip at byte {pos} accepted");
        }
    }

    #[test]
    fn blts_rejects_bad_magic_and_version() {
        let lts = medium_lts();
        let mut bytes = write_blts(&lts);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(read_blts(&bad), Err(e) if e.message.contains("magic")));
        bytes[4] = 9;
        assert!(matches!(read_blts(&bytes), Err(e) if e.message.contains("version")));
        assert!(read_blts(b"").is_err());
        assert!(read_blts(b"BLTS").is_err());
    }

    #[test]
    fn dot_output_mentions_all_edges() {
        let lts = lts_from_triples(&[(0, "a", 1), (1, "i", 0)]);
        let dot = write_dot(&lts, "test");
        assert!(dot.contains("s0 -> s1"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn escaped_quotes_roundtrip() {
        let lts = lts_from_triples(&[(0, "SAY !\"hi\"", 1)]);
        let back = read_aut(&write_aut(&lts)).expect("quoted label parses");
        let (_, l, _) = back.iter_transitions().next().expect("one transition");
        assert_eq!(back.labels().name(l), "SAY !\"hi\"");
    }

    #[test]
    fn backslashes_are_escaped_on_write_and_roundtrip() {
        // Every mix of backslashes, quotes, and spaces must survive a
        // write/read cycle, and the written form must escape backslashes so
        // conforming Aldebaran readers agree on the label.
        for name in [r"a\b", r"a\\b", r"end\", r#"\""#, r#"mix \"q\" uo"#, r"  spaced \ out  "] {
            let lts = lts_from_triples(&[(0, name, 1)]);
            let text = write_aut(&lts);
            let back = read_aut(&text).expect("escaped label parses");
            let (_, l, _) = back.iter_transitions().next().expect("one transition");
            assert_eq!(back.labels().name(l), name, "roundtrip of {name:?} via {text}");
        }
        let lts = lts_from_triples(&[(0, r"a\b", 1)]);
        assert!(write_aut(&lts).contains(r"a\\b"), "bare backslash must be written escaped");
    }

    #[test]
    fn conforming_escaped_backslash_is_unescaped() {
        // A file written by a conforming tool: `\\` denotes one backslash.
        let lts = read_aut("des (0, 1, 2)\n(0, \"a\\\\b\", 1)\n").expect("parses");
        let (_, l, _) = lts.iter_transitions().next().expect("one transition");
        assert_eq!(lts.labels().name(l), r"a\b");
    }

    #[test]
    fn legacy_bare_backslash_still_parses() {
        // Files written by the pre-escaping writer left backslashes bare; a
        // lone backslash before an ordinary character is kept verbatim.
        let lts = read_aut("des (0, 1, 2)\n(0, \"a\\b\", 1)\n").expect("parses");
        let (_, l, _) = lts.iter_transitions().next().expect("one transition");
        assert_eq!(lts.labels().name(l), r"a\b");
    }
}
