//! Variable-length integer coding shared by the BLTS format and the
//! packed state stores.
//!
//! Unsigned values use LEB128: seven payload bits per byte, high bit set
//! on every byte except the last. Signed deltas are zigzag-folded first
//! (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`) so small negative jumps stay
//! small on the wire.

/// Appends `v` to `out` in LEB128.
#[inline]
pub fn write_uv(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 value at `*pos`, advancing it. Returns `None` on
/// truncation or on an over-long encoding (more than 10 bytes).
#[inline]
pub fn read_uv(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Zigzag-folds a signed value into an unsigned one.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uv_round_trips() {
        let mut buf = Vec::new();
        let values =
            [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX, 42, 1 << 40];
        for &v in &values {
            write_uv(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_uv(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn uv_rejects_truncation() {
        let mut buf = Vec::new();
        write_uv(&mut buf, 1 << 20);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_uv(&buf, &mut pos), None);
    }

    #[test]
    fn uv_rejects_overlong() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_uv(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [-5i64, -1, 0, 1, 5, i64::MIN, i64::MAX, -1_000_000, 1_000_000] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
