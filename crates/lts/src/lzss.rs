//! Byte-aligned LZSS, the compression layer under the BLTS column
//! streams (see [`crate::io::write_blts`]).
//!
//! The token stream is a sequence of groups: one control byte whose bits
//! select, LSB first, between a literal (one byte copied verbatim) and a
//! match (three bytes: 16-bit LE backward offset `1..=65535`, then
//! `length - 4` with lengths `4..=259`). Matches copy from the already
//! decoded output, byte by byte, so overlapping copies (offset < length)
//! repeat a period — the classic LZ trick for runs.
//!
//! The encoder uses a hash chain over 4-byte prefixes with a bounded
//! probe depth, making it deterministic, `O(n)` in practice, and free of
//! any allocation proportional to the window. Compression is modest
//! compared to entropy-coded formats, but the input it sees (sorted
//! varint delta columns) is highly self-similar, which is where LZSS
//! shines; and the decoder is ~30 lines that cannot panic.

/// Minimum match length worth a 3-byte token.
const MIN_MATCH: usize = 4;

/// Maximum match length encodable in one token.
const MAX_MATCH: usize = MIN_MATCH + 255;

/// Maximum backward offset (16-bit, zero reserved).
const MAX_OFFSET: usize = 65_535;

/// Hash-chain probe depth: bounds worst-case encode time.
const MAX_PROBES: usize = 64;

const HASH_BITS: u32 = 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`. The output decodes back with [`decompress`]; it is
/// not guaranteed to be smaller than the input (callers should fall back
/// to storing raw bytes when it is not).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; n];
    let mut pos = 0;
    // Group under construction: control byte position + bit count.
    let mut ctrl_at = usize::MAX;
    let mut ctrl_bits = 0u32;
    let mut ctrl = 0u8;
    let mut begin_token = |out: &mut Vec<u8>, is_match: bool| {
        if ctrl_bits == 0 {
            ctrl_at = out.len();
            out.push(0);
            ctrl = 0;
        }
        if is_match {
            ctrl |= 1 << ctrl_bits;
        }
        ctrl_bits += 1;
        out[ctrl_at] = ctrl;
        if ctrl_bits == 8 {
            ctrl_bits = 0;
        }
    };
    while pos < n {
        let mut best_len = 0;
        let mut best_off = 0;
        if pos + MIN_MATCH <= n {
            let h = hash4(&input[pos..]);
            let mut cand = head[h];
            let mut probes = 0;
            while cand != usize::MAX && probes < MAX_PROBES {
                let off = pos - cand;
                if off > MAX_OFFSET {
                    break; // chain positions only get older
                }
                let limit = (n - pos).min(MAX_MATCH);
                let mut len = 0;
                while len < limit && input[cand + len] == input[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_off = off;
                    if len == MAX_MATCH {
                        break;
                    }
                }
                cand = prev[cand];
                probes += 1;
            }
            prev[pos] = head[h];
            head[h] = pos;
        }
        if best_len >= MIN_MATCH {
            begin_token(&mut out, true);
            out.extend_from_slice(&(best_off as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Index the skipped positions so later matches can start there.
            for p in pos + 1..(pos + best_len).min(n.saturating_sub(MIN_MATCH - 1)) {
                let h = hash4(&input[p..]);
                prev[p] = head[h];
                head[h] = p;
            }
            pos += best_len;
        } else {
            begin_token(&mut out, false);
            out.push(input[pos]);
            pos += 1;
        }
    }
    out
}

/// Decompresses exactly `expected_len` bytes, or returns `None` when the
/// stream is malformed (truncated, bad offset, or wrong decoded length).
/// Never panics.
pub fn decompress(input: &[u8], expected_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0;
    while out.len() < expected_len {
        let ctrl = *input.get(pos)?;
        pos += 1;
        for bit in 0..8 {
            if out.len() == expected_len {
                break;
            }
            if ctrl & (1 << bit) == 0 {
                out.push(*input.get(pos)?);
                pos += 1;
            } else {
                let lo = *input.get(pos)?;
                let hi = *input.get(pos + 1)?;
                let len = *input.get(pos + 2)? as usize + MIN_MATCH;
                pos += 3;
                let off = usize::from(u16::from_le_bytes([lo, hi]));
                if off == 0 || off > out.len() || out.len() + len > expected_len {
                    return None;
                }
                for _ in 0..len {
                    out.push(out[out.len() - off]);
                }
            }
        }
    }
    if pos != input.len() {
        return None; // trailing garbage
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let comp = compress(data);
        let back = decompress(&comp, data.len()).expect("decodes");
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrips_edge_cases() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcd");
        roundtrip(&[0u8; 10_000]);
        roundtrip(b"abcabcabcabcabcabcabcabc");
        let mixed: Vec<u8> = (0..50_000u32).map(|i| ((i * i) >> 7) as u8).collect();
        roundtrip(&mixed);
    }

    #[test]
    fn compresses_repetitive_input() {
        let data = b"the quick brown fox ".repeat(500);
        let comp = compress(&data);
        assert!(comp.len() * 10 < data.len(), "{} vs {}", comp.len(), data.len());
        assert_eq!(decompress(&comp, data.len()).expect("decodes"), data);
    }

    #[test]
    fn overlapping_copies_decode() {
        // A long run compresses to overlapping matches (offset < length).
        let data = vec![7u8; 1000];
        let comp = compress(&data);
        assert!(comp.len() < 32);
        assert_eq!(decompress(&comp, data.len()).expect("decodes"), data);
    }

    #[test]
    fn decompress_rejects_malformed() {
        let comp = compress(b"abcdabcdabcdabcd-tail");
        // Truncations.
        for cut in 0..comp.len() {
            assert!(decompress(&comp[..cut], 21).is_none(), "cut at {cut}");
        }
        // Wrong expected length (trailing bytes left over).
        assert!(decompress(&comp, 5).is_none());
        // Offset beyond produced output.
        let bad = [0b0000_0001, 9, 0, 0]; // match at offset 9 with nothing decoded
        assert!(decompress(&bad, 4).is_none());
        // Zero offset.
        let bad = [0b0000_0001, 0, 0, 0];
        assert!(decompress(&bad, 4).is_none());
    }
}
